//! Integration tests spanning the corpus, feature, classifier and metric crates:
//! the full "generate → split → vectorise → train → evaluate" path that every
//! experiment in the paper relies on.

use holistix::corpus::splits::{kfold_stratified, paper_split};
use holistix::ml::{cross_validate, TextPipeline};
use holistix::prelude::*;

#[test]
fn corpus_to_classifier_end_to_end() {
    let corpus = HolistixCorpus::generate_small(200, 11);
    let labels = corpus.label_indices();
    let texts = corpus.texts();
    let split = paper_split(&labels, 6, 11);
    assert!(split.is_partition_of(corpus.len()));

    let train_texts: Vec<&str> = split.train.iter().map(|&i| texts[i]).collect();
    let train_labels: Vec<usize> = split.train.iter().map(|&i| labels[i]).collect();
    let test_texts: Vec<&str> = split.test.iter().map(|&i| texts[i]).collect();
    let test_labels: Vec<usize> = split.test.iter().map(|&i| labels[i]).collect();

    let model = FittedBaseline::fit(
        BaselineKind::LogisticRegression,
        SpeedProfile::Fast,
        &train_texts,
        &train_labels,
        11,
    );
    let predictions = model.predict(&test_texts);
    let report = ClassificationReport::from_labels(&test_labels, &predictions, 6);
    // The synthetic corpus is lexically separable enough that TF-IDF + LR clears 45 %
    // accuracy comfortably (chance is ~17 %, majority class ~29 %).
    assert!(
        report.accuracy > 0.45,
        "logistic regression accuracy too low: {}",
        report.accuracy
    );
}

#[test]
fn all_classical_baselines_are_comparable_via_cross_validation() {
    let corpus = HolistixCorpus::generate_small(220, 3);
    let labels = corpus.label_indices();
    let texts = corpus.texts();
    let folds = kfold_stratified(&labels, 6, 4, 3);

    let mut accuracies = Vec::new();
    for kind in BaselineKind::CLASSICAL {
        let cv = cross_validate(
            &texts,
            &labels,
            6,
            &folds,
            || BaselinePipeline::new(kind, SpeedProfile::Fast, 3),
            true,
        );
        assert_eq!(cv.fold_outcomes.len(), 4);
        accuracies.push((kind.name(), cv.averaged.accuracy));
    }
    // Paper ordering within the classical family: LR and SVM clearly beat GaussianNB.
    let accuracy_of = |name: &str| {
        accuracies
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| *a)
            .unwrap()
    };
    assert!(accuracy_of("LR") > accuracy_of("Gaussian NB"));
    assert!(accuracy_of("Linear SVM") > accuracy_of("Gaussian NB"));
}

#[test]
fn transformer_pipeline_runs_through_cross_validation() {
    let corpus = HolistixCorpus::generate_small(90, 5);
    let labels = corpus.label_indices();
    let texts = corpus.texts();
    let folds = kfold_stratified(&labels, 6, 2, 5);
    let cv = cross_validate(
        &texts,
        &labels,
        6,
        &folds,
        || {
            BaselinePipeline::new(
                BaselineKind::Transformer(ModelKind::DistilBert),
                SpeedProfile::Tiny,
                5,
            )
        },
        false,
    );
    assert_eq!(cv.model_name, "DistilBERT");
    assert_eq!(cv.fold_outcomes.len(), 2);
    // Even a tiny transformer must beat random guessing on this lexically separable data.
    assert!(
        cv.averaged.accuracy > 1.0 / 6.0,
        "accuracy {}",
        cv.averaged.accuracy
    );
}

#[test]
fn pipeline_adapter_matches_direct_fit() {
    // Training through the TextPipeline adapter and training directly must agree.
    let corpus = HolistixCorpus::generate_small(150, 9);
    let labels = corpus.label_indices();
    let texts = corpus.texts();

    let mut adapter = BaselinePipeline::new(BaselineKind::GaussianNb, SpeedProfile::Fast, 9);
    adapter.fit(&texts, &labels);
    let via_adapter = adapter.predict(&texts);

    let direct = FittedBaseline::fit(
        BaselineKind::GaussianNb,
        SpeedProfile::Fast,
        &texts,
        &labels,
        9,
    );
    let via_direct = direct.predict(&texts);

    assert_eq!(via_adapter, via_direct);
}

#[test]
fn corpus_serialisation_round_trips_through_training() {
    // Persist the corpus to JSONL, reload it, and verify a model trained on the
    // reloaded corpus behaves identically.
    let corpus = HolistixCorpus::generate_small(120, 21);
    let jsonl = holistix::corpus::io::to_jsonl(&corpus.posts);
    let reloaded = holistix::corpus::io::from_jsonl(&jsonl).expect("round trip");
    assert_eq!(reloaded, corpus.posts);

    let labels: Vec<usize> = reloaded.iter().map(|p| p.label.index()).collect();
    let texts: Vec<&str> = reloaded.iter().map(|p| p.post.text.as_str()).collect();
    let a = FittedBaseline::fit(
        BaselineKind::LogisticRegression,
        SpeedProfile::Tiny,
        &texts,
        &labels,
        1,
    );
    let b = FittedBaseline::fit(
        BaselineKind::LogisticRegression,
        SpeedProfile::Tiny,
        &corpus.texts(),
        &corpus.label_indices(),
        1,
    );
    assert_eq!(a.predict(&texts[..20]), b.predict(&texts[..20]));
}

#[test]
fn degenerate_inputs_are_handled_end_to_end() {
    let corpus = HolistixCorpus::generate_small(80, 13);
    let labels = corpus.label_indices();
    let texts = corpus.texts();
    let model = FittedBaseline::fit(
        BaselineKind::LogisticRegression,
        SpeedProfile::Tiny,
        &texts,
        &labels,
        1,
    );
    // Empty and out-of-vocabulary posts must classify without panicking.
    let predictions = model.predict(&["", "zzzz qqqq xxxx", "!!!"]);
    assert_eq!(predictions.len(), 3);
    assert!(predictions.iter().all(|&p| p < 6));
    let probabilities = model.probabilities(&[""]);
    assert!((probabilities[0].iter().sum::<f64>() - 1.0).abs() < 1e-6);
}
