//! Observability integration tests against a live server: trace ids on the
//! wire, the `/debug/slow` ring, Prometheus content negotiation, and the
//! JSON/Prometheus counter-equality contract the CI smoke also enforces.

use holistix::{BaselineKind, SpeedProfile};
use holistix_corpus::json::JsonValue;
use holistix_serve::{
    build_info, serve, validate_exposition, BatchConfig, HttpClient, ModelRegistry, RegistryConfig,
    ServeConfig, ServerHandle,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start_server() -> ServerHandle {
    let registry = ModelRegistry::fit_synthetic(&RegistryConfig {
        kinds: vec![BaselineKind::LogisticRegression],
        profile: SpeedProfile::Tiny,
        training_posts: 120,
        seed: 29,
    });
    let config = ServeConfig {
        batch: BatchConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(20),
        },
        ..ServeConfig::default()
    };
    serve("127.0.0.1:0", registry, config).expect("bind loopback")
}

/// Read one `Content-Length`-framed response plus its headers off a raw
/// socket (the shared `HttpClient` reorders nothing, but pipelining tests
/// need to see each response's headers in arrival order).
fn read_response(reader: &mut BufReader<&TcpStream>) -> (u16, Vec<(String, String)>, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
        .parse()
        .expect("numeric status");
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        if line == "\r\n" || line == "\n" || line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().expect("content-length value");
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("response body");
    (
        status,
        headers,
        String::from_utf8(body).expect("UTF-8 body"),
    )
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

fn predict_request(text: &str, query: &str) -> String {
    let body = format!("{{\"text\":{}}}", holistix::corpus::json::json_escape(text));
    format!(
        "POST /predict{query} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
}

/// One Prometheus sample value by exact `name{labels}` prefix.
fn prom_value(text: &str, series: &str) -> Option<f64> {
    text.lines()
        .find(|line| {
            line.strip_prefix(series)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .and_then(|line| line.rsplit_once(' '))
        .and_then(|(_, value)| value.parse().ok())
}

/// Two requests pipelined in one write get two *distinct* trace ids, and
/// every response carries `X-Trace-Id`.
#[test]
fn pipelined_requests_get_distinct_trace_ids() {
    let server = start_server();
    let stream = TcpStream::connect(server.addr()).expect("connect");
    let pipelined = format!(
        "{}{}",
        predict_request("i feel so alone lately", ""),
        predict_request("my job exhausts me completely", "")
    );
    (&stream).write_all(pipelined.as_bytes()).expect("write");
    let mut reader = BufReader::new(&stream);
    let (status_a, headers_a, body_a) = read_response(&mut reader);
    let (status_b, headers_b, body_b) = read_response(&mut reader);
    assert_eq!(status_a, 200, "{body_a}");
    assert_eq!(status_b, 200, "{body_b}");
    let id_a = header(&headers_a, "x-trace-id").expect("first X-Trace-Id");
    let id_b = header(&headers_b, "x-trace-id").expect("second X-Trace-Id");
    assert_eq!(id_a.len(), 16, "trace ids are 16 hex chars: {id_a:?}");
    assert!(id_a.chars().all(|c| c.is_ascii_hexdigit()), "{id_a:?}");
    assert_ne!(id_a, id_b, "pipelined requests must get distinct trace ids");
    drop(stream);
    server.shutdown();
}

/// `?trace=1` inlines the stage breakdown, its `trace_id` matches the
/// `X-Trace-Id` header, and `/debug/slow` retains the trace with monotone,
/// non-overlapping stage timestamps.
#[test]
fn trace_inline_and_debug_slow_agree_on_stages() {
    let server = start_server();
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let body = format!(
        "{{\"text\":{}}}",
        holistix::corpus::json::json_escape("i can't sleep and everything feels heavy")
    );
    let (status, body, headers) = client
        .request_full("POST", "/predict?trace=1", Some(&body), &[])
        .expect("predict");
    assert_eq!(status, 200, "{body}");
    let wire_id = header(&headers, "x-trace-id")
        .expect("X-Trace-Id")
        .to_string();
    let document = JsonValue::parse(&body).expect("predict JSON");
    let trace = document.get("trace").expect("?trace=1 inlines a trace");
    assert_eq!(
        trace.get("trace_id").unwrap().as_str(),
        Some(wire_id.as_str())
    );
    let inline_stages = trace.get("stages").unwrap().as_array().unwrap();
    assert!(!inline_stages.is_empty(), "inline trace has stages");

    // The trace is finalized at last-byte-written, a poller tick after the
    // client reads the response — poll briefly for it to land in the ring.
    let mut slow_traces = Vec::new();
    for _ in 0..50 {
        let (status, body) = client.request("GET", "/debug/slow", None).expect("slow");
        assert_eq!(status, 200, "{body}");
        let document = JsonValue::parse(&body).expect("/debug/slow JSON");
        let traces = document.get("traces").unwrap().as_array().unwrap().to_vec();
        if traces
            .iter()
            .any(|t| t.get("trace_id").unwrap().as_str() == Some(wire_id.as_str()))
        {
            slow_traces = traces;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let entry = slow_traces
        .iter()
        .find(|t| t.get("trace_id").unwrap().as_str() == Some(wire_id.as_str()))
        .expect("/debug/slow retains the predict trace");
    assert_eq!(entry.get("endpoint").unwrap().as_str(), Some("predict"));
    let total_us = entry.get("total_us").unwrap().as_f64().unwrap();
    let stages = entry.get("stages").unwrap().as_array().unwrap();
    assert!(!stages.is_empty());

    // Monotone, non-overlapping: each stage starts where the previous one
    // ended (at_us == previous at_us + dur_us), offsets never decrease, and
    // nothing extends past the trace total.
    let mut previous_at = 0.0f64;
    for stage in stages {
        let at = stage.get("at_us").unwrap().as_f64().unwrap();
        let dur = stage.get("dur_us").unwrap().as_f64().unwrap();
        assert!(
            at >= previous_at,
            "stage offsets must be monotone: {stages:?}"
        );
        assert!(
            (at - (previous_at + dur)).abs() <= 1.0,
            "stages must tile without overlap: {stages:?}"
        );
        assert!(at <= total_us + 1.0, "stage past trace total: {stages:?}");
        previous_at = at;
    }
    // The write stamp closes the trace, so the last offset IS the total.
    assert!(
        (previous_at - total_us).abs() <= 1.0,
        "last stage ({previous_at}) should end the trace ({total_us})"
    );
    server.shutdown();
}

/// Content negotiation: `Accept: text/plain` and `?format=prometheus` both
/// switch `/metrics` to valid Prometheus text whose counters equal the JSON
/// document's, while the default stays JSON.
#[test]
fn metrics_serves_json_and_prometheus_with_equal_counters() {
    let server = start_server();
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let body = format!(
        "{{\"text\":{}}}",
        holistix::corpus::json::json_escape("nobody ever listens to me")
    );
    for _ in 0..3 {
        let (status, body) = client
            .request("POST", "/predict", Some(&body))
            .expect("predict");
        assert_eq!(status, 200, "{body}");
    }

    // Default scrape is JSON (shape unchanged from earlier releases).
    let (status, json_body, headers) = client
        .request_full("GET", "/metrics", None, &[])
        .expect("json metrics");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    let json = JsonValue::parse(&json_body).expect("metrics JSON");
    let requests = json.get("requests").unwrap();
    let json_predicts = requests.get("predict").unwrap().as_f64().unwrap();
    let json_texts = json.get("texts_scored").unwrap().as_f64().unwrap();
    assert_eq!(json_predicts, 3.0);

    // Accept-negotiated Prometheus.
    let (status, prom, headers) = client
        .request_full("GET", "/metrics", None, &[("Accept", "text/plain")])
        .expect("prometheus metrics");
    assert_eq!(status, 200);
    assert!(
        header(&headers, "content-type").is_some_and(|value| value.starts_with("text/plain")),
        "{headers:?}"
    );
    validate_exposition(&prom).expect("valid exposition");

    // Query-negotiated Prometheus (for scrapers that can't set headers).
    let (status, prom_query) = client
        .request("GET", "/metrics?format=prometheus", None)
        .expect("prometheus via query");
    assert_eq!(status, 200);
    validate_exposition(&prom_query).expect("valid exposition via query");

    // Counter equality on scrape-stable counters (the metrics endpoint's own
    // request counter moves between scrapes; predict/texts_scored don't).
    assert_eq!(
        prom_value(&prom, "holistix_requests_total{endpoint=\"predict\"}"),
        Some(json_predicts),
        "JSON and Prometheus disagree on predict count"
    );
    assert_eq!(
        prom_value(&prom, "holistix_texts_scored_total"),
        Some(json_texts),
        "JSON and Prometheus disagree on texts scored"
    );
    // The build gauge mirrors /healthz's build section.
    assert_eq!(
        prom_value(
            &prom,
            &format!(
                "holistix_build_info{{version=\"{}\",git=\"{}\"}}",
                build_info().0,
                build_info().1
            )
        ),
        Some(1.0)
    );
    server.shutdown();
}

/// `/healthz` reports uptime and the baked-in build identity.
#[test]
fn healthz_reports_uptime_and_build() {
    let server = start_server();
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let (status, body) = client.request("GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200, "{body}");
    let health = JsonValue::parse(&body).expect("healthz JSON");
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    let uptime = health.get("uptime_s").unwrap().as_f64().unwrap();
    assert!(uptime >= 0.0, "uptime_s must be non-negative: {uptime}");
    let build = health.get("build").expect("build section");
    let (version, git) = build_info();
    assert_eq!(build.get("version").unwrap().as_str(), Some(version));
    assert_eq!(build.get("git").unwrap().as_str(), Some(git));
    assert!(!version.is_empty());
    server.shutdown();
}
