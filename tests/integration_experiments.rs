//! Integration tests of the experiment runners: every table and figure of the paper
//! can be regenerated, and the qualitative shape of the published results holds on the
//! synthetic corpus.

use holistix::corpus::CorpusStatistics;
use holistix::prelude::*;

#[test]
fn table2_statistics_match_the_paper_reference_shape() {
    let corpus = HolistixCorpus::generate(42);
    let stats = run_table2(&corpus);
    let paper = CorpusStatistics::paper_reference();

    assert_eq!(stats.total_posts, paper.total_posts);
    assert_eq!(stats.class_counts, paper.class_counts);
    assert!(stats.max_sentences_per_post <= paper.max_sentences_per_post);
    // Word and sentence volume within a generous band of the published values.
    let word_deviation =
        (stats.total_words as f64 - paper.total_words as f64).abs() / paper.total_words as f64;
    assert!(
        word_deviation < 0.35,
        "total word count deviates {word_deviation:.2} from the paper"
    );
    // Class percentages of §II-C.
    let pct = stats.class_percentages();
    assert!((pct[WellnessDimension::Social.index()] - 28.59).abs() < 0.1);
    assert!((pct[WellnessDimension::Vocational.index()] - 10.56).abs() < 0.1);
}

#[test]
fn table3_top_words_contain_the_papers_leaders() {
    let corpus = HolistixCorpus::generate(42);
    let frequent = run_table3(&corpus);
    let top_words = |dim: WellnessDimension, k: usize| -> Vec<String> {
        frequent
            .for_dimension(dim)
            .iter()
            .take(k)
            .map(|(w, _)| w.clone())
            .collect()
    };
    // Table III headline words per dimension.
    assert!(top_words(WellnessDimension::Vocational, 5)
        .iter()
        .any(|w| w == "job" || w == "work"));
    assert!(top_words(WellnessDimension::Physical, 6)
        .iter()
        .any(|w| w == "anxiety" || w == "sleep"));
    assert!(top_words(WellnessDimension::Social, 8)
        .iter()
        .any(|w| w == "feel" || w == "alone" || w == "people"));
    assert!(top_words(WellnessDimension::Spiritual, 8)
        .iter()
        .any(|w| w == "feel" || w == "life"));
}

#[test]
fn annotation_study_reproduces_the_kappa_band() {
    let corpus = HolistixCorpus::generate(42);
    let study = run_annotation_study(&corpus, 7);
    // Paper: Fleiss' kappa = 75.92 %. The simulated annotators are calibrated to land
    // in the same band.
    assert!(
        (study.agreement.fleiss_kappa - 0.7592).abs() < 0.08,
        "kappa {} outside the paper band",
        study.agreement.fleiss_kappa
    );
    // The documented EA/SpiA subjectivity shows up as those classes having the most
    // annotator confusion relative to their size.
    let errors_for = |d: WellnessDimension| -> f64 {
        study
            .confusion_pairs()
            .iter()
            .filter(|(g, _, _)| *g == d)
            .map(|(_, _, c)| *c as f64)
            .sum::<f64>()
            / d.paper_count() as f64
    };
    assert!(errors_for(WellnessDimension::Emotional) > errors_for(WellnessDimension::Physical));
}

#[test]
fn table4_classical_rows_reproduce_the_papers_ordering() {
    // Classical-only Table IV on a mid-size corpus: LR/SVM > GaussianNB, and the
    // majority classes (SA, PA) are easier than EA.
    let config = EvaluationConfig {
        corpus_size: Some(360),
        n_folds: 5,
        speed: holistix::SpeedProfile::Fast,
        ..EvaluationConfig::fast()
    }
    .classical_only();
    let result = run_table4(&config);
    assert_eq!(result.rows.len(), 3);

    let accuracy = |m: &str| result.accuracy_of(m).unwrap();
    assert!(
        accuracy("LR") > accuracy("Gaussian NB"),
        "LR {} vs NB {}",
        accuracy("LR"),
        accuracy("Gaussian NB")
    );
    assert!(accuracy("Linear SVM") > accuracy("Gaussian NB"));

    // Per-class difficulty shape for LR: the Social/Physical majority classes score
    // higher F1 than the Emotional class (the paper's hardest class).
    let lr = result.row("LR").unwrap();
    let f1 = |d: WellnessDimension| lr.report.class(d.index()).f1;
    assert!(f1(WellnessDimension::Social) > f1(WellnessDimension::Emotional));
    assert!(f1(WellnessDimension::Physical) > f1(WellnessDimension::Emotional));
}

#[test]
fn table5_explanations_overlap_gold_spans_better_than_chance() {
    let config = Table5Config {
        corpus_size: Some(200),
        n_explanations: 12,
        ..Table5Config::smoke()
    };
    let result = run_table5(&config);
    let report = result.report_for("LR").expect("LR report");
    assert_eq!(result.n_explanations, report.n_items);
    // LIME keywords drawn from the model must overlap the gold span far better than
    // random words would (gold spans are ~10 words of a ~25-word post).
    assert!(report.recall > 0.15, "recall {}", report.recall);
    assert!(report.f1 > 0.1, "f1 {}", report.f1);
    assert!(report.rouge > 0.05);
    assert!(report.bleu >= 0.0);
}

#[test]
fn fig1_walkthrough_produces_a_plausible_explanation() {
    let walkthrough = run_fig1_walkthrough(42);
    assert_eq!(walkthrough.probabilities.len(), 6);
    assert!((walkthrough.probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    assert!(!walkthrough.explanation_keywords.is_empty());
    // The rendered walkthrough mentions both dimensions involved.
    let rendered = walkthrough.to_string();
    assert!(rendered.contains(walkthrough.gold.name()));
    assert!(rendered.contains(walkthrough.predicted.name()));
}

#[test]
fn experiment_runners_are_deterministic() {
    let config = EvaluationConfig::smoke();
    let a = run_table4(&config);
    let b = run_table4(&config);
    assert_eq!(a, b);

    let t5 = Table5Config::smoke();
    assert_eq!(run_table5(&t5), run_table5(&t5));
}
