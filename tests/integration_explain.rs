//! Integration tests of the explainability stack against real fitted models:
//! LIME explanations of trained baselines, their overlap with gold spans, and the
//! agreement between LIME and the models' own feature weights.

use holistix::explain::{ExplanationMetrics, LimeConfig, LimeExplainer};
use holistix::prelude::*;

fn fitted_lr(corpus: &HolistixCorpus, seed: u64) -> FittedBaseline {
    FittedBaseline::fit(
        BaselineKind::LogisticRegression,
        SpeedProfile::Fast,
        &corpus.texts(),
        &corpus.label_indices(),
        seed,
    )
}

#[test]
fn lime_keywords_come_from_the_explained_post() {
    let corpus = HolistixCorpus::generate_small(200, 17);
    let model = fitted_lr(&corpus, 17);
    let explainer = LimeExplainer::default_config();
    for post in corpus.iter().take(10) {
        let explanation = explainer.explain(&model, &post.post.text, None);
        let lowered = post.post.text.to_lowercase();
        for token in explanation.top_tokens(5) {
            assert!(
                lowered.contains(&token),
                "LIME keyword {token:?} not present in the post"
            );
        }
    }
}

#[test]
fn lime_overlaps_gold_spans_for_correctly_classified_posts() {
    let corpus = HolistixCorpus::generate_small(260, 23);
    let model = fitted_lr(&corpus, 23);
    let explainer = LimeExplainer::new(LimeConfig {
        n_samples: 150,
        ..LimeConfig::default()
    });

    let mut scored = 0usize;
    let mut f1_sum = 0.0;
    for post in corpus.iter().take(30) {
        let predicted = model.predict(&[post.post.text.as_str()])[0];
        if predicted != post.label.index() {
            continue; // the paper also explains the model's own (correct) predictions
        }
        let explanation = explainer.explain(&model, &post.post.text, None);
        let metrics = ExplanationMetrics::score(&explanation.top_tokens(5), post.span_text());
        f1_sum += metrics.f1;
        scored += 1;
    }
    assert!(
        scored >= 5,
        "too few correctly classified posts to evaluate"
    );
    let mean_f1 = f1_sum / scored as f64;
    assert!(mean_f1 > 0.15, "mean explanation F1 {mean_f1}");
}

#[test]
fn lime_agrees_with_logistic_regression_feature_weights() {
    // For a linear model over TF-IDF features, LIME's local surrogate should rank the
    // same indicator words highly that the model itself weights most for the class.
    let corpus = HolistixCorpus::generate_small(240, 29);
    let model = fitted_lr(&corpus, 29);
    let explainer = LimeExplainer::default_config();

    // A strongly vocational post built from Table I indicator phrasing.
    let text = "I lost my job last month and the financial stress about money is crushing me";
    let proba = model.probabilities_one(text);
    let predicted = holistix::linalg::argmax(&proba).unwrap();
    if predicted == WellnessDimension::Vocational.index() {
        let explanation = explainer.explain(&model, text, None);
        let top = explanation.top_tokens(4);
        assert!(
            top.iter()
                .any(|t| ["job", "money", "financial", "stress"].contains(&t.as_str())),
            "top tokens {top:?} should contain a vocational indicator"
        );
    } else {
        // If the small model misclassifies this post, the explanation must still be
        // well-formed and drawn from the text.
        let explanation = explainer.explain(&model, text, None);
        assert!(!explanation.token_weights.is_empty());
    }
}

#[test]
fn rouge_and_bleu_agree_on_extreme_cases() {
    use holistix::explain::{bleu, rouge_1};
    let gold: Vec<String> = holistix::text::content_words("I feel exhausted and cannot sleep");
    let perfect: Vec<String> = gold.clone();
    let disjoint = vec!["job".to_string(), "career".to_string()];
    assert!(rouge_1(&perfect, &gold).f1 > 0.99);
    assert!(bleu(&perfect, &gold) > 0.99);
    assert_eq!(rouge_1(&disjoint, &gold).f1, 0.0);
    assert_eq!(bleu(&disjoint, &gold), 0.0);
}

#[test]
fn transformer_models_can_be_explained_too() {
    // The paper explains fine-tuned MentalBERT; verify the adapter path works with a
    // tiny transformer and produces well-formed explanations.
    let corpus = HolistixCorpus::generate_small(80, 31);
    let model = FittedBaseline::fit(
        BaselineKind::Transformer(ModelKind::MentalBert),
        SpeedProfile::Tiny,
        &corpus.texts(),
        &corpus.label_indices(),
        31,
    );
    let explainer = LimeExplainer::new(LimeConfig {
        n_samples: 40,
        ..LimeConfig::default()
    });
    let post = &corpus.posts[0];
    let explanation = explainer.explain(&model, &post.post.text, None);
    assert!(explanation.target_class < 6);
    assert!(explanation.target_probability >= 0.0 && explanation.target_probability <= 1.0);
    for (token, weight) in &explanation.token_weights {
        assert!(!token.is_empty());
        assert!(weight.is_finite());
    }
}
