//! Connection-layer integration tests for the nonblocking multiplexer: raw
//! TCP clients that exercise exactly the cases a blocking-read server never
//! sees — two requests in one segment (pipelining), one byte per segment
//! (incremental framing), and hostile framing (oversized heads, garbage
//! request lines) that must draw a `400` without taking the poller down.

use holistix::{BaselineKind, Scorer, SpeedProfile};
use holistix_corpus::json::JsonValue;
use holistix_serve::{
    http_request, serve, BatchConfig, ModelRegistry, RegistryConfig, ServeConfig, ServerHandle,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn start_server() -> (ServerHandle, Arc<dyn Scorer>) {
    let registry = ModelRegistry::fit_synthetic(&RegistryConfig {
        kinds: vec![BaselineKind::LogisticRegression],
        profile: SpeedProfile::Tiny,
        training_posts: 120,
        seed: 29,
    });
    let model = registry.get(BaselineKind::LogisticRegression).unwrap();
    let config = ServeConfig {
        batch: BatchConfig {
            max_batch: 8,
            // A real batching window, so the second pipelined request reliably
            // arrives while the first is still in flight.
            max_wait: Duration::from_millis(50),
        },
        ..ServeConfig::default()
    };
    let server = serve("127.0.0.1:0", registry, config).expect("bind loopback");
    (server, model)
}

/// Read exactly one `Content-Length`-framed response off the wire.
fn read_response(reader: &mut BufReader<&TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header line");
        if header == "\r\n" || header == "\n" || header.is_empty() {
            break;
        }
        if let Some(rest) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = rest.trim().parse().expect("content-length value");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("response body");
    (status, String::from_utf8(body).expect("UTF-8 body"))
}

fn predict_request(text: &str) -> String {
    let body = format!("{{\"text\":{}}}", holistix::corpus::json::json_escape(text));
    format!(
        "POST /predict HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
}

/// The pipelining bar: two complete requests in one `write` are answered in
/// request order, and each body is byte-identical to the same request sent
/// sequentially on its own connection — pipelining changes scheduling, never
/// answers. The `/metrics` pipelined counter proves the overlap happened.
#[test]
fn two_requests_in_one_write_answer_in_order_bit_identically() {
    let (server, _model) = start_server();
    let addr = server.addr();

    let text_a = "i feel so alone lately and nobody calls";
    let text_b = "my job exhausts me beyond what i can carry";
    // Sequential reference answers, one connection each.
    let body_a = format!(
        "{{\"text\":{}}}",
        holistix::corpus::json::json_escape(text_a)
    );
    let body_b = format!(
        "{{\"text\":{}}}",
        holistix::corpus::json::json_escape(text_b)
    );
    let (status, want_a) = http_request(addr, "POST", "/predict", Some(&body_a)).unwrap();
    assert_eq!(status, 200, "{want_a}");
    let (status, want_b) = http_request(addr, "POST", "/predict", Some(&body_b)).unwrap();
    assert_eq!(status, 200, "{want_b}");
    assert_ne!(want_a, want_b, "texts must produce distinguishable answers");

    // Both requests in a single write; the poller parses and dispatches the
    // second while the first sits in the batch window.
    let stream = TcpStream::connect(addr).expect("connect");
    let pipelined = format!("{}{}", predict_request(text_a), predict_request(text_b));
    (&stream).write_all(pipelined.as_bytes()).expect("write");
    let mut reader = BufReader::new(&stream);
    let (status_a, got_a) = read_response(&mut reader);
    let (status_b, got_b) = read_response(&mut reader);
    assert_eq!(status_a, 200, "{got_a}");
    assert_eq!(status_b, 200, "{got_b}");
    assert_eq!(got_a, want_a, "first pipelined answer diverged");
    assert_eq!(got_b, want_b, "second pipelined answer diverged");
    drop(stream);

    assert!(
        server.metrics().connections().pipelined_total() >= 1,
        "the second request never overlapped the first"
    );
    server.shutdown();
}

/// The incremental-framing bar: a request delivered one byte per segment
/// (every byte its own `write`, TCP_NODELAY on) parses and answers exactly
/// like a request that arrived whole.
#[test]
fn one_byte_at_a_time_request_parses_over_tcp() {
    let (server, _model) = start_server();
    let addr = server.addr();

    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let request = predict_request("i feel alone");
    for byte in request.as_bytes() {
        (&stream)
            .write_all(std::slice::from_ref(byte))
            .expect("write byte");
        // A real pause between segments, so coalescing cannot hide the
        // fragmentation from the server.
        std::thread::sleep(Duration::from_micros(200));
    }
    let mut reader = BufReader::new(&stream);
    let (status, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    let document = JsonValue::parse(&body).expect("predict response is JSON");
    let results = document.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 1);
    drop(stream);
    server.shutdown();
}

/// The robustness bar: hostile framing draws a `400` (and a close), and the
/// poller that absorbed it keeps serving everyone else.
#[test]
fn oversized_and_malformed_requests_get_400_without_killing_the_poller() {
    let (server, _model) = start_server();
    let addr = server.addr();

    // Garbage request line.
    let stream = TcpStream::connect(addr).expect("connect");
    (&stream).write_all(b"WHAT\r\n\r\n").expect("write");
    let (status, body) = read_response(&mut BufReader::new(&stream));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("malformed request"), "{body}");
    drop(stream);

    // A head that never terminates, past the 16 KiB head cap.
    let stream = TcpStream::connect(addr).expect("connect");
    let endless_head = vec![b'a'; 20 << 10];
    (&stream).write_all(&endless_head).expect("write");
    let (status, body) = read_response(&mut BufReader::new(&stream));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("head exceeds"), "{body}");
    drop(stream);

    // A declared body over the 1 MiB cap (rejected from the head alone —
    // the server never waits for, or buffers, the body).
    let stream = TcpStream::connect(addr).expect("connect");
    let huge = format!(
        "POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
        8 << 20
    );
    (&stream).write_all(huge.as_bytes()).expect("write");
    let (status, body) = read_response(&mut BufReader::new(&stream));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("exceeds"), "{body}");
    drop(stream);

    // The server shrugged all three off: a well-formed client still answers,
    // and the errors were counted.
    let (status, body) = http_request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "{body}");
    let health = JsonValue::parse(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    let snapshot = server.metrics().snapshot();
    let errors = snapshot
        .get("requests")
        .unwrap()
        .get("errors")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(errors >= 3.0, "expected ≥3 recorded errors, got {errors}");
    server.shutdown();
}
