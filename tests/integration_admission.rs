//! Admission-control integration tests: the overload bars for `holistix-serve`.
//!
//! Every test is deterministic — saturation is produced by a flag-gated slow
//! scorer (the PR 5 pattern), never by a sleep, so the assertions hold on any
//! machine: a queue filled to its cap rejects the next request with `429` and
//! a parseable `Retry-After` while the *other* kind keeps answering
//! bit-identically; `/explain` sheds before `/predict`; a per-connection
//! token bucket admits exactly its burst; and the global intake valve stops
//! reading new requests until the backlog drains.

use holistix::corpus::JsonValue;
use holistix::{BaselineKind, FittedBaseline, Scorer, SpeedProfile};
use holistix_corpus::HolistixCorpus;
use holistix_serve::{
    http_request, serve, AdmissionConfig, BatchConfig, Endpoint, HttpClient, ModelRegistry,
    RateLimitConfig, ServeConfig, ShedReason,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A scorer that blocks inside `probabilities` until the test releases it
/// (with a hard deadline so a failing test cannot wedge the queue thread
/// forever). Registered as the BERT analogue; while it is gated, every job
/// sent to its queue holds its depth reservation — which is how these tests
/// drive a queue to an exact depth with no timing assumptions.
struct GatedScorer {
    release: Arc<AtomicBool>,
}

impl Scorer for GatedScorer {
    fn probabilities(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        let deadline = Instant::now() + Duration::from_secs(20);
        while !self.release.load(Ordering::SeqCst) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        texts
            .iter()
            .map(|_| vec![0.5, 0.1, 0.1, 0.1, 0.1, 0.1])
            .collect()
    }

    fn kind(&self) -> BaselineKind {
        BaselineKind::Transformer(holistix::transformer::ModelKind::Bert)
    }

    fn cost_hint(&self) -> Duration {
        Duration::from_millis(50)
    }
}

/// Poll `check` until it holds — a progress deadline, not a timing
/// assumption: the condition is driven by a flag or a counter, so the only
/// way to miss the (generous) deadline is a genuine bug.
fn wait_until(what: &str, check: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !check() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The `Retry-After` header's value, which must parse as whole seconds.
fn retry_after_secs(headers: &[(String, String)]) -> u64 {
    let value = headers
        .iter()
        .find(|(name, _)| name.eq_ignore_ascii_case("retry-after"))
        .map(|(_, value)| value.as_str())
        .expect("429 without a Retry-After header");
    value
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("unparseable Retry-After {value:?}"))
}

/// The tentpole bar: a queue gated mid-score and filled to its cap draws
/// `429 + Retry-After` on the next enqueue — while `/predict` on the *other*
/// kind answers bit-identically (cross-kind isolation) and `/explain` sheds
/// first (graceful degradation). Releasing the gate completes every admitted
/// request; nothing admitted is lost, nothing rejected was enqueued.
#[test]
fn full_queue_rejects_with_retry_after_while_other_kind_serves() {
    let corpus = HolistixCorpus::generate_small(120, 29);
    let texts = corpus.texts();
    let labels = corpus.label_indices();
    let lr = Arc::new(FittedBaseline::fit(
        BaselineKind::LogisticRegression,
        SpeedProfile::Tiny,
        &texts,
        &labels,
        29,
    ));
    let release = Arc::new(AtomicBool::new(false));
    let registry = ModelRegistry::from_scorers(vec![
        lr.clone() as Arc<dyn Scorer>,
        Arc::new(GatedScorer {
            release: Arc::clone(&release),
        }),
    ]);
    let server = serve(
        "127.0.0.1:0",
        registry,
        ServeConfig {
            handlers: 8,
            batch: BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
            },
            admission: AdmissionConfig {
                max_queue_depth: 3,
                // Same threshold: once BERT holds 3 jobs, /explain sheds too.
                explain_shed_depth: 3,
                // Far above anything here — the valve must stay open so the
                // 429s are observable (a closed valve rejects nothing, it
                // just stops reading).
                global_intake_limit: 1000,
                rate_limit: None,
                retry_after: Duration::from_secs(2),
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    let metrics = server.metrics();

    crossbeam::thread::scope(|scope| {
        // Fill the gated queue to exactly its cap: 3 single-text requests,
        // each blocking on a reply that cannot come until the gate opens.
        for i in 0..3 {
            scope.spawn(move |_| {
                let (status, body) = http_request(
                    addr,
                    "POST",
                    "/predict",
                    Some(r#"{"text":"hold the queue","model":"BERT"}"#),
                )
                .expect("admitted predict");
                assert_eq!(status, 200, "admitted request {i}: {body}");
                let document = JsonValue::parse(&body).unwrap();
                let row = document.get("results").unwrap().as_array().unwrap()[0]
                    .get("probabilities")
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|p| p.as_f64().unwrap())
                    .sum::<f64>();
                assert!((row - 1.0).abs() < 1e-9);
            });
        }
        // Depth counts up at admission (before the drain loop can see the
        // jobs), so depth == 3 proves all three reservations are held.
        wait_until("the BERT queue to fill to its cap", || {
            metrics.queue("BERT", "transformer").depth() == 3
        });

        // The 4th draws 429 with a parseable Retry-After, and nothing of it
        // was enqueued (depth stays exactly at the cap).
        let mut client = HttpClient::connect(addr).expect("connect");
        let (status, body, headers) = client
            .request_full(
                "POST",
                "/predict",
                Some(r#"{"text":"one too many","model":"BERT"}"#),
                &[],
            )
            .expect("shed predict");
        assert_eq!(status, 429, "{body}");
        assert!(body.contains("full"), "{body}");
        assert_eq!(retry_after_secs(&headers), 2);
        assert_eq!(metrics.queue("BERT", "transformer").depth(), 3);

        // Cross-kind isolation: LR admits and answers bit-identically to
        // direct scoring while BERT is saturated.
        let text = texts[0];
        let body = format!(
            "{{\"text\":{},\"model\":\"LR\"}}",
            holistix::corpus::json::json_escape(text)
        );
        let (status, response) = client
            .request("POST", "/predict", Some(&body))
            .expect("LR predict");
        assert_eq!(status, 200, "{response}");
        let document = JsonValue::parse(&response).unwrap();
        let got: Vec<f64> = document.get("results").unwrap().as_array().unwrap()[0]
            .get("probabilities")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|p| p.as_f64().unwrap())
            .collect();
        let want = lr.probabilities_one(text);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "LR row diverged under load");
        }

        // Graceful degradation: aggregate depth (3) is at the explain
        // threshold, so /explain sheds while /predict on LR still serves.
        let (status, body, headers) = client
            .request_full("POST", "/explain", Some(r#"{"text":"explain me"}"#), &[])
            .expect("shed explain");
        assert_eq!(status, 429, "{body}");
        assert!(retry_after_secs(&headers) >= 1);

        // The sheds are attributed per endpoint and reason, in the
        // in-process counters and in the /metrics JSON.
        assert_eq!(
            metrics
                .admission()
                .shed_count(Endpoint::Predict, ShedReason::QueueFull),
            1
        );
        assert_eq!(
            metrics
                .admission()
                .shed_count(Endpoint::Explain, ShedReason::Degraded),
            1
        );
        let (status, body) = client.request("GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        let document = JsonValue::parse(&body).unwrap();
        let admission = document.get("admission").unwrap();
        assert_eq!(
            admission.get("aggregate_depth").unwrap().as_f64(),
            Some(3.0)
        );
        let shed = admission.get("shed").unwrap();
        assert_eq!(
            shed.get("predict")
                .unwrap()
                .get("queue_full")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert_eq!(
            shed.get("explain")
                .unwrap()
                .get("degraded")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert_eq!(
            admission
                .get("limits")
                .unwrap()
                .get("max_queue_depth")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
        drop(client);

        // Open the gate: every admitted request completes (asserted in the
        // client threads) and the backlog drains to zero.
        release.store(true, Ordering::SeqCst);
    })
    .expect("admission scope failed");

    wait_until("the BERT queue to drain", || {
        metrics.queue("BERT", "transformer").depth() == 0
    });
    server.shutdown();
}

/// The per-connection token bucket: with a zero refill rate the bucket is
/// pure burst, so one connection gets exactly `burst` requests and then 429s
/// (connection still open, framing intact), while a fresh connection mints a
/// fresh bucket.
#[test]
fn token_bucket_admits_exactly_the_burst_per_connection() {
    let registry = ModelRegistry::fit_synthetic(&holistix_serve::RegistryConfig {
        kinds: vec![BaselineKind::LogisticRegression],
        profile: SpeedProfile::Tiny,
        training_posts: 90,
        seed: 3,
    });
    let server = serve(
        "127.0.0.1:0",
        registry,
        ServeConfig {
            handlers: 4,
            admission: AdmissionConfig {
                // rate 0 never refills: the bucket admits exactly `burst`
                // requests per connection, ever — fully deterministic.
                rate_limit: Some(RateLimitConfig {
                    rate_per_s: 0.0,
                    burst: 2.0,
                }),
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();

    let mut client = HttpClient::connect(addr).expect("connect");
    for i in 0..2 {
        let (status, body) = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200, "burst request {i}: {body}");
    }
    // The 3rd and every later request on this connection is shed — but the
    // connection itself survives (429 is an answer, not a hangup).
    for _ in 0..2 {
        let (status, body, headers) = client.request_full("GET", "/healthz", None, &[]).unwrap();
        assert_eq!(status, 429, "{body}");
        assert!(retry_after_secs(&headers) >= 1);
    }
    drop(client);

    // A new connection starts a fresh bucket.
    let mut fresh = HttpClient::connect(addr).expect("reconnect");
    let (status, _) = fresh.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    drop(fresh);

    assert_eq!(
        server
            .metrics()
            .admission()
            .shed_count(Endpoint::Health, ShedReason::RateLimited),
        2
    );
    server.shutdown();
}

/// The global intake valve: once the aggregate backlog reaches the limit,
/// pollers stop reading — a new client's request sits unread (bounded
/// negative check) until the backlog drains, then completes normally. The
/// valve rejects nothing; it converts overload into TCP backpressure.
#[test]
fn intake_valve_pauses_reads_until_the_backlog_drains() {
    let release = Arc::new(AtomicBool::new(false));
    let registry = ModelRegistry::from_scorers(vec![Arc::new(GatedScorer {
        release: Arc::clone(&release),
    }) as Arc<dyn Scorer>]);
    let server = serve(
        "127.0.0.1:0",
        registry,
        ServeConfig {
            handlers: 4,
            batch: BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
            },
            admission: AdmissionConfig {
                global_intake_limit: 2,
                // Only the valve is under test: keep the shedding bounds out
                // of the way.
                max_queue_depth: 1000,
                explain_shed_depth: 1000,
                rate_limit: None,
                retry_after: Duration::from_secs(1),
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    let metrics = server.metrics();

    crossbeam::thread::scope(|scope| {
        // Two admitted-and-gated jobs push the aggregate depth to the limit.
        for _ in 0..2 {
            scope.spawn(move |_| {
                let (status, body) =
                    http_request(addr, "POST", "/predict", Some(r#"{"text":"hold"}"#))
                        .expect("gated predict");
                assert_eq!(status, 200, "{body}");
            });
        }
        // The valve state is maintained by the pollers' build_set pass, so
        // observing it closed proves a poller has already withdrawn read
        // interest everywhere.
        wait_until("the intake valve to close", || {
            metrics.admission().intake_closed()
        });

        // A client arriving now connects (kernel backlog) but its request
        // is not read, so it cannot complete while the valve is closed.
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        scope.spawn(move |_| {
            let (status, body) =
                http_request(addr, "GET", "/healthz", None).expect("post-drain healthz");
            assert_eq!(status, 200, "{body}");
            done_tx.send(()).unwrap();
        });
        // Bounded one-direction check: a broken valve answers /healthz in
        // microseconds, so a full second of silence is decisive; a working
        // valve never answers, and the release below keeps the test finite.
        assert!(
            done_rx.recv_timeout(Duration::from_secs(1)).is_err(),
            "request was served while the intake valve was closed"
        );

        // Draining the backlog reopens the valve; the parked client is read
        // and served.
        release.store(true, Ordering::SeqCst);
        done_rx
            .recv_timeout(Duration::from_secs(20))
            .expect("valve never reopened");
    })
    .expect("valve scope failed");

    assert!(metrics.admission().intake_closures_total() >= 1);
    wait_until("the valve to reopen", || {
        !metrics.admission().intake_closed()
    });
    server.shutdown();
}
