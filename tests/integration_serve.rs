//! Loopback integration test for `holistix-serve`: the acceptance bar for
//! cross-request micro-batching.
//!
//! A real server on an ephemeral port, driven by genuinely concurrent clients,
//! must (a) coalesce at least two concurrent single-text requests into one
//! scoring batch (visible in the `/metrics` batch histogram), and (b) return
//! per-request probabilities **bit-identical** to what the warm model answers
//! for the same text via `probabilities_one` — batching may change latency,
//! never answers. The JSON layer's shortest-round-trip `f64` formatting is
//! what makes the bitwise comparison across the HTTP boundary possible.

use holistix::corpus::JsonValue;
use holistix::{BaselineKind, FittedBaseline, Scorer, SpeedProfile};
use holistix_corpus::HolistixCorpus;
use holistix_serve::{
    http_request, serve, BatchConfig, HttpClient, ModelRegistry, RegistryConfig, ServeConfig,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn start_server() -> (holistix_serve::ServerHandle, Arc<dyn Scorer>) {
    let registry = ModelRegistry::fit_synthetic(&RegistryConfig {
        kinds: vec![BaselineKind::LogisticRegression],
        profile: SpeedProfile::Tiny,
        training_posts: 120,
        seed: 13,
    });
    let model = registry.get(BaselineKind::LogisticRegression).unwrap();
    let config = ServeConfig {
        handlers: 8,
        batch: BatchConfig {
            max_batch: 8,
            // Generous window so concurrent clients reliably land in one batch
            // even on a loaded CI machine.
            max_wait: Duration::from_millis(250),
        },
        ..ServeConfig::default()
    };
    let server = serve("127.0.0.1:0", registry, config).expect("bind loopback");
    (server, model)
}

fn predict_one(addr: std::net::SocketAddr, text: &str) -> Vec<f64> {
    let body = format!("{{\"text\":{}}}", holistix::corpus::json::json_escape(text));
    let (status, body) = http_request(addr, "POST", "/predict", Some(&body)).expect("predict");
    assert_eq!(status, 200, "predict failed: {body}");
    let document = JsonValue::parse(&body).expect("predict response is JSON");
    let results = document.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 1);
    results[0]
        .get("probabilities")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|p| p.as_f64().unwrap())
        .collect()
}

fn max_batch_from_metrics(addr: std::net::SocketAddr) -> usize {
    let (status, body) = http_request(addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    let document = JsonValue::parse(&body).expect("metrics response is JSON");
    let batches = document.get("batches").unwrap();
    let max_size = batches.get("max_size").unwrap().as_usize().unwrap();
    // The histogram must corroborate the max: some batch of that size exists.
    if max_size > 0 {
        let histogram = batches.get("histogram").unwrap();
        let count = histogram
            .get(&max_size.to_string())
            .and_then(|v| v.as_usize())
            .unwrap_or(0);
        assert!(count > 0, "histogram missing the max batch size {max_size}");
    }
    max_size
}

/// The acceptance test: ≥2 concurrent requests batch together, and every
/// client gets probabilities bit-identical to single-text scoring.
#[test]
fn concurrent_requests_batch_together_and_stay_bit_identical() {
    let (server, model) = start_server();
    let addr = server.addr();

    let corpus = HolistixCorpus::generate_small(30, 99);
    let texts: Vec<String> = corpus
        .texts()
        .iter()
        .take(4)
        .map(|t| t.to_string())
        .collect();
    assert_eq!(texts.len(), 4);
    let expected: Vec<Vec<f64>> = texts.iter().map(|t| model.probabilities_one(t)).collect();

    // Several rounds of 4 concurrent single-text clients. One round is
    // normally enough for a ≥2 batch; retry a few times to be immune to a
    // pathologically scheduled CI box. Correctness is asserted every round.
    let mismatches = Arc::new(AtomicUsize::new(0));
    for _round in 0..5 {
        let barrier = Arc::new(Barrier::new(texts.len()));
        crossbeam::thread::scope(|scope| {
            for (text, want) in texts.iter().zip(&expected) {
                let barrier = Arc::clone(&barrier);
                let mismatches = Arc::clone(&mismatches);
                scope.spawn(move |_| {
                    barrier.wait();
                    let got = predict_one(addr, text);
                    assert_eq!(got.len(), want.len());
                    for (g, w) in got.iter().zip(want) {
                        if g.to_bits() != w.to_bits() {
                            mismatches.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        })
        .expect("client scope failed");
        if max_batch_from_metrics(addr) >= 2 {
            break;
        }
    }

    assert_eq!(
        mismatches.load(Ordering::SeqCst),
        0,
        "served probabilities diverged bitwise from probabilities_one"
    );
    let max_batch = max_batch_from_metrics(addr);
    assert!(
        max_batch >= 2,
        "no cross-request batch formed (max batch size {max_batch})"
    );
    server.shutdown();
}

/// A multi-text request is scored as one batch even with no concurrency, and
/// the answers match single-text scoring bitwise.
#[test]
fn multi_text_request_forms_its_own_batch() {
    let (server, model) = start_server();
    let addr = server.addr();

    let corpus = HolistixCorpus::generate_small(30, 5);
    let texts: Vec<&str> = corpus.texts().iter().take(3).copied().collect();
    let escaped: Vec<String> = texts
        .iter()
        .map(|t| holistix::corpus::json::json_escape(t))
        .collect();
    let body = format!("{{\"texts\":[{}]}}", escaped.join(","));
    let (status, response) = http_request(addr, "POST", "/predict", Some(&body)).unwrap();
    assert_eq!(status, 200, "{response}");

    let document = JsonValue::parse(&response).unwrap();
    let results = document.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 3);
    for (result, text) in results.iter().zip(&texts) {
        let got: Vec<f64> = result
            .get("probabilities")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|p| p.as_f64().unwrap())
            .collect();
        let want = model.probabilities_one(text);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "row for {text:?} diverged");
        }
        // The reported label is the argmax of the probabilities.
        let label_index = result.get("label_index").unwrap().as_usize().unwrap();
        let argmax = holistix::linalg::argmax(&want).unwrap();
        assert_eq!(label_index, argmax);
    }
    assert!(max_batch_from_metrics(addr) >= 3);
    server.shutdown();
}

/// The `/reload` liveness bar: while a slow reload fit runs on its dedicated
/// thread, `/predict` must keep answering — the fit never runs on an HTTP
/// worker or the batcher, and the registry swap is atomic, so no request ever
/// waits on training or observes a half-fitted model.
#[test]
fn predict_keeps_answering_during_a_slow_reload() {
    let (server, _model) = start_server();
    let addr = server.addr();

    // A reload corpus big enough that the refit takes real wall-clock time on
    // any machine (the startup corpus is 120 posts; this is ~20×).
    let corpus = HolistixCorpus::generate_small(2400, 77);
    let jsonl = holistix_corpus::io::to_jsonl(&corpus.posts);
    assert!(jsonl.len() < 1 << 20, "reload body must fit the 1 MiB cap");
    let n_posts = corpus.posts.len();

    let (status, body) = http_request(addr, "POST", "/reload", Some(&jsonl)).expect("reload");
    assert_eq!(status, 202, "{body}");

    // Immediately hammer /predict while the fit runs. Every request must get a
    // well-formed answer (old or new model — liveness, not pinning, is the
    // contract), and none may error.
    let during_reload = Arc::new(AtomicUsize::new(0));
    for round in 0..6 {
        let text = format!("i feel alone and exhausted round {round}");
        let probabilities = predict_one(addr, &text);
        assert_eq!(probabilities.len(), 6);
        let total: f64 = probabilities.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "round {round} sum {total}");
        if server.metrics().reloads_total() == 0 {
            during_reload.fetch_add(1, Ordering::SeqCst);
        }
    }

    // Wait for the swap, then confirm the new registry is live and serving.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while server.metrics().reloads_total() < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "reload never completed"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let (status, body) = http_request(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let metrics = JsonValue::parse(&body).unwrap();
    let registry = metrics.get("registry").unwrap();
    assert_eq!(registry.get("reloads_total").unwrap().as_f64(), Some(1.0));
    assert_eq!(
        registry.get("corpus_size").unwrap().as_f64(),
        Some(n_posts as f64)
    );
    let probabilities = predict_one(addr, "i feel alone after the reload");
    assert_eq!(probabilities.len(), 6);
    // Informational: on most machines some predicts land mid-fit. Liveness is
    // asserted above either way.
    println!(
        "predicts answered during reload: {}/6",
        during_reload.load(Ordering::SeqCst)
    );
    server.shutdown();
}

/// The keep-alive bar: one TCP connection carries many requests, the server's
/// reuse counter proves no reconnects happened, and every answer over the
/// persistent connection stays bit-identical to direct scoring — connection
/// reuse, like batching, changes latency, never answers.
#[test]
fn keep_alive_session_reuses_one_connection_bitwise() {
    let (server, model) = start_server();
    let addr = server.addr();

    let corpus = HolistixCorpus::generate_small(30, 41);
    let texts: Vec<&str> = corpus.texts().iter().take(5).copied().collect();

    let mut client = HttpClient::connect(addr).expect("connect");
    for text in &texts {
        let body = format!("{{\"text\":{}}}", holistix::corpus::json::json_escape(text));
        let (status, response) = client
            .request("POST", "/predict", Some(&body))
            .expect("keep-alive predict");
        assert_eq!(status, 200, "{response}");
        let document = JsonValue::parse(&response).unwrap();
        let results = document.get("results").unwrap().as_array().unwrap();
        let got: Vec<f64> = results[0]
            .get("probabilities")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|p| p.as_f64().unwrap())
            .collect();
        let want = model.probabilities_one(text);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "row for {text:?} diverged");
        }
    }
    // /metrics over the same connection: 5 predicts + this = 5 reuses.
    let (status, body) = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let metrics = JsonValue::parse(&body).unwrap();
    let reuses = metrics
        .get("keepalive_reuses_total")
        .unwrap()
        .as_usize()
        .unwrap();
    assert_eq!(reuses, texts.len(), "expected every follow-up to reuse");
    drop(client);
    server.shutdown();
}

/// A deliberately slow scorer that blocks inside `probabilities` until the
/// test releases it (with a hard deadline so a failing test cannot wedge the
/// server's queue thread forever). Registered as the BERT analogue.
struct GatedScorer {
    started: Arc<AtomicBool>,
    release: Arc<AtomicBool>,
}

impl Scorer for GatedScorer {
    fn probabilities(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        self.started.store(true, Ordering::SeqCst);
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while !self.release.load(Ordering::SeqCst) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        texts
            .iter()
            .map(|_| vec![0.5, 0.1, 0.1, 0.1, 0.1, 0.1])
            .collect()
    }

    fn kind(&self) -> BaselineKind {
        BaselineKind::Transformer(holistix::transformer::ModelKind::Bert)
    }

    fn cost_hint(&self) -> Duration {
        Duration::from_millis(50)
    }
}

/// The per-kind queue isolation bar: with the slow (transformer) queue
/// *provably in the middle of scoring a batch*, classical `/predict` requests
/// must keep completing with bit-identical answers. Under the old
/// single-batcher design every one of these requests would sit behind the
/// blocked `probabilities` call; with per-kind queues the classical drain
/// loop never sees the slow batch. Deterministic — the slow scorer is gated
/// on a flag, not a sleep, so no timing assumptions.
#[test]
fn classical_predicts_complete_while_slow_scorer_batch_is_in_flight() {
    let corpus = HolistixCorpus::generate_small(120, 13);
    let texts = corpus.texts();
    let labels = corpus.label_indices();
    let lr = Arc::new(FittedBaseline::fit(
        BaselineKind::LogisticRegression,
        SpeedProfile::Tiny,
        &texts,
        &labels,
        13,
    ));
    let started = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let registry = ModelRegistry::from_scorers(vec![
        lr.clone() as Arc<dyn Scorer>,
        Arc::new(GatedScorer {
            started: Arc::clone(&started),
            release: Arc::clone(&release),
        }),
    ]);
    let server = serve(
        "127.0.0.1:0",
        registry,
        ServeConfig {
            handlers: 4,
            batch: BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();

    let slow_done = Arc::new(AtomicBool::new(false));
    crossbeam::thread::scope(|scope| {
        let slow_done_flag = Arc::clone(&slow_done);
        scope.spawn(move |_| {
            let (status, body) = http_request(
                addr,
                "POST",
                "/predict",
                Some(r#"{"text":"saturate the slow queue","model":"BERT"}"#),
            )
            .expect("slow predict");
            assert_eq!(status, 200, "{body}");
            slow_done_flag.store(true, Ordering::SeqCst);
        });

        // Wait until the slow queue is demonstrably inside its scoring call.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !started.load(Ordering::SeqCst) {
            assert!(
                std::time::Instant::now() < deadline,
                "slow scorer never started"
            );
            std::thread::sleep(Duration::from_millis(2));
        }

        // Classical requests must answer — correctly — while the slow batch
        // is still in flight.
        for (i, text) in texts.iter().take(6).enumerate() {
            let got = predict_one(addr, text);
            let want = lr.probabilities_one(text);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "classical row {i} diverged");
            }
            assert!(
                !slow_done.load(Ordering::SeqCst),
                "slow request finished before release — the gate is broken"
            );
        }

        // The slow queue's depth is visible in /metrics while it is stuck.
        let (status, body) = http_request(addr, "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        let metrics = JsonValue::parse(&body).unwrap();
        let queues = metrics.get("queues").unwrap();
        assert!(queues.get("BERT").is_some(), "no BERT queue section");
        assert!(queues.get("LR").is_some(), "no LR queue section");

        release.store(true, Ordering::SeqCst);
    })
    .expect("isolation scope failed");

    assert!(
        slow_done.load(Ordering::SeqCst),
        "slow request never finished"
    );
    server.shutdown();
}

/// `/explain` over HTTP agrees with running the LIME explainer directly
/// against the warm model (same config, same seed).
#[test]
fn explain_endpoint_matches_direct_lime() {
    use holistix_explain::{LimeConfig, LimeExplainer};
    let (server, model) = start_server();
    let addr = server.addr();

    let text = "i feel alone and isolated and nobody understands me";
    let lime = LimeConfig {
        n_samples: 50,
        ..LimeConfig::default()
    };
    let direct = LimeExplainer::new(lime).explain(&*model, text, None);

    let body = format!(
        "{{\"text\":{},\"n_samples\":50}}",
        holistix::corpus::json::json_escape(text)
    );
    let (status, response) = http_request(addr, "POST", "/explain", Some(&body)).unwrap();
    assert_eq!(status, 200, "{response}");
    let document = JsonValue::parse(&response).unwrap();
    assert_eq!(
        document.get("target_class").unwrap().as_usize().unwrap(),
        direct.target_class
    );
    let tokens = document.get("tokens").unwrap().as_array().unwrap();
    assert!(!tokens.is_empty());
    for (served, (token, weight)) in tokens.iter().zip(&direct.token_weights) {
        assert_eq!(served.get("token").unwrap().as_str(), Some(token.as_str()));
        assert_eq!(
            served.get("weight").unwrap().as_f64().unwrap().to_bits(),
            weight.to_bits()
        );
    }
    server.shutdown();
}
