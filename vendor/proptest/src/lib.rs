//! Offline shim for the slice of `proptest` the property tests use.
//!
//! Supports: range strategies over integers and `f64`, string strategies from a
//! regex subset (`.`, `[...]` classes, `{m,n}` repetition), `collection::vec`,
//! tuple strategies, `prop_map`, the `proptest!` macro (with an optional
//! `#![proptest_config(...)]`), and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! generated inputs but is not minimised) and a fixed deterministic seed per test
//! name, so failures are reproducible across runs and machines without a
//! persistence file.

use std::ops::Range;

/// Deterministic splitmix64 generator for test-case inputs.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test-name hash and case index.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash used to derive per-test seeds from the test name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator. The shim generates directly (no value tree / shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String literals are regex strategies (subset: `.`, char classes, `{m,n}`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` of values from `element`, sized within `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

mod regex {
    use super::TestRng;

    enum Atom {
        Any,
        Class(Vec<char>),
        Literal(char),
    }

    struct Unit {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Characters `.` draws from: printable ASCII plus a few multi-byte
    /// code points so byte-index handling gets exercised.
    const ANY_EXTRAS: [char; 6] = ['é', 'ß', 'λ', '√', '中', '🙂'];

    fn parse(pattern: &str) -> Vec<Unit> {
        let mut chars = pattern.chars().peekable();
        let mut units = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '[' => {
                    let mut class = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        match chars.next() {
                            None => panic!("unterminated char class in {pattern:?}"),
                            Some(']') => break,
                            Some('\\') => {
                                let esc = chars.next().expect("dangling escape");
                                class.push(esc);
                                prev = Some(esc);
                            }
                            Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                                let start = prev.unwrap();
                                let end = chars.next().unwrap();
                                assert!(start <= end, "bad range in {pattern:?}");
                                // The range start is already in `class`; add the rest.
                                for code in (start as u32 + 1)..=(end as u32) {
                                    if let Some(ch) = char::from_u32(code) {
                                        class.push(ch);
                                    }
                                }
                                prev = None;
                            }
                            Some(ch) => {
                                class.push(ch);
                                prev = Some(ch);
                            }
                        }
                    }
                    assert!(!class.is_empty(), "empty char class in {pattern:?}");
                    Atom::Class(class)
                }
                '\\' => Atom::Literal(chars.next().expect("dangling escape")),
                c => Atom::Literal(c),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("bad repetition"),
                        hi.parse().expect("bad repetition"),
                    ),
                    None => {
                        let n = spec.parse().expect("bad repetition");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            units.push(Unit { atom, min, max });
        }
        units
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for unit in parse(pattern) {
            let n = unit.min + rng.below((unit.max - unit.min + 1) as u64) as usize;
            for _ in 0..n {
                match &unit.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(class) => out.push(class[rng.below(class.len() as u64) as usize]),
                    Atom::Any => {
                        // ~1 in 8 draws picks a multi-byte char.
                        if rng.below(8) == 0 {
                            out.push(ANY_EXTRAS[rng.below(ANY_EXTRAS.len() as u64) as usize]);
                        } else {
                            out.push((0x20u8 + rng.below(0x5F) as u8) as char);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Declare property tests: each `fn name(arg in strategy, ...) { body }` becomes a
/// `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        // `#[test]` comes through `$meta` — the caller writes it, as in real proptest.
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "property {} failed at case {case} (deterministic; rerun reproduces): {message}",
                        stringify!($name),
                    );
                }
            }
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                left,
                right,
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-h]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='h').contains(&c)));
        }
        let with_space = crate::Strategy::generate(&"[a-f ]{0,40}", &mut rng);
        assert!(with_space
            .chars()
            .all(|c| c == ' ' || ('a'..='f').contains(&c)));
        let escaped = crate::Strategy::generate(&"[a-z ,.!?'\\-]{0,20}", &mut rng);
        assert!(escaped
            .chars()
            .all(|c| c.is_ascii_lowercase() || " ,.!?'-".contains(c)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies, config and assertions together.
        #[test]
        fn macro_machinery_works(n in 1usize..10, xs in collection::vec(0u64..5, 0..4), s in ".{0,10}") {
            prop_assert!((1..10).contains(&n));
            prop_assert!(xs.len() < 4);
            prop_assert!(xs.iter().all(|&x| x < 5));
            prop_assert_eq!(s.len(), s.len());
        }

        /// Tuple and prop_map strategies compose.
        #[test]
        fn mapped_tuples((a, b) in (0usize..6, 0usize..6), v in collection::vec((0usize..3, 0usize..3), 1..5).prop_map(|pairs| pairs.into_iter().map(|(x, _)| x).collect::<Vec<_>>())) {
            prop_assert!(a < 6 && b < 6);
            prop_assert!(!v.is_empty());
        }
    }
}
