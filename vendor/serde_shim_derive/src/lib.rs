//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace builds fully offline, so the real `serde_derive` is unavailable.
//! Nothing in the repository serialises through serde's data model (the one JSON
//! code path, `holistix_corpus::io`, hand-rolls its records), so the derives only
//! need to exist, not to generate code. These macros accept any item and expand to
//! nothing, which keeps every `#[derive(Serialize, Deserialize)]` in the codebase
//! compiling unchanged and leaves a drop-in seam for the real serde later.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
