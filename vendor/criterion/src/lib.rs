//! Offline shim for the slice of `criterion` the bench harness uses.
//!
//! Implements real wall-clock measurement (median over `sample_size` samples, each
//! sample timing one batch of iterations) with plain-text reporting, behind the
//! criterion API surface the `benches/` files call: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, measurement_time, bench_function,
//! bench_with_input, finish}`, `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros. Statistical analysis, plotting
//! and baseline comparison are out of scope — the numbers printed are honest
//! medians, which is enough for the BENCH trajectory to track relative speedups.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` resolves as in the real crate.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    n_samples: usize,
}

impl Bencher {
    /// Measure `f`, recording one duration per sample batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: size the batch so one sample takes ≥ ~1ms,
        // keeping per-sample timer overhead negligible without criterion's full
        // warm-up phase.
        let start = Instant::now();
        std_black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(1);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        self.samples.clear();
        for _ in 0..self.n_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(f());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn median(&self) -> Duration {
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted.get(sorted.len() / 2).copied().unwrap_or_default()
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark (criterion default is 100; the shim
    /// defaults lower to keep offline runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim's batch calibration already bounds
    /// run time, so the requested measurement window is not enforced.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run and report one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Run and report one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
        self
    }

    fn run<F: FnOnce(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            n_samples: self.sample_size,
        };
        f(&mut bencher);
        println!(
            "{}/{:<40} median {:>12.3?}  ({} samples)",
            self.name,
            id.id,
            bencher.median(),
            bencher.samples.len()
        );
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples_and_median() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut ran = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("tfidf").id, "tfidf");
    }
}
