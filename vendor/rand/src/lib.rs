//! Offline shim for the slice of `rand` 0.8 the corpus crate uses.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen::<f64>()` and
//! `Rng::gen_range` over integer ranges. The generator is splitmix64 — not the
//! ChaCha12 the real `StdRng` wraps, so seeded streams differ from upstream rand,
//! but every consumer in this workspace only needs determinism *within* the
//! workspace (synthetic corpus generation, shuffles, annotation noise), not
//! cross-crate reproducibility of rand's exact streams.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (`seed_from_u64` is the only constructor used here).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types uniform ranges can be sampled over (stand-in for rand's
/// `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// `end - self`, as an unsigned span (caller guarantees `self <= end`).
    fn span_to(self, end: Self) -> u64;
    /// `self + delta` (caller guarantees no overflow within the sampled range).
    fn offset(self, delta: u64) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn span_to(self, end: Self) -> u64 {
                end.wrapping_sub(self) as u64
            }
            fn offset(self, delta: u64) -> Self {
                self.wrapping_add(delta as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32);

/// Ranges samplable via [`Rng::gen_range`]. Mirroring rand, there is exactly one
/// impl per range shape (generic in the element type) so integer-literal ranges
/// infer their type from the call site.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        let span = self.start.span_to(self.end);
        // Lemire multiply-shift reduction: unbiased enough for simulation use.
        let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start.offset(draw)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        let span = start.span_to(end) + 1;
        let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        start.offset(draw)
    }
}

/// The raw random-word source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution (uniform `[0,1)` for `f64`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64; see crate docs for the
    /// divergence from upstream rand's ChaCha-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                // Avoid the all-zero fixed point and decorrelate small seeds.
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..2000 {
            let x = rng.gen_range(0..10usize);
            assert!(x < 10);
            let y = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&y));
            seen_low |= y == 2;
            seen_high |= y == 4;
        }
        assert!(
            seen_low && seen_high,
            "inclusive endpoints should both occur"
        );
    }
}
