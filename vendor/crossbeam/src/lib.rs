//! Offline shim for the slice of `crossbeam` this workspace uses: scoped threads.
//!
//! `crossbeam::thread::scope` predates `std::thread::scope`; since Rust 1.63 the
//! standard library provides the same guarantee (spawned threads are joined before
//! the scope returns, so they may borrow from the caller's stack). This shim keeps
//! the crossbeam calling convention — the spawn closure receives a `&Scope` so
//! nested spawns work, and `scope` returns a `Result` — while delegating all the
//! actual thread management to `std::thread::scope`.

pub mod thread {
    use std::any::Any;

    /// Result type matching `crossbeam::thread`: `Err` carries a panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; threads spawned through it may borrow data owned by the
    /// caller of [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` holds the panic payload if it
        /// panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure receives
        /// the scope again so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope for spawning borrowing threads.
    ///
    /// Unlike crossbeam, panics of *unjoined* children propagate as panics out of
    /// the underlying `std::thread::scope` rather than as an `Err`; every caller in
    /// this workspace joins all handles, where the behaviour is identical.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1usize, 2, 3, 4];
        let total = thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<usize>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let result = thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(result, 42);
    }

    #[test]
    fn joined_panic_is_an_err() {
        thread::scope(|scope| {
            let handle = scope.spawn(|_| panic!("boom"));
            assert!(handle.join().is_err());
        })
        .unwrap();
    }
}
