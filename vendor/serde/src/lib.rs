//! Offline shim for the `serde` facade.
//!
//! Provides the two derive macros (as no-ops) and marker traits under the names the
//! codebase imports (`use serde::{Deserialize, Serialize};`). The derives live in
//! the macro namespace and the traits in the type namespace, so one `pub use` plus
//! two trait definitions cover both uses. See `serde_shim_derive` for why this is
//! sufficient.

pub use serde_shim_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
