//! Simulated annotation study (Fig. 2 and §II-E).
//!
//! The paper trains two student annotators on expert-curated guidelines, has them
//! label the corpus independently, and reports Fleiss' κ = 75.92 %. The raw annotator
//! decisions are not released, so this module simulates the study: an annotator reads
//! the gold label and, with a per-dimension probability, *confuses* it with a related
//! dimension. The confusion structure follows the paper's Limitations section —
//! Emotional↔Social and Spiritual↔Emotional are the documented hard pairs — so the
//! resulting disagreement pattern (and the κ value) mirrors the published study.

use crate::agreement::AgreementReport;
use crate::post::{AnnotatedPost, WellnessDimension, ALL_DIMENSIONS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A single simulated annotator: an accuracy level plus a dimension-confusion table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnotatorProfile {
    /// Display name (e.g. "student-annotator-1").
    pub name: String,
    /// Probability of keeping the gold label for an unambiguous post.
    pub base_accuracy: f64,
    /// Extra probability of error on posts whose dimension is one of the subjectively
    /// hard ones (Emotional, Spiritual).
    pub subjective_penalty: f64,
}

impl AnnotatorProfile {
    /// A profile calibrated so that two independent annotators reach a Fleiss' kappa
    /// in the neighbourhood of the paper's 75.92 %.
    pub fn student(name: &str) -> Self {
        Self {
            name: name.to_string(),
            base_accuracy: 0.93,
            subjective_penalty: 0.14,
        }
    }

    /// The probability this annotator keeps the gold label for `dim`.
    pub fn keep_probability(&self, dim: WellnessDimension) -> f64 {
        let penalty = match dim {
            WellnessDimension::Emotional | WellnessDimension::Spiritual => self.subjective_penalty,
            WellnessDimension::Intellectual => self.subjective_penalty * 0.4,
            _ => 0.0,
        };
        (self.base_accuracy - penalty).clamp(0.0, 1.0)
    }
}

/// The dimensions an annotator is most likely to confuse a gold label with, per the
/// Limitations section (ordered most-likely first).
pub fn confusable_with(dim: WellnessDimension) -> &'static [WellnessDimension] {
    use WellnessDimension::*;
    match dim {
        Emotional => &[Social, Spiritual, Physical],
        Spiritual => &[Emotional, Social],
        Social => &[Emotional],
        Physical => &[Emotional],
        Intellectual => &[Vocational, Emotional],
        Vocational => &[Intellectual, Emotional],
    }
}

/// A seeded simulated annotator.
#[derive(Debug, Clone)]
pub struct SimulatedAnnotator {
    profile: AnnotatorProfile,
    rng: StdRng,
}

impl SimulatedAnnotator {
    /// Create an annotator with a profile and a seed.
    pub fn new(profile: AnnotatorProfile, seed: u64) -> Self {
        Self {
            profile,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The annotator's profile.
    pub fn profile(&self) -> &AnnotatorProfile {
        &self.profile
    }

    /// Annotate one post: returns the label this annotator would assign.
    pub fn annotate(&mut self, post: &AnnotatedPost) -> WellnessDimension {
        let keep = self.profile.keep_probability(post.label);
        if self.rng.gen::<f64>() < keep {
            return post.label;
        }
        let confusables = confusable_with(post.label);
        // Mostly pick a documented confusable dimension; occasionally any other.
        if !confusables.is_empty() && self.rng.gen::<f64>() < 0.85 {
            confusables[self.rng.gen_range(0..confusables.len())]
        } else {
            loop {
                let candidate = ALL_DIMENSIONS[self.rng.gen_range(0..6)];
                if candidate != post.label {
                    return candidate;
                }
            }
        }
    }

    /// Annotate a whole corpus, returning dense label indices in post order.
    pub fn annotate_all(&mut self, posts: &[AnnotatedPost]) -> Vec<usize> {
        posts.iter().map(|p| self.annotate(p).index()).collect()
    }
}

/// A complete simulated annotation study: two independent annotators over a corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnotationStudy {
    /// First annotator's labels (dense indices, post order).
    pub annotator_a: Vec<usize>,
    /// Second annotator's labels.
    pub annotator_b: Vec<usize>,
    /// Gold labels.
    pub gold: Vec<usize>,
    /// Agreement statistics between the two annotators.
    pub agreement: AgreementReport,
    /// Fraction of items where the two annotators disagreed and at least one of them
    /// matched the gold label (the cases the perplexity guidelines adjudicate).
    pub adjudicated_fraction: f64,
}

impl AnnotationStudy {
    /// Run the study over `posts` with two student-profile annotators.
    pub fn run(posts: &[AnnotatedPost], seed: u64) -> Self {
        let mut a = SimulatedAnnotator::new(AnnotatorProfile::student("student-annotator-1"), seed);
        let mut b = SimulatedAnnotator::new(
            AnnotatorProfile::student("student-annotator-2"),
            seed.wrapping_add(0x9E37_79B9),
        );
        let labels_a = a.annotate_all(posts);
        let labels_b = b.annotate_all(posts);
        let gold: Vec<usize> = posts.iter().map(|p| p.label.index()).collect();
        let agreement = AgreementReport::from_two_raters(&labels_a, &labels_b, 6);
        let disagreements = labels_a
            .iter()
            .zip(&labels_b)
            .zip(&gold)
            .filter(|((a, b), _)| a != b)
            .count();
        let adjudicated = labels_a
            .iter()
            .zip(&labels_b)
            .zip(&gold)
            .filter(|((a, b), g)| a != b && (*a == *g || *b == *g))
            .count();
        Self {
            annotator_a: labels_a,
            annotator_b: labels_b,
            gold,
            agreement,
            adjudicated_fraction: if disagreements == 0 {
                0.0
            } else {
                adjudicated as f64 / disagreements as f64
            },
        }
    }

    /// Per-pair disagreement counts: `(gold dimension, assigned dimension, count)` for
    /// all annotator decisions that differ from gold. This is the empirical confusion
    /// pattern the Limitations section describes qualitatively.
    pub fn confusion_pairs(&self) -> Vec<(WellnessDimension, WellnessDimension, usize)> {
        let mut counts = vec![vec![0usize; 6]; 6];
        for (labels, gold) in [
            (&self.annotator_a, &self.gold),
            (&self.annotator_b, &self.gold),
        ] {
            for (&assigned, &g) in labels.iter().zip(gold) {
                if assigned != g {
                    counts[g][assigned] += 1;
                }
            }
        }
        let mut out = Vec::new();
        for (g, row) in counts.iter().enumerate() {
            for (a, &c) in row.iter().enumerate() {
                if c > 0 {
                    out.push((ALL_DIMENSIONS[g], ALL_DIMENSIONS[a], c));
                }
            }
        }
        out.sort_by_key(|x| std::cmp::Reverse(x.2));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::HolistixCorpus;

    #[test]
    fn annotator_mostly_agrees_with_gold() {
        let corpus = HolistixCorpus::generate_small(300, 21);
        let mut annotator = SimulatedAnnotator::new(AnnotatorProfile::student("a"), 5);
        let labels = annotator.annotate_all(&corpus.posts);
        let gold = corpus.label_indices();
        let acc =
            labels.iter().zip(&gold).filter(|(a, b)| a == b).count() as f64 / gold.len() as f64;
        assert!(acc > 0.8, "accuracy {acc}");
        assert!(acc < 1.0, "a simulated annotator should make some errors");
    }

    #[test]
    fn study_kappa_lands_near_paper_value() {
        let corpus = HolistixCorpus::generate(42);
        let study = AnnotationStudy::run(&corpus.posts, 7);
        let kappa = study.agreement.fleiss_kappa;
        assert!(
            (kappa - AgreementReport::paper_reference_kappa()).abs() < 0.08,
            "kappa {kappa} too far from 0.7592"
        );
    }

    #[test]
    fn study_is_deterministic() {
        let corpus = HolistixCorpus::generate_small(100, 3);
        let a = AnnotationStudy::run(&corpus.posts, 11);
        let b = AnnotationStudy::run(&corpus.posts, 11);
        assert_eq!(a.annotator_a, b.annotator_a);
        assert_eq!(a.agreement, b.agreement);
    }

    #[test]
    fn emotional_and_spiritual_are_most_confused() {
        let corpus = HolistixCorpus::generate(7);
        let study = AnnotationStudy::run(&corpus.posts, 19);
        let pairs = study.confusion_pairs();
        assert!(!pairs.is_empty());
        // Among gold EA/SpiA errors there should be more confusion than among gold VA.
        let errors_for = |d: WellnessDimension| -> usize {
            pairs
                .iter()
                .filter(|(g, _, _)| *g == d)
                .map(|(_, _, c)| c)
                .sum()
        };
        let ea_rate = errors_for(WellnessDimension::Emotional) as f64
            / WellnessDimension::Emotional.paper_count() as f64;
        let va_rate = errors_for(WellnessDimension::Vocational) as f64
            / WellnessDimension::Vocational.paper_count() as f64;
        assert!(
            ea_rate > va_rate,
            "EA error rate {ea_rate} should exceed VA {va_rate}"
        );
    }

    #[test]
    fn keep_probability_clamped_and_ordered() {
        let p = AnnotatorProfile::student("x");
        assert!(
            p.keep_probability(WellnessDimension::Emotional)
                < p.keep_probability(WellnessDimension::Social)
        );
        for d in ALL_DIMENSIONS {
            let kp = p.keep_probability(d);
            assert!((0.0..=1.0).contains(&kp));
        }
    }

    #[test]
    fn adjudicated_fraction_is_a_fraction() {
        let corpus = HolistixCorpus::generate_small(200, 2);
        let study = AnnotationStudy::run(&corpus.posts, 3);
        assert!((0.0..=1.0).contains(&study.adjudicated_fraction));
    }
}
