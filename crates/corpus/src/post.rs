//! Data model: wellness dimensions, posts, explanation spans.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The six wellness dimensions of the Dunn/Hettler model, in the order the paper's
/// tables use (IA, VA, SpiA, PA, SA, EA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WellnessDimension {
    /// Intellectual Aspect — academic stress, intellectual inadequacy, learning frustration.
    Intellectual,
    /// Vocational Aspect — workplace dissatisfaction, career struggles, work-related finances.
    Vocational,
    /// Spiritual Aspect — hopelessness, existential crises, loss of purpose.
    Spiritual,
    /// Physical Aspect — fatigue, sleep issues, body image, illness, medication.
    Physical,
    /// Social Aspect — loneliness, strained relationships, isolation, lack of belonging.
    Social,
    /// Emotional Aspect — emotional instability, exhaustion, inability to cope, sadness.
    Emotional,
}

/// All six dimensions in table order.
pub const ALL_DIMENSIONS: [WellnessDimension; 6] = [
    WellnessDimension::Intellectual,
    WellnessDimension::Vocational,
    WellnessDimension::Spiritual,
    WellnessDimension::Physical,
    WellnessDimension::Social,
    WellnessDimension::Emotional,
];

impl WellnessDimension {
    /// The short code used in the paper's tables (IA, VA, SpiA, PA, SA, EA).
    pub fn code(&self) -> &'static str {
        match self {
            Self::Intellectual => "IA",
            Self::Vocational => "VA",
            Self::Spiritual => "SpiA",
            Self::Physical => "PA",
            Self::Social => "SA",
            Self::Emotional => "EA",
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Intellectual => "Intellectual Aspect",
            Self::Vocational => "Vocational Aspect",
            Self::Spiritual => "Spiritual Aspect",
            Self::Physical => "Physical Aspect",
            Self::Social => "Social Aspect",
            Self::Emotional => "Emotional Aspect",
        }
    }

    /// Dense class index 0..6 in table order (IA=0, VA=1, SpiA=2, PA=3, SA=4, EA=5).
    pub fn index(&self) -> usize {
        match self {
            Self::Intellectual => 0,
            Self::Vocational => 1,
            Self::Spiritual => 2,
            Self::Physical => 3,
            Self::Social => 4,
            Self::Emotional => 5,
        }
    }

    /// Dimension for a dense class index. Panics if `index >= 6`.
    pub fn from_index(index: usize) -> Self {
        ALL_DIMENSIONS[index]
    }

    /// Number of posts of this dimension in the published dataset (Table II).
    pub fn paper_count(&self) -> usize {
        match self {
            Self::Intellectual => 155,
            Self::Vocational => 150,
            Self::Spiritual => 190,
            Self::Physical => 296,
            Self::Social => 406,
            Self::Emotional => 223,
        }
    }

    /// Class prior implied by the Table II counts.
    pub fn paper_prior(&self) -> f64 {
        self.paper_count() as f64 / 1420.0
    }
}

impl fmt::Display for WellnessDimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

impl FromStr for WellnessDimension {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ia" | "intellectual" | "intellectual aspect" => Ok(Self::Intellectual),
            "va" | "vocational" | "vocational aspect" => Ok(Self::Vocational),
            "spia" | "spiritual" | "spiritual aspect" => Ok(Self::Spiritual),
            "pa" | "physical" | "physical aspect" => Ok(Self::Physical),
            "sa" | "social" | "social aspect" => Ok(Self::Social),
            "ea" | "emotional" | "emotional aspect" => Ok(Self::Emotional),
            other => Err(format!("unknown wellness dimension: {other:?}")),
        }
    }
}

/// A byte-offset span inside a post's text, used for explanation annotations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first byte of the span.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// Create a span; panics if `end < start`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(end >= start, "Span end {end} before start {start}");
        Self { start, end }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The text covered by the span (clamped to the string's length).
    pub fn slice<'a>(&self, text: &'a str) -> &'a str {
        let end = self.end.min(text.len());
        let start = self.start.min(end);
        // Guard against slicing inside a UTF-8 code point.
        let start = (start..=end)
            .find(|&i| text.is_char_boundary(i))
            .unwrap_or(end);
        let end = (start..=end)
            .rev()
            .find(|&i| text.is_char_boundary(i))
            .unwrap_or(start);
        &text[start..end]
    }

    /// Whether two spans overlap by at least one byte.
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// A raw (pre-annotation) forum post.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Post {
    /// Stable identifier within the corpus.
    pub id: usize,
    /// The full post text.
    pub text: String,
    /// Source forum category (Anxiety, Depression, PTSD and Trauma, …), mirroring the
    /// Beyond Blue discussion categories the paper scraped.
    pub category: String,
}

impl Post {
    /// Word count using the shared tokeniser (word tokens only).
    pub fn word_count(&self) -> usize {
        holistix_text::tokenize(&self.text)
            .iter()
            .filter(|t| t.kind == holistix_text::TokenKind::Word)
            .count()
    }

    /// Sentence count using the shared sentence splitter.
    pub fn sentence_count(&self) -> usize {
        holistix_text::sentences(&self.text).len()
    }
}

/// A post together with its gold annotation: the wellness dimension and the
/// explanatory text span that justifies it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotatedPost {
    /// The underlying post.
    pub post: Post,
    /// Gold wellness dimension label.
    pub label: WellnessDimension,
    /// Explanatory span (byte offsets into `post.text`).
    pub span: Span,
}

impl AnnotatedPost {
    /// The explanation text the span points at.
    pub fn span_text(&self) -> &str {
        self.span.slice(&self.post.text)
    }

    /// Lower-cased content words of the explanation span (stop-words removed) — the
    /// unit of analysis for Table III and for the LIME overlap metrics of Table V.
    pub fn span_keywords(&self) -> Vec<String> {
        holistix_text::content_words(self.span_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for d in ALL_DIMENSIONS {
            let parsed: WellnessDimension = d.code().parse().unwrap();
            assert_eq!(parsed, d);
            let by_name: WellnessDimension = d.name().parse().unwrap();
            assert_eq!(by_name, d);
        }
        assert!("XX".parse::<WellnessDimension>().is_err());
    }

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, d) in ALL_DIMENSIONS.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(WellnessDimension::from_index(i), *d);
        }
    }

    #[test]
    fn paper_counts_sum_to_corpus_size() {
        let total: usize = ALL_DIMENSIONS.iter().map(|d| d.paper_count()).sum();
        assert_eq!(total, 1420);
        let prior_sum: f64 = ALL_DIMENSIONS.iter().map(|d| d.paper_prior()).sum();
        assert!((prior_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn social_is_largest_class() {
        let max = ALL_DIMENSIONS
            .iter()
            .max_by_key(|d| d.paper_count())
            .unwrap();
        assert_eq!(*max, WellnessDimension::Social);
    }

    #[test]
    fn span_slicing() {
        let text = "I feel exhausted all the time";
        let span = Span::new(7, 16);
        assert_eq!(span.slice(text), "exhausted");
        assert_eq!(span.len(), 9);
        assert!(!span.is_empty());
        assert!(Span::new(3, 3).is_empty());
    }

    #[test]
    fn span_slice_clamps_out_of_range() {
        let text = "short";
        assert_eq!(Span::new(2, 100).slice(text), "ort");
        assert_eq!(Span::new(50, 100).slice(text), "");
    }

    #[test]
    fn span_overlap() {
        let a = Span::new(0, 5);
        let b = Span::new(4, 8);
        let c = Span::new(5, 9);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn post_counts_words_and_sentences() {
        let p = Post {
            id: 0,
            text: "I hate my job. I feel alone.".to_string(),
            category: "Depression".to_string(),
        };
        assert_eq!(p.word_count(), 7);
        assert_eq!(p.sentence_count(), 2);
    }

    #[test]
    fn annotated_post_keywords() {
        let post = Post {
            id: 1,
            text: "Lately I feel exhausted and I can't sleep at night.".to_string(),
            category: "Anxiety".to_string(),
        };
        let ap = AnnotatedPost {
            span: Span::new(9, 51),
            post,
            label: WellnessDimension::Physical,
        };
        let kws = ap.span_keywords();
        assert!(kws.contains(&"exhausted".to_string()));
        assert!(kws.contains(&"sleep".to_string()));
    }
}
