//! Inter-annotator agreement statistics.
//!
//! The paper reports a Fleiss' kappa of 75.92 % between the two student annotators
//! (§II-E). This module implements Fleiss' kappa for any number of raters and Cohen's
//! kappa for exactly two, plus a small report type used by the annotation-study
//! experiment and the Fig. 2 bench.

use serde::{Deserialize, Serialize};

/// Fleiss' kappa over an `items × categories` table of rating counts.
///
/// `ratings[i][k]` is the number of raters that assigned item `i` to category `k`.
/// Every item must have the same total number of raters. Returns `None` for degenerate
/// inputs (no items, fewer than two raters, or zero observed/expected variance making
/// the statistic undefined); a table where all raters always agree on a single
/// category that is also the only category ever used yields `Some(1.0)`.
pub fn fleiss_kappa(ratings: &[Vec<usize>]) -> Option<f64> {
    if ratings.is_empty() {
        return None;
    }
    let n_items = ratings.len();
    let n_categories = ratings[0].len();
    if n_categories == 0 {
        return None;
    }
    let n_raters: usize = ratings[0].iter().sum();
    if n_raters < 2 {
        return None;
    }
    for (i, row) in ratings.iter().enumerate() {
        assert_eq!(
            row.len(),
            n_categories,
            "fleiss_kappa: row {i} has {} categories, expected {n_categories}",
            row.len()
        );
        assert_eq!(
            row.iter().sum::<usize>(),
            n_raters,
            "fleiss_kappa: row {i} has a different number of raters"
        );
    }

    // Per-item agreement P_i and per-category proportions p_k.
    let mut p_bar = 0.0;
    let mut p_k = vec![0.0f64; n_categories];
    for row in ratings {
        let mut agree = 0.0;
        for (k, &count) in row.iter().enumerate() {
            agree += (count * count.saturating_sub(1)) as f64;
            p_k[k] += count as f64;
        }
        p_bar += agree / (n_raters * (n_raters - 1)) as f64;
    }
    p_bar /= n_items as f64;
    for pk in &mut p_k {
        *pk /= (n_items * n_raters) as f64;
    }
    let p_e: f64 = p_k.iter().map(|p| p * p).sum();

    if (1.0 - p_e).abs() < 1e-12 {
        // Chance agreement is total: kappa is undefined unless observed agreement is
        // also total, in which case we follow the convention kappa = 1.
        return if (p_bar - 1.0).abs() < 1e-12 {
            Some(1.0)
        } else {
            None
        };
    }
    Some((p_bar - p_e) / (1.0 - p_e))
}

/// Cohen's kappa between two raters' label sequences over `n_categories` categories.
///
/// Labels are dense indices `0..n_categories`. Returns `None` for empty input or when
/// the statistic is undefined (expected agreement of exactly 1 with imperfect observed
/// agreement).
pub fn cohen_kappa(rater_a: &[usize], rater_b: &[usize], n_categories: usize) -> Option<f64> {
    assert_eq!(rater_a.len(), rater_b.len(), "cohen_kappa: length mismatch");
    if rater_a.is_empty() || n_categories == 0 {
        return None;
    }
    let n = rater_a.len() as f64;
    let mut confusion = vec![vec![0.0f64; n_categories]; n_categories];
    for (&a, &b) in rater_a.iter().zip(rater_b) {
        assert!(a < n_categories && b < n_categories, "label out of range");
        confusion[a][b] += 1.0;
    }
    let p_o: f64 = (0..n_categories).map(|k| confusion[k][k]).sum::<f64>() / n;
    let mut p_e = 0.0;
    for (k, confusion_row) in confusion.iter().enumerate() {
        let row: f64 = confusion_row.iter().sum::<f64>() / n;
        let col: f64 = confusion.iter().map(|r| r[k]).sum::<f64>() / n;
        p_e += row * col;
    }
    if (1.0 - p_e).abs() < 1e-12 {
        return if (p_o - 1.0).abs() < 1e-12 {
            Some(1.0)
        } else {
            None
        };
    }
    Some((p_o - p_e) / (1.0 - p_e))
}

/// Build the Fleiss rating table for two raters from their label sequences.
pub fn two_rater_table(
    rater_a: &[usize],
    rater_b: &[usize],
    n_categories: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(
        rater_a.len(),
        rater_b.len(),
        "two_rater_table: length mismatch"
    );
    rater_a
        .iter()
        .zip(rater_b)
        .map(|(&a, &b)| {
            let mut row = vec![0usize; n_categories];
            row[a] += 1;
            row[b] += 1;
            row
        })
        .collect()
}

/// Summary of an annotation study: observed agreement plus kappa statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgreementReport {
    /// Number of doubly annotated items.
    pub n_items: usize,
    /// Raw percentage agreement between the two raters.
    pub percent_agreement: f64,
    /// Fleiss' kappa (the statistic the paper reports).
    pub fleiss_kappa: f64,
    /// Cohen's kappa, for comparison.
    pub cohen_kappa: f64,
}

impl AgreementReport {
    /// Compute the report from two raters' labels.
    pub fn from_two_raters(rater_a: &[usize], rater_b: &[usize], n_categories: usize) -> Self {
        let n_items = rater_a.len();
        let agree = rater_a.iter().zip(rater_b).filter(|(a, b)| a == b).count();
        let table = two_rater_table(rater_a, rater_b, n_categories);
        Self {
            n_items,
            percent_agreement: if n_items == 0 {
                0.0
            } else {
                agree as f64 / n_items as f64
            },
            fleiss_kappa: fleiss_kappa(&table).unwrap_or(0.0),
            cohen_kappa: cohen_kappa(rater_a, rater_b, n_categories).unwrap_or(0.0),
        }
    }

    /// The value the paper reports: κ = 75.92 %.
    pub fn paper_reference_kappa() -> f64 {
        0.7592
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_gives_kappa_one() {
        let a = vec![0, 1, 2, 3, 4, 5, 0, 1];
        let report = AgreementReport::from_two_raters(&a, &a, 6);
        assert!((report.fleiss_kappa - 1.0).abs() < 1e-9);
        assert!((report.cohen_kappa - 1.0).abs() < 1e-9);
        assert_eq!(report.percent_agreement, 1.0);
    }

    #[test]
    fn fleiss_kappa_matches_wikipedia_worked_example() {
        // The classic 10-item, 14-rater, 5-category example from Fleiss (1971),
        // reproduced on the Wikipedia "Fleiss' kappa" page; κ ≈ 0.210.
        let table = vec![
            vec![0, 0, 0, 0, 14],
            vec![0, 2, 6, 4, 2],
            vec![0, 0, 3, 5, 6],
            vec![0, 3, 9, 2, 0],
            vec![2, 2, 8, 1, 1],
            vec![7, 7, 0, 0, 0],
            vec![3, 2, 6, 3, 0],
            vec![2, 5, 3, 2, 2],
            vec![6, 5, 2, 1, 0],
            vec![0, 2, 2, 3, 7],
        ];
        let kappa = fleiss_kappa(&table).unwrap();
        assert!((kappa - 0.210).abs() < 0.002, "kappa = {kappa}");
    }

    #[test]
    fn cohen_kappa_hand_example() {
        // 2x2 example: 20 items, raters agree on 15 (10 yes-yes, 5 no-no).
        // p_o = 0.75; marginals: A yes 12/20, B yes 13/20 -> p_e = 0.39+0.14 = 0.53 -> k ≈ 0.468
        let a = [vec![0usize; 12], vec![1usize; 8]].concat();
        let mut b = vec![0usize; 10];
        b.extend(vec![1usize; 2]);
        b.extend(vec![0usize; 3]);
        b.extend(vec![1usize; 5]);
        let kappa = cohen_kappa(&a, &b, 2).unwrap();
        assert!((kappa - 0.4680851).abs() < 1e-4, "kappa = {kappa}");
    }

    #[test]
    fn chance_only_agreement_is_near_zero() {
        // Rater B's labels are independent of A's: kappa should be near zero.
        let a: Vec<usize> = (0..600).map(|i| i % 6).collect();
        let b: Vec<usize> = (0..600).map(|i| (i / 6) % 6).collect();
        let report = AgreementReport::from_two_raters(&a, &b, 6);
        assert!(
            report.fleiss_kappa.abs() < 0.1,
            "kappa = {}",
            report.fleiss_kappa
        );
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert_eq!(fleiss_kappa(&[]), None);
        assert_eq!(fleiss_kappa(&[vec![1, 0]]), None); // single rater
        assert_eq!(cohen_kappa(&[], &[], 6), None);
        // All raters always pick category 0: expected agreement 1, observed 1 -> Some(1.0)
        assert_eq!(fleiss_kappa(&[vec![2, 0], vec![2, 0]]), Some(1.0));
    }

    #[test]
    fn two_rater_table_rows_sum_to_two() {
        let table = two_rater_table(&[0, 1, 2], &[0, 2, 2], 3);
        for row in &table {
            assert_eq!(row.iter().sum::<usize>(), 2);
        }
        assert_eq!(table[0], vec![2, 0, 0]);
        assert_eq!(table[1], vec![0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "different number of raters")]
    fn ragged_rater_counts_panic() {
        let _ = fleiss_kappa(&[vec![2, 0], vec![1, 0]]);
    }
}
