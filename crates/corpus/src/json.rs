//! Hand-rolled JSON, shared by the corpus serialisers and the serving layer.
//!
//! The build is fully offline and the vendored serde shim has no data model, so
//! every JSON byte this workspace reads or writes goes through this module:
//!
//! * [`json_escape`] — string escaping byte-compatible with `serde_json`;
//! * [`JsonParser`] — a pull scanner over a `&str` for callers that know their
//!   schema and want zero intermediate allocation ([`crate::io`] parses its flat
//!   JSONL records this way);
//! * [`JsonValue`] — a parsed JSON tree for callers with open-ended payloads
//!   (the `holistix-serve` request/response bodies), with a serialiser whose
//!   `f64` formatting round-trips bit-for-bit (Rust's shortest-repr `Display`).
//!
//! The scanner accepts the full escape grammar including UTF-16 surrogate
//! pairs (`\ud83d\ude42`), which ASCII-only serialisers such as Python's
//! `json.dumps` emit for non-BMP characters.

use std::fmt;

/// Deepest nesting [`JsonValue::parse`] accepts. Real payloads in this
/// workspace nest a handful of levels; the cap turns recursion bombs into
/// ordinary parse errors.
pub const MAX_JSON_DEPTH: usize = 128;

/// Escape a string into a double-quoted JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Pull scanner over a JSON document.
///
/// Callers that know their schema drive it directly (`expect('{')`,
/// `parse_string`, …); callers that don't use [`JsonValue::parse`], which is
/// built on [`JsonParser::parse_value`].
pub struct JsonParser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> JsonParser<'a> {
    /// A scanner positioned at the start of `input`.
    pub fn new(input: &'a str) -> Self {
        Self {
            chars: input.chars().peekable(),
        }
    }

    /// Skip whitespace.
    pub fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.chars.next();
        }
    }

    /// Consume `expected` (after whitespace) if it is next; report whether it was.
    pub fn eat(&mut self, expected: char) -> bool {
        self.skip_ws();
        if self.chars.peek() == Some(&expected) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    /// Consume `expected` (after whitespace) or error.
    pub fn expect(&mut self, expected: char) -> Result<(), String> {
        if self.eat(expected) {
            Ok(())
        } else {
            Err(format!(
                "expected `{expected}`, found {:?}",
                self.chars.peek()
            ))
        }
    }

    /// Error unless only whitespace remains.
    pub fn expect_end(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.chars.peek() {
            None => Ok(()),
            Some(c) => Err(format!("trailing characters starting at {c:?}")),
        }
    }

    /// Parse a double-quoted string with the full escape grammar.
    pub fn parse_string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(out),
                Some('\\') => match self.chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let code = self.parse_hex4()?;
                        // Non-BMP characters arrive as UTF-16 surrogate pairs
                        // (e.g. from serializers with ASCII-only output).
                        let code = if (0xD800..0xDC00).contains(&code) {
                            if self.chars.next() != Some('\\') || self.chars.next() != Some('u') {
                                return Err("lone high surrogate in \\u escape".to_string());
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate in \\u escape".to_string());
                            }
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            code
                        };
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .chars
                .next()
                .and_then(|c| c.to_digit(16))
                .ok_or("invalid \\u escape")?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    /// Parse a non-negative integer.
    pub fn parse_usize(&mut self) -> Result<usize, String> {
        self.skip_ws();
        let mut digits = String::new();
        while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
            digits.push(self.chars.next().unwrap());
        }
        if digits.is_empty() {
            return Err(format!("expected number, found {:?}", self.chars.peek()));
        }
        digits
            .parse()
            .map_err(|e| format!("invalid integer {digits:?}: {e}"))
    }

    /// Parse a JSON number (optional sign, fraction, exponent) as `f64`.
    pub fn parse_f64(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let mut digits = String::new();
        while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        {
            digits.push(self.chars.next().unwrap());
        }
        if digits.is_empty() {
            return Err(format!("expected number, found {:?}", self.chars.peek()));
        }
        digits
            .parse()
            .map_err(|e| format!("invalid number {digits:?}: {e}"))
    }

    /// Skip one scalar value (string, number, or bare word like `true`/`null`).
    pub fn skip_scalar(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.chars.peek() {
            Some('"') => self.parse_string().map(|_| ()),
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                {
                    self.chars.next();
                }
                Ok(())
            }
            Some(c) if c.is_ascii_alphabetic() => {
                while matches!(self.chars.peek(), Some(c) if c.is_ascii_alphabetic()) {
                    self.chars.next();
                }
                Ok(())
            }
            other => Err(format!("cannot skip value starting with {other:?}")),
        }
    }

    /// Skip one complete JSON value of any type, including nested arrays and
    /// objects (what serde does for unknown fields). Same depth cap as
    /// [`Self::parse_value`].
    pub fn skip_value(&mut self) -> Result<(), String> {
        self.parse_value_at(0).map(|_| ())
    }

    /// Parse one complete JSON value. Nesting is capped at [`MAX_JSON_DEPTH`]
    /// so adversarial documents (e.g. a body of 400k `[`s) are a parse error,
    /// not a recursion-driven stack overflow.
    pub fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.parse_value_at(0)
    }

    fn parse_value_at(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth >= MAX_JSON_DEPTH {
            return Err(format!("JSON nested deeper than {MAX_JSON_DEPTH} levels"));
        }
        self.skip_ws();
        match self.chars.peek() {
            Some('"') => Ok(JsonValue::String(self.parse_string()?)),
            Some('{') => {
                self.expect('{')?;
                let mut fields = Vec::new();
                if !self.eat('}') {
                    loop {
                        let key = self.parse_string()?;
                        self.expect(':')?;
                        fields.push((key, self.parse_value_at(depth + 1)?));
                        if self.eat(',') {
                            continue;
                        }
                        self.expect('}')?;
                        break;
                    }
                }
                Ok(JsonValue::Object(fields))
            }
            Some('[') => {
                self.expect('[')?;
                let mut items = Vec::new();
                if !self.eat(']') {
                    loop {
                        items.push(self.parse_value_at(depth + 1)?);
                        if self.eat(',') {
                            continue;
                        }
                        self.expect(']')?;
                        break;
                    }
                }
                Ok(JsonValue::Array(items))
            }
            Some(c) if c.is_ascii_digit() || *c == '-' => Ok(JsonValue::Number(self.parse_f64()?)),
            Some(c) if c.is_ascii_alphabetic() => {
                let mut word = String::new();
                while matches!(self.chars.peek(), Some(c) if c.is_ascii_alphabetic()) {
                    word.push(self.chars.next().unwrap());
                }
                match word.as_str() {
                    "true" => Ok(JsonValue::Bool(true)),
                    "false" => Ok(JsonValue::Bool(false)),
                    "null" => Ok(JsonValue::Null),
                    other => Err(format!("unexpected bare word {other:?}")),
                }
            }
            other => Err(format!("unexpected character {other:?}")),
        }
    }
}

/// A parsed JSON document. Object fields keep insertion order (serialisation is
/// deterministic and duplicate keys resolve to the first occurrence on lookup).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(input: &str) -> Result<Self, String> {
        let mut p = JsonParser::new(input);
        let value = p.parse_value()?;
        p.expect_end()?;
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor: an object from key/value pairs.
    pub fn object(fields: Vec<(&str, JsonValue)>) -> Self {
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor: a string value.
    pub fn string(s: impl Into<String>) -> Self {
        JsonValue::String(s.into())
    }
}

impl fmt::Display for JsonValue {
    /// Compact serialisation. Numbers use Rust's shortest round-trip `f64`
    /// formatting, so `parse(format!("{v}"))` reproduces every finite number
    /// bit for bit (non-finite numbers serialise as `null`, as serde_json does).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) if n.is_finite() => write!(f, "{n}"),
            JsonValue::Number(_) => write!(f, "null"),
            JsonValue::String(s) => write!(f, "{}", json_escape(s)),
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(fields) => {
                write!(f, "{{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{value}", json_escape(key))?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_control_and_quote_characters() {
        assert_eq!(json_escape("plain"), "\"plain\"");
        assert_eq!(json_escape("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(json_escape("line\nbreak\ttab"), r#""line\nbreak\ttab""#);
        assert_eq!(json_escape("\u{1}"), r#""\u0001""#);
        // Non-ASCII passes through as UTF-8 (we never force \u escapes on output).
        assert_eq!(json_escape("caf\u{e9}"), "\"caf\u{e9}\"");
    }

    #[test]
    fn scanner_parses_strings_with_surrogate_pairs() {
        let mut p = JsonParser::new(r#""ok \ud83d\ude42""#);
        assert_eq!(p.parse_string().unwrap(), "ok \u{1F642}");
        assert!(JsonParser::new(r#""\ud83d""#).parse_string().is_err());
        assert!(JsonParser::new(r#""\ud83dA""#).parse_string().is_err());
        assert!(JsonParser::new(r#""\udc00x""#).parse_string().is_err());
    }

    #[test]
    fn scanner_parses_integers_and_rejects_junk() {
        let mut p = JsonParser::new(" 123 ");
        assert_eq!(p.parse_usize().unwrap(), 123);
        assert!(p.expect_end().is_ok());
        assert!(JsonParser::new("abc").parse_usize().is_err());
    }

    #[test]
    fn value_parses_nested_documents() {
        let v = JsonValue::parse(
            r#"{"texts":["a","b"],"top_k":3,"deep":{"x":[1,2.5,-3e1]},"flag":true,"none":null}"#,
        )
        .unwrap();
        let texts = v.get("texts").unwrap().as_array().unwrap();
        assert_eq!(texts[0].as_str(), Some("a"));
        assert_eq!(v.get("top_k").unwrap().as_usize(), Some(3));
        let deep = v.get("deep").unwrap().get("x").unwrap().as_array().unwrap();
        assert_eq!(deep[1].as_f64(), Some(2.5));
        assert_eq!(deep[2].as_f64(), Some(-30.0));
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn value_rejects_malformed_documents() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\":1} trailing").is_err());
        assert!(JsonValue::parse("nope").is_err());
        assert!(JsonValue::parse("").is_err());
    }

    #[test]
    fn nesting_bombs_are_errors_not_stack_overflows() {
        // 400k opening brackets fit comfortably in a 1 MiB HTTP body; without
        // the depth cap this aborts the process instead of returning Err.
        let bomb = "[".repeat(400_000);
        assert!(JsonValue::parse(&bomb).unwrap_err().contains("nested"));
        let object_bomb = "{\"a\":".repeat(400_000);
        assert!(JsonValue::parse(&object_bomb).is_err());
        // Documents at sane depths still parse.
        let deep_ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(JsonValue::parse(&deep_ok).is_ok());
    }

    #[test]
    fn serialisation_round_trips_values() {
        let v = JsonValue::object(vec![
            ("name", JsonValue::string("caf\u{e9} \"quoted\"")),
            (
                "probs",
                JsonValue::Array(vec![
                    JsonValue::Number(0.123_456_789_012_345_68),
                    JsonValue::Number(1.0),
                    JsonValue::Number(0.0),
                ]),
            ),
            ("ok", JsonValue::Bool(false)),
            ("nothing", JsonValue::Null),
        ]);
        let text = v.to_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        // The serving layer's acceptance bar: probabilities that cross the JSON
        // boundary must come back bit-identical.
        let mut rng_state = 0x9E3779B97F4A7C15u64;
        for _ in 0..1000 {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = (rng_state >> 11) as f64 / (1u64 << 53) as f64;
            let text = JsonValue::Number(x).to_string();
            let back = JsonValue::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} diverged via {text}");
        }
    }

    #[test]
    fn non_finite_numbers_serialise_as_null() {
        assert_eq!(JsonValue::Number(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn usize_accessor_rejects_fractions_and_negatives() {
        assert_eq!(JsonValue::Number(3.5).as_usize(), None);
        assert_eq!(JsonValue::Number(-1.0).as_usize(), None);
        assert_eq!(JsonValue::Number(7.0).as_usize(), Some(7));
        assert_eq!(JsonValue::string("7").as_usize(), None);
    }
}
