//! Corpus serialisation: JSONL and CSV.
//!
//! The paper releases Holistix as flat files on GitHub. These readers/writers let a
//! real release be dropped into this reproduction in place of the synthetic corpus:
//! the JSONL format carries the full data model (text, category, label, span); the CSV
//! format carries the `text,label` pairs most classification scripts expect.
//!
//! All JSON scanning and escaping lives in [`crate::json`] (shared with the
//! serving layer); this module only knows the JSONL record schema.

use crate::json::{json_escape, JsonParser};
use crate::post::{AnnotatedPost, Post, Span, WellnessDimension};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// One JSONL record.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct JsonlRecord {
    id: usize,
    text: String,
    category: String,
    label: String,
    span_start: usize,
    span_end: usize,
}

impl JsonlRecord {
    /// Render as a single-line JSON object via [`crate::json`] (the build is
    /// offline and the vendored serde shim has no data model); the field set is
    /// small and fixed, so this stays byte-compatible with what `serde_json`
    /// produced.
    fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"text\":{},\"category\":{},\"label\":{},\"span_start\":{},\"span_end\":{}}}",
            self.id,
            json_escape(&self.text),
            json_escape(&self.category),
            json_escape(&self.label),
            self.span_start,
            self.span_end
        )
    }

    /// Parse one JSON object. Field order is free, unknown scalar fields are
    /// ignored (matching serde's default), missing fields are errors.
    fn from_json(line: &str) -> Result<Self, String> {
        let mut p = JsonParser::new(line);
        let mut id = None;
        let mut text = None;
        let mut category = None;
        let mut label = None;
        let mut span_start = None;
        let mut span_end = None;
        p.expect('{')?;
        p.skip_ws();
        if !p.eat('}') {
            loop {
                let key = p.parse_string()?;
                p.expect(':')?;
                match key.as_str() {
                    "id" => id = Some(p.parse_usize()?),
                    "span_start" => span_start = Some(p.parse_usize()?),
                    "span_end" => span_end = Some(p.parse_usize()?),
                    "text" => text = Some(p.parse_string()?),
                    "category" => category = Some(p.parse_string()?),
                    "label" => label = Some(p.parse_string()?),
                    // Unknown fields of any shape (scalars, arrays, objects)
                    // are ignored, matching serde's default.
                    _ => p.skip_value()?,
                }
                p.skip_ws();
                if p.eat(',') {
                    continue;
                }
                p.expect('}')?;
                break;
            }
        }
        p.expect_end()?;
        Ok(Self {
            id: id.ok_or("missing field `id`")?,
            text: text.ok_or("missing field `text`")?,
            category: category.ok_or("missing field `category`")?,
            label: label.ok_or("missing field `label`")?,
            span_start: span_start.ok_or("missing field `span_start`")?,
            span_end: span_end.ok_or("missing field `span_end`")?,
        })
    }
}

impl From<&AnnotatedPost> for JsonlRecord {
    fn from(p: &AnnotatedPost) -> Self {
        Self {
            id: p.post.id,
            text: p.post.text.clone(),
            category: p.post.category.clone(),
            label: p.label.code().to_string(),
            span_start: p.span.start,
            span_end: p.span.end,
        }
    }
}

impl TryFrom<JsonlRecord> for AnnotatedPost {
    type Error = io::Error;

    fn try_from(r: JsonlRecord) -> Result<Self, Self::Error> {
        let label: WellnessDimension = r
            .label
            .parse()
            .map_err(|e: String| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if r.span_end < r.span_start || r.span_end > r.text.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "record {}: span {}..{} out of range",
                    r.id, r.span_start, r.span_end
                ),
            ));
        }
        Ok(AnnotatedPost {
            post: Post {
                id: r.id,
                text: r.text,
                category: r.category,
            },
            label,
            span: Span::new(r.span_start, r.span_end),
        })
    }
}

/// Serialise posts to a JSONL string (one JSON object per line).
pub fn to_jsonl(posts: &[AnnotatedPost]) -> String {
    let mut out = String::new();
    for p in posts {
        let record = JsonlRecord::from(p);
        out.push_str(&record.to_json());
        out.push('\n');
    }
    out
}

/// Parse posts from a JSONL string. Blank lines are skipped; malformed lines are errors.
pub fn from_jsonl(data: &str) -> io::Result<Vec<AnnotatedPost>> {
    let mut posts = Vec::new();
    for (lineno, line) in data.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let record = JsonlRecord::from_json(line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        posts.push(AnnotatedPost::try_from(record)?);
    }
    Ok(posts)
}

/// Write posts to a JSONL file.
pub fn write_jsonl(path: &Path, posts: &[AnnotatedPost]) -> io::Result<()> {
    let mut file = fs::File::create(path)?;
    file.write_all(to_jsonl(posts).as_bytes())
}

/// Read posts from a JSONL file.
pub fn read_jsonl(path: &Path) -> io::Result<Vec<AnnotatedPost>> {
    from_jsonl(&fs::read_to_string(path)?)
}

fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialise posts to a `text,label,span_text` CSV with a header row.
pub fn to_csv(posts: &[AnnotatedPost]) -> String {
    let mut out = String::from("text,label,span_text\n");
    for p in posts {
        out.push_str(&format!(
            "{},{},{}\n",
            csv_escape(&p.post.text),
            p.label.code(),
            csv_escape(p.span_text())
        ));
    }
    out
}

/// Parse a minimal `text,label[,...]` CSV (quoted fields supported) into
/// `(text, label)` pairs. The header row is required and skipped.
pub fn from_csv(data: &str) -> io::Result<Vec<(String, WellnessDimension)>> {
    let mut rows = Vec::new();
    for (lineno, line) in data.lines().enumerate() {
        if lineno == 0 || line.trim().is_empty() {
            continue;
        }
        let fields = parse_csv_line(line);
        if fields.len() < 2 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: expected at least 2 fields", lineno + 1),
            ));
        }
        let label: WellnessDimension = fields[1].parse().map_err(|e: String| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        rows.push((fields[0].clone(), label));
    }
    Ok(rows)
}

fn parse_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                current.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    fields.push(current);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::HolistixCorpus;

    #[test]
    fn jsonl_round_trip() {
        let corpus = HolistixCorpus::generate_small(40, 4);
        let jsonl = to_jsonl(&corpus.posts);
        let parsed = from_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, corpus.posts);
    }

    #[test]
    fn jsonl_skips_blank_lines_and_rejects_garbage() {
        let corpus = HolistixCorpus::generate_small(10, 4);
        let mut jsonl = to_jsonl(&corpus.posts);
        jsonl.push_str("\n\n");
        assert_eq!(from_jsonl(&jsonl).unwrap().len(), corpus.len());
        assert!(from_jsonl("not json\n").is_err());
    }

    #[test]
    fn jsonl_accepts_surrogate_pair_escapes() {
        // ASCII-only serializers (e.g. Python's json.dumps default) emit non-BMP
        // characters as UTF-16 surrogate pairs.
        let line = r#"{"id":0,"text":"ok \ud83d\ude42","category":"Anxiety","label":"PA","span_start":0,"span_end":2}"#;
        let posts = from_jsonl(line).unwrap();
        assert_eq!(posts[0].post.text, "ok \u{1F642}");
        // Lone or malformed surrogates are rejected, not mangled.
        let lone = r#"{"id":0,"text":"\ud83d","category":"Anxiety","label":"PA","span_start":0,"span_end":0}"#;
        assert!(from_jsonl(lone).is_err());
        let bad_low = r#"{"id":0,"text":"\ud83dA","category":"Anxiety","label":"PA","span_start":0,"span_end":0}"#;
        assert!(from_jsonl(bad_low).is_err());
    }

    #[test]
    fn jsonl_ignores_unknown_fields_of_any_shape() {
        // A real released corpus may carry extra fields; nested ones included.
        let line = r#"{"id":0,"text":"hi","category":"Anxiety","label":"PA","span_start":0,"span_end":1,"tags":["a",{"x":1}],"meta":{"source":"forum","ids":[1,2]},"score":0.5,"ok":true}"#;
        let posts = from_jsonl(line).unwrap();
        assert_eq!(posts[0].post.text, "hi");
    }

    #[test]
    fn jsonl_rejects_bad_span_and_label() {
        let bad_span = r#"{"id":0,"text":"hi","category":"Anxiety","label":"PA","span_start":0,"span_end":99}"#;
        assert!(from_jsonl(bad_span).is_err());
        let bad_label =
            r#"{"id":0,"text":"hi","category":"Anxiety","label":"ZZ","span_start":0,"span_end":1}"#;
        assert!(from_jsonl(bad_label).is_err());
    }

    #[test]
    fn jsonl_file_round_trip() {
        let corpus = HolistixCorpus::generate_small(20, 6);
        let dir = std::env::temp_dir().join("holistix_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.jsonl");
        write_jsonl(&path, &corpus.posts).unwrap();
        let parsed = read_jsonl(&path).unwrap();
        assert_eq!(parsed, corpus.posts);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn csv_round_trip_texts_and_labels() {
        let corpus = HolistixCorpus::generate_small(30, 8);
        let csv = to_csv(&corpus.posts);
        let rows = from_csv(&csv).unwrap();
        assert_eq!(rows.len(), corpus.len());
        for (row, post) in rows.iter().zip(&corpus.posts) {
            assert_eq!(row.0, post.post.text);
            assert_eq!(row.1, post.label);
        }
    }

    #[test]
    fn csv_quoting_handles_commas_and_quotes() {
        let line = parse_csv_line(r#""I said ""hi"", twice",PA,span"#);
        assert_eq!(line[0], r#"I said "hi", twice"#);
        assert_eq!(line[1], "PA");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("plain"), "plain");
    }

    #[test]
    fn csv_missing_fields_is_error() {
        assert!(from_csv("text,label\nonly-one-field\n").is_err());
        assert!(from_csv("text,label\nhello,NOPE\n").is_err());
    }
}
