//! # holistix-corpus
//!
//! The Holistix dataset substrate.
//!
//! The paper's central artifact is a corpus of 1,420 mental-health forum posts from
//! Australia's Beyond Blue forums, annotated with one of six wellness dimensions
//! (Dunn/Hettler model) and an explanatory text span. The raw posts cannot be
//! redistributed here, so this crate provides:
//!
//! * the **data model** — [`WellnessDimension`], [`Post`], [`Span`], [`AnnotatedPost`]
//!   ([`post`]),
//! * the **Table I indicator lexicons** and per-dimension phrase templates
//!   ([`lexicon`]),
//! * a **seeded synthetic corpus generator** calibrated to the Table II statistics and
//!   Table III frequent-word distributions ([`generator`]),
//! * **dataset statistics** reproducing Table II and Table III ([`stats`]),
//! * the **annotation framework**: simulated annotators with the confusion structure
//!   described in the paper's Limitations section, plus Fleiss'/Cohen's kappa
//!   ([`annotation`], [`agreement`]),
//! * **splits**: the paper's fixed 990/212/213 train/validation/test split and
//!   stratified k-fold cross-validation ([`splits`]),
//! * **serialisation**: JSONL and CSV readers/writers so a real Holistix release (from
//!   the authors' GitHub) can be dropped in instead of the synthetic corpus ([`io`]),
//!   built on a reusable hand-rolled JSON scanner/serialiser ([`json`]) that the
//!   `holistix-serve` HTTP layer shares.
//!
//! Everything is deterministic given a seed: `HolistixCorpus::generate(seed)` always
//! produces the same posts, labels and spans.

pub mod agreement;
pub mod annotation;
pub mod generator;
pub mod io;
pub mod json;
pub mod lexicon;
pub mod post;
pub mod splits;
pub mod stats;

pub use agreement::{cohen_kappa, fleiss_kappa, AgreementReport};
pub use annotation::{AnnotationStudy, AnnotatorProfile, SimulatedAnnotator};
pub use generator::{synthetic_lexicon, CorpusCalibration, CorpusGenerator, HolistixCorpus};
pub use json::JsonValue;
pub use lexicon::{DimensionLexicon, IndicatorLexicon};
pub use post::{AnnotatedPost, Post, Span, WellnessDimension, ALL_DIMENSIONS};
pub use splits::{kfold_stratified, train_val_test_split, CrossValidationFolds, DatasetSplit};
pub use stats::{frequent_span_words, CorpusStatistics, FrequentWords};
