//! Table I indicator lexicons and per-dimension phrase inventories.
//!
//! Table I of the paper lists, for every wellness dimension, the textual indicators an
//! annotator should look for (e.g. PA: "fatigue, sleep issues, body image concerns…")
//! together with example phrases. Table III lists the most frequent content words in
//! the gold explanation spans. This module encodes both:
//!
//! * [`IndicatorLexicon`] — weighted keyword lists per dimension, with the Table III
//!   words given weights proportional to their reported average counts, so the
//!   synthetic corpus reproduces the same lexical profile;
//! * phrase templates per dimension — short first-person clauses built around those
//!   indicators, used by the corpus generator to assemble posts and their explanation
//!   spans;
//! * shared *ambiguity* phrases — clauses that plausibly belong to more than one
//!   dimension (the EA↔SA and EA↔SpiA overlaps the Limitations section describes),
//!   which is what makes EA and SpiA hard for every model in Table IV.

use crate::post::{WellnessDimension, ALL_DIMENSIONS};
use std::collections::HashMap;

/// A keyword with a sampling weight (proportional to the Table III average counts for
/// words the paper reports, and 1.0 for supporting vocabulary).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedWord {
    /// Lower-cased keyword.
    pub word: &'static str,
    /// Relative sampling weight.
    pub weight: f64,
}

/// The keyword lexicon of a single wellness dimension.
#[derive(Debug, Clone)]
pub struct DimensionLexicon {
    /// The dimension this lexicon describes.
    pub dimension: WellnessDimension,
    /// Weighted indicator keywords (Table III words plus supporting vocabulary).
    pub keywords: Vec<WeightedWord>,
    /// First-person clause templates; `{}` is replaced with a sampled keyword.
    pub templates: Vec<&'static str>,
    /// Indicator description, quoted from Table I.
    pub indicators: &'static str,
    /// Example phrase from Table I.
    pub example: &'static str,
}

impl DimensionLexicon {
    /// All keywords without weights.
    pub fn keyword_strings(&self) -> Vec<&'static str> {
        self.keywords.iter().map(|w| w.word).collect()
    }

    /// Whether a (lower-cased) word is one of this dimension's indicator keywords.
    pub fn contains(&self, word: &str) -> bool {
        self.keywords.iter().any(|w| w.word == word)
    }
}

fn w(word: &'static str, weight: f64) -> WeightedWord {
    WeightedWord { word, weight }
}

/// The full Table I / Table III lexicon for all six dimensions.
#[derive(Debug, Clone)]
pub struct IndicatorLexicon {
    lexicons: Vec<DimensionLexicon>,
    /// Ambiguous clauses that fit more than one dimension, with the set of dimensions
    /// they could plausibly be labelled as. The first listed dimension is the one the
    /// perplexity guidelines would call "dominant".
    ambiguous: Vec<(&'static str, Vec<WellnessDimension>)>,
}

impl Default for IndicatorLexicon {
    fn default() -> Self {
        Self::new()
    }
}

impl IndicatorLexicon {
    /// Build the built-in lexicon.
    pub fn new() -> Self {
        use WellnessDimension::*;
        let lexicons = vec![
            DimensionLexicon {
                dimension: Intellectual,
                keywords: vec![
                    w("future", 10.0),
                    w("feel", 9.0),
                    w("hard", 9.0),
                    w("thoughts", 7.0),
                    w("lack", 7.0),
                    w("think", 6.0),
                    w("struggling", 5.0),
                    w("exams", 3.0),
                    w("study", 3.0),
                    w("studying", 2.5),
                    w("smart", 2.5),
                    w("learning", 2.0),
                    w("concentrate", 2.0),
                    w("focus", 2.0),
                    w("grades", 2.0),
                    w("university", 1.5),
                    w("assignments", 1.5),
                    w("failing", 1.5),
                    w("brain", 1.0),
                    w("stupid", 1.0),
                    w("understand", 1.0),
                    w("school", 1.0),
                ],
                templates: vec![
                    "I feel like I'll never be {} enough to pass my exams",
                    "I keep struggling to {} on my assignments and my grades are slipping",
                    "studying feels so hard and my {} just will not cooperate",
                    "I think about my {} and I feel like I lack what it takes",
                    "every lecture goes over my head and I feel {} compared to everyone",
                    "my thoughts go blank when I try to {} for the exam",
                    "I failed another test and I feel my {} is hopeless",
                    "I can't concentrate on my {} no matter how hard I try",
                ],
                indicators: "Discussions about academic stress, feelings of intellectual \
                             inadequacy, frustration with learning.",
                example: "I feel like I'll never be smart enough to pass my exams.",
            },
            DimensionLexicon {
                dimension: Vocational,
                keywords: vec![
                    w("job", 45.0),
                    w("work", 43.0),
                    w("money", 8.0),
                    w("career", 7.0),
                    w("financial", 7.0),
                    w("struggling", 6.0),
                    w("unemployed", 6.0),
                    w("boss", 3.0),
                    w("workplace", 2.5),
                    w("shifts", 2.0),
                    w("salary", 2.0),
                    w("redundant", 1.5),
                    w("deadlines", 2.0),
                    w("overworked", 1.5),
                    w("bills", 2.0),
                    w("fired", 1.5),
                    w("promotion", 1.0),
                    w("colleagues", 1.5),
                    w("interview", 1.0),
                    w("centrelink", 1.0),
                    w("rent", 1.5),
                ],
                templates: vec![
                    "my 9-5 {} drains me and I don't see the point in trying anymore",
                    "I lost my {} last month and the financial stress is crushing me",
                    "my boss keeps piling on {} and I can't keep up at work",
                    "I've been unemployed for months and the {} worries never stop",
                    "work is draining every bit of me and the {} barely covers rent",
                    "I dread going to {} every single morning",
                    "my career feels stuck and the {} pressure keeps building",
                    "I'm struggling to pay the {} since my hours got cut at work",
                ],
                indicators: "Workplace dissatisfaction, career struggles, financial burdens \
                             related to work or dissatisfaction with career progression.",
                example: "My 9-5 job drains me, and I don't see the point in trying anymore.",
            },
            DimensionLexicon {
                dimension: Spiritual,
                keywords: vec![
                    w("feel", 40.0),
                    w("life", 31.0),
                    w("thoughts", 9.0),
                    w("suicide", 8.0),
                    w("struggling", 7.0),
                    w("feeling", 6.0),
                    w("purpose", 4.0),
                    w("meaningless", 3.0),
                    w("pointless", 3.0),
                    w("empty", 3.0),
                    w("hopeless", 3.0),
                    w("lost", 2.5),
                    w("existence", 2.0),
                    w("meaning", 2.5),
                    w("worthless", 2.0),
                    w("faith", 1.5),
                    w("numb", 1.5),
                    w("direction", 1.5),
                    w("reason", 1.5),
                    w("living", 1.5),
                ],
                templates: vec![
                    "I don't know what my {} is anymore and everything feels meaningless",
                    "life feels completely {} and I keep asking why I am even here",
                    "I feel lost and my {} seems to have no direction at all",
                    "dark thoughts about {} keep creeping in when everything feels empty",
                    "I'm struggling to find any {} in my existence lately",
                    "nothing matters anymore and my {} feels hollow",
                    "I keep questioning whether my {} has any meaning left",
                    "I feel hopeless about {} and can't see a reason to keep going",
                ],
                indicators: "Expressions of hopelessness, self-doubt, existential crises, or \
                             struggling with purpose in life.",
                example:
                    "I don't know what my purpose is anymore, and everything feels meaningless.",
            },
            DimensionLexicon {
                dimension: Physical,
                keywords: vec![
                    w("anxiety", 42.0),
                    w("sleep", 30.0),
                    w("depression", 28.0),
                    w("disorder", 17.0),
                    w("diagnosed", 14.0),
                    w("bad", 11.0),
                    w("exhausted", 5.0),
                    w("tired", 4.0),
                    w("insomnia", 3.0),
                    w("medication", 4.0),
                    w("body", 4.0),
                    w("weight", 3.0),
                    w("eating", 3.0),
                    w("pain", 3.0),
                    w("panic", 3.0),
                    w("fatigue", 2.5),
                    w("appetite", 2.0),
                    w("headaches", 2.0),
                    w("nauseous", 1.5),
                    w("doctor", 2.0),
                    w("mirror", 1.5),
                    w("disgusting", 1.5),
                ],
                templates: vec![
                    "I feel exhausted all the time and can't even {} properly",
                    "I hate my {} and feel disgusting when I look in the mirror",
                    "the doctor diagnosed me with an anxiety {} and the medication makes me tired",
                    "my {} has been so bad that I barely sleep three hours a night",
                    "I've gained so much {} and I can't stand how my body looks",
                    "panic attacks leave my {} shaking and my heart racing",
                    "the insomnia and constant {} are wearing my body down",
                    "my depression makes even getting out of bed and {} feel impossible",
                ],
                indicators: "Mentions of fatigue, sleep issues, body image concerns, diet \
                             struggles, illness, or medication. Phrases related to body shaming, \
                             physical deterioration, weight concerns, or health anxiety.",
                example: "I feel exhausted all the time and can't even sleep properly.",
            },
            DimensionLexicon {
                dimension: Social,
                keywords: vec![
                    w("me", 48.0),
                    w("feel", 43.0),
                    w("people", 35.0),
                    w("talk", 21.0),
                    w("alone", 18.0),
                    w("friends", 17.0),
                    w("relationship", 17.0),
                    w("lonely", 5.0),
                    w("family", 6.0),
                    w("breakup", 4.0),
                    w("invisible", 3.0),
                    w("isolated", 3.0),
                    w("excluded", 2.5),
                    w("bullying", 2.5),
                    w("belong", 3.0),
                    w("partner", 3.0),
                    w("divorce", 2.0),
                    w("ignored", 2.0),
                    w("connection", 2.0),
                    w("social", 2.5),
                    w("circle", 1.5),
                    w("marriage", 1.5),
                ],
                templates: vec![
                    "I have no real {} and I feel invisible at school",
                    "ever since my breakup I feel like I've lost my entire social {}",
                    "nobody wants to {} to me and I spend every weekend alone",
                    "my {} keeps fighting with me and I feel so isolated at home",
                    "people around me have {} but I just feel excluded from everything",
                    "I feel like I don't {} anywhere and no one would notice if I left",
                    "the bullying at school makes me avoid {} completely",
                    "my relationship ended and now the loneliness and missing my {} is unbearable",
                ],
                indicators: "Mentions of loneliness, strained relationships, loss of social \
                             support, feeling excluded or isolated. Discussions about family, \
                             friends, breakups, bullying, or lack of belonging.",
                example: "I have no real friends, and I feel invisible at school.",
            },
            DimensionLexicon {
                dimension: Emotional,
                keywords: vec![
                    w("feel", 41.0),
                    w("anxiety", 23.0),
                    w("feeling", 18.0),
                    w("me", 9.0),
                    w("sad", 8.0),
                    w("crying", 7.0),
                    w("hard", 7.0),
                    w("overwhelmed", 4.0),
                    w("cope", 4.0),
                    w("angry", 3.0),
                    w("hate", 3.0),
                    w("scared", 3.0),
                    w("emotions", 3.0),
                    w("breakdown", 2.5),
                    w("tears", 2.5),
                    w("hopeless", 2.0),
                    w("mood", 2.0),
                    w("unstable", 1.5),
                    w("exhausted", 2.0),
                    w("worthless", 2.0),
                    w("guilt", 1.5),
                    w("shame", 1.5),
                ],
                templates: vec![
                    "I hate myself and don't think I {} in this world",
                    "I burst into tears over nothing and can't {} with my feelings",
                    "the sadness is so {} that I cry myself to sleep most nights",
                    "I feel so overwhelmed that even small things make {} break down",
                    "my emotions swing wildly and the {} never really goes away",
                    "I'm constantly on edge and the {} makes everything feel impossible",
                    "everything feels too hard and I just keep {} for no reason",
                    "the guilt and shame make me feel completely {} inside",
                ],
                indicators: "Emotional instability, feelings of emotional exhaustion, inability \
                             to cope, or extreme sadness.",
                example: "I hate myself and don't think I belong in this world.",
            },
        ];

        // Clauses that the Limitations section describes as ambiguous across dimensions.
        let ambiguous = vec![
            ("I don't belong anywhere", vec![Social, Emotional]),
            ("I feel lost", vec![Spiritual, Emotional]),
            ("I feel overwhelmed", vec![Emotional, Vocational]),
            ("I haven't left my room in days", vec![Social, Physical]),
            (
                "everything feels too much lately",
                vec![Emotional, Spiritual],
            ),
            ("I just feel empty inside", vec![Spiritual, Emotional]),
            (
                "I can't stop crying when I'm alone",
                vec![Emotional, Social],
            ),
            (
                "I feel like giving up on everything",
                vec![Spiritual, Emotional],
            ),
        ];

        Self {
            lexicons,
            ambiguous,
        }
    }

    /// The lexicon for a dimension.
    pub fn for_dimension(&self, dimension: WellnessDimension) -> &DimensionLexicon {
        &self.lexicons[dimension.index()]
    }

    /// All six per-dimension lexicons in table order.
    pub fn all(&self) -> &[DimensionLexicon] {
        &self.lexicons
    }

    /// Ambiguous clauses with the dimensions they could be labelled as (dominant first).
    pub fn ambiguous_clauses(&self) -> &[(&'static str, Vec<WellnessDimension>)] {
        &self.ambiguous
    }

    /// Map every keyword to the set of dimensions whose lexicon contains it. Useful
    /// for measuring lexical overlap (why EA is hard: its top words also appear in
    /// SA, PA and SpiA lexicons).
    pub fn keyword_dimension_map(&self) -> HashMap<&'static str, Vec<WellnessDimension>> {
        let mut map: HashMap<&'static str, Vec<WellnessDimension>> = HashMap::new();
        for lex in &self.lexicons {
            for kw in &lex.keywords {
                map.entry(kw.word).or_default().push(lex.dimension);
            }
        }
        map
    }

    /// Fraction of a dimension's keywords that are unique to it.
    pub fn distinctiveness(&self, dimension: WellnessDimension) -> f64 {
        let map = self.keyword_dimension_map();
        let lex = self.for_dimension(dimension);
        if lex.keywords.is_empty() {
            return 0.0;
        }
        let unique = lex
            .keywords
            .iter()
            .filter(|kw| map.get(kw.word).map(|ds| ds.len() == 1).unwrap_or(false))
            .count();
        unique as f64 / lex.keywords.len() as f64
    }

    /// Score a text against each dimension by counting (weighted) keyword hits — the
    /// rule-based "annotation guideline" classifier used to sanity-check the corpus
    /// and as the weak baseline in the ablation benches. Returns scores in table order.
    pub fn indicator_scores(&self, text: &str) -> [f64; 6] {
        let words = holistix_text::content_words(text);
        let mut scores = [0.0; 6];
        for lex in &self.lexicons {
            for kw in &lex.keywords {
                let hits = words.iter().filter(|wd| wd.as_str() == kw.word).count();
                scores[lex.dimension.index()] += hits as f64 * kw.weight.sqrt();
            }
        }
        scores
    }

    /// The dimension with the highest indicator score, or `None` if no keyword hits.
    pub fn classify_by_indicators(&self, text: &str) -> Option<WellnessDimension> {
        let scores = self.indicator_scores(text);
        if scores.iter().all(|&s| s == 0.0) {
            return None;
        }
        let idx = holistix_linalg_argmax(&scores);
        Some(ALL_DIMENSIONS[idx])
    }
}

// A tiny local argmax so `corpus` does not need to depend on `linalg`.
fn holistix_linalg_argmax(xs: &[f64; 6]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use WellnessDimension::*;

    #[test]
    fn every_dimension_has_a_lexicon() {
        let lex = IndicatorLexicon::new();
        assert_eq!(lex.all().len(), 6);
        for d in ALL_DIMENSIONS {
            let dl = lex.for_dimension(d);
            assert_eq!(dl.dimension, d);
            assert!(dl.keywords.len() >= 10, "{d} lexicon too small");
            assert!(dl.templates.len() >= 6, "{d} needs templates");
            assert!(!dl.indicators.is_empty());
            assert!(!dl.example.is_empty());
        }
    }

    #[test]
    fn table3_top_words_present_with_reported_weights() {
        let lex = IndicatorLexicon::new();
        let va = lex.for_dimension(Vocational);
        assert!(va
            .keywords
            .iter()
            .any(|k| k.word == "job" && k.weight == 45.0));
        let pa = lex.for_dimension(Physical);
        assert!(pa
            .keywords
            .iter()
            .any(|k| k.word == "anxiety" && k.weight == 42.0));
        let sa = lex.for_dimension(Social);
        assert!(sa
            .keywords
            .iter()
            .any(|k| k.word == "me" && k.weight == 48.0));
    }

    #[test]
    fn templates_have_a_placeholder() {
        let lex = IndicatorLexicon::new();
        for dl in lex.all() {
            for t in &dl.templates {
                assert!(t.contains("{}"), "template missing placeholder: {t}");
            }
        }
    }

    #[test]
    fn indicator_scores_pick_obvious_dimension() {
        let lex = IndicatorLexicon::new();
        assert_eq!(
            lex.classify_by_indicators(
                "I lost my job and the financial stress about money is unbearable"
            ),
            Some(Vocational)
        );
        assert_eq!(
            lex.classify_by_indicators(
                "my insomnia and medication leave me exhausted and my sleep is bad"
            ),
            Some(Physical)
        );
        assert_eq!(
            lex.classify_by_indicators("completely unrelated words xyz"),
            None
        );
    }

    #[test]
    fn emotional_is_less_distinctive_than_vocational() {
        // This is the structural reason EA is the hardest class in Table IV.
        let lex = IndicatorLexicon::new();
        assert!(lex.distinctiveness(Emotional) < lex.distinctiveness(Vocational));
    }

    #[test]
    fn ambiguous_clauses_span_multiple_dimensions() {
        let lex = IndicatorLexicon::new();
        assert!(!lex.ambiguous_clauses().is_empty());
        for (clause, dims) in lex.ambiguous_clauses() {
            assert!(dims.len() >= 2, "clause {clause:?} should be ambiguous");
        }
    }

    #[test]
    fn keyword_dimension_map_contains_shared_words() {
        let lex = IndicatorLexicon::new();
        let map = lex.keyword_dimension_map();
        // "feel" appears in several dimensions per Table III.
        assert!(map.get("feel").map(|d| d.len() >= 3).unwrap_or(false));
    }
}
