//! Dataset statistics (Table II) and frequent-word analysis (Table III).

use crate::post::{AnnotatedPost, WellnessDimension, ALL_DIMENSIONS};
use holistix_text::StopwordFilter;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The statistics the paper reports in Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusStatistics {
    /// Total number of posts.
    pub total_posts: usize,
    /// Total number of word tokens across all posts.
    pub total_words: usize,
    /// Maximum word count in a single post.
    pub max_words_per_post: usize,
    /// Total number of sentences across all posts.
    pub total_sentences: usize,
    /// Maximum sentence count in a single post.
    pub max_sentences_per_post: usize,
    /// Posts per wellness dimension, in table order.
    pub class_counts: [usize; 6],
}

impl CorpusStatistics {
    /// Compute statistics over a set of annotated posts.
    pub fn compute(posts: &[AnnotatedPost]) -> Self {
        let mut total_words = 0;
        let mut max_words = 0;
        let mut total_sentences = 0;
        let mut max_sentences = 0;
        let mut class_counts = [0usize; 6];
        for p in posts {
            let wc = p.post.word_count();
            let sc = p.post.sentence_count();
            total_words += wc;
            total_sentences += sc;
            max_words = max_words.max(wc);
            max_sentences = max_sentences.max(sc);
            class_counts[p.label.index()] += 1;
        }
        Self {
            total_posts: posts.len(),
            total_words,
            max_words_per_post: max_words,
            total_sentences,
            max_sentences_per_post: max_sentences,
            class_counts,
        }
    }

    /// The reference values the paper reports (Table II).
    pub fn paper_reference() -> Self {
        Self {
            total_posts: 1420,
            total_words: 37082,
            max_words_per_post: 115,
            total_sentences: 2271,
            max_sentences_per_post: 9,
            class_counts: [155, 150, 190, 296, 406, 223],
        }
    }

    /// Class distribution as percentages, in table order (the §II-C figures:
    /// IA 10.91 %, VA 10.56 %, SpiA 13.38 %, PA 20.84 %, SA 28.59 %, EA 15.70 %).
    pub fn class_percentages(&self) -> [f64; 6] {
        let total = self.total_posts.max(1) as f64;
        let mut out = [0.0; 6];
        for (i, &c) in self.class_counts.iter().enumerate() {
            out[i] = 100.0 * c as f64 / total;
        }
        out
    }

    /// Mean words per post.
    pub fn mean_words_per_post(&self) -> f64 {
        if self.total_posts == 0 {
            0.0
        } else {
            self.total_words as f64 / self.total_posts as f64
        }
    }

    /// Mean sentences per post.
    pub fn mean_sentences_per_post(&self) -> f64 {
        if self.total_posts == 0 {
            0.0
        } else {
            self.total_sentences as f64 / self.total_posts as f64
        }
    }

    /// Relative deviation of a measured statistic from the paper reference, as a map
    /// from statistic name to `|measured - paper| / paper`.
    pub fn relative_deviation_from_paper(&self) -> HashMap<&'static str, f64> {
        let paper = Self::paper_reference();
        let rel = |m: f64, p: f64| if p == 0.0 { 0.0 } else { (m - p).abs() / p };
        let mut out = HashMap::new();
        out.insert(
            "total_posts",
            rel(self.total_posts as f64, paper.total_posts as f64),
        );
        out.insert(
            "total_words",
            rel(self.total_words as f64, paper.total_words as f64),
        );
        out.insert(
            "max_words_per_post",
            rel(
                self.max_words_per_post as f64,
                paper.max_words_per_post as f64,
            ),
        );
        out.insert(
            "total_sentences",
            rel(self.total_sentences as f64, paper.total_sentences as f64),
        );
        out.insert(
            "max_sentences_per_post",
            rel(
                self.max_sentences_per_post as f64,
                paper.max_sentences_per_post as f64,
            ),
        );
        out
    }

    /// Render the statistics in the shape of the paper's Table II.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        s.push_str("Measure                      Count    | Wellness Dimension  Count\n");
        s.push_str("---------------------------- -------- | ------------------- -----\n");
        let rows = [
            ("Total posts", self.total_posts),
            ("Total words count", self.total_words),
            ("Max. word count per post", self.max_words_per_post),
            ("Total sentence count", self.total_sentences),
            ("Max. sentences per post", self.max_sentences_per_post),
            ("", 0),
        ];
        for (i, dim) in ALL_DIMENSIONS.iter().enumerate() {
            let (name, value) = rows[i];
            let left = if name.is_empty() {
                format!("{:37}", "")
            } else {
                format!("{name:<28} {value:<8}")
            };
            s.push_str(&format!(
                "{left} | {:<19} {}\n",
                dim.code(),
                self.class_counts[i]
            ));
        }
        s
    }
}

impl fmt::Display for CorpusStatistics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

/// The per-dimension frequent-word analysis of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequentWords {
    /// For each dimension (table order): the top words in its explanation spans with
    /// their total counts, most frequent first.
    pub by_dimension: Vec<(WellnessDimension, Vec<(String, usize)>)>,
}

impl FrequentWords {
    /// Top `k` words per dimension.
    pub fn top_k(&self, k: usize) -> Vec<(WellnessDimension, Vec<(String, usize)>)> {
        self.by_dimension
            .iter()
            .map(|(d, words)| (*d, words.iter().take(k).cloned().collect()))
            .collect()
    }

    /// The top words for one dimension.
    pub fn for_dimension(&self, dim: WellnessDimension) -> &[(String, usize)] {
        &self.by_dimension[dim.index()].1
    }

    /// Render in the shape of the paper's Table III (top 7 words with counts).
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        s.push_str("Wellness Dimension   Most Frequent Words (Count)\n");
        s.push_str("-------------------- -----------------------------------------------\n");
        for (dim, words) in self.top_k(7) {
            let rendered: Vec<String> = words
                .iter()
                .map(|(word, count)| format!("{word}({count})"))
                .collect();
            s.push_str(&format!("{:<20} {}\n", dim.name(), rendered.join(", ")));
        }
        s
    }
}

impl fmt::Display for FrequentWords {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

/// Compute the Table III analysis: the most frequent stop-word-filtered span words per
/// dimension.
pub fn frequent_span_words(posts: &[AnnotatedPost]) -> FrequentWords {
    let filter = StopwordFilter::english();
    let mut by_dimension = Vec::with_capacity(6);
    for dim in ALL_DIMENSIONS {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for p in posts.iter().filter(|p| p.label == dim) {
            for token in holistix_text::tokenize(p.span_text()) {
                if token.kind != holistix_text::TokenKind::Word {
                    continue;
                }
                let word = token.lower();
                if filter.is_stopword(&word) {
                    continue;
                }
                *counts.entry(word).or_insert(0) += 1;
            }
        }
        let mut words: Vec<(String, usize)> = counts.into_iter().collect();
        words.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        by_dimension.push((dim, words));
    }
    FrequentWords { by_dimension }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::HolistixCorpus;
    use crate::post::{Post, Span};

    fn tiny_posts() -> Vec<AnnotatedPost> {
        let make =
            |id: usize, text: &str, label: WellnessDimension, s: usize, e: usize| AnnotatedPost {
                post: Post {
                    id,
                    text: text.to_string(),
                    category: "Anxiety".to_string(),
                },
                label,
                span: Span::new(s, e),
            };
        vec![
            make(
                0,
                "I lost my job. I feel awful.",
                WellnessDimension::Vocational,
                0,
                13,
            ),
            make(
                1,
                "I cannot sleep and my anxiety is bad.",
                WellnessDimension::Physical,
                0,
                36,
            ),
            make(
                2,
                "I feel so alone without my friends.",
                WellnessDimension::Social,
                0,
                34,
            ),
        ]
    }

    #[test]
    fn statistics_of_tiny_corpus() {
        let stats = CorpusStatistics::compute(&tiny_posts());
        assert_eq!(stats.total_posts, 3);
        assert_eq!(stats.class_counts[WellnessDimension::Vocational.index()], 1);
        assert_eq!(stats.max_sentences_per_post, 2);
        assert!(stats.total_words > 15);
        assert!(stats.mean_words_per_post() > 5.0);
    }

    #[test]
    fn empty_corpus_statistics_are_zero() {
        let stats = CorpusStatistics::compute(&[]);
        assert_eq!(stats.total_posts, 0);
        assert_eq!(stats.mean_words_per_post(), 0.0);
        assert_eq!(stats.class_percentages(), [0.0; 6]);
    }

    #[test]
    fn paper_reference_percentages_match_section_2c() {
        let stats = CorpusStatistics::paper_reference();
        let pct = stats.class_percentages();
        assert!((pct[WellnessDimension::Intellectual.index()] - 10.91).abs() < 0.05);
        assert!((pct[WellnessDimension::Social.index()] - 28.59).abs() < 0.05);
        assert!((pct[WellnessDimension::Physical.index()] - 20.84).abs() < 0.05);
    }

    #[test]
    fn generated_corpus_reproduces_table2_shape() {
        let corpus = HolistixCorpus::generate(42);
        let stats = CorpusStatistics::compute(&corpus.posts);
        assert_eq!(stats.total_posts, 1420);
        assert_eq!(stats.class_counts, [155, 150, 190, 296, 406, 223]);
        // Word/sentence volume within a reasonable band of the paper's values.
        let dev = stats.relative_deviation_from_paper();
        assert!(
            dev["total_words"] < 0.35,
            "total_words deviation {}",
            dev["total_words"]
        );
        assert!(
            dev["total_sentences"] < 0.6,
            "total_sentences deviation {}",
            dev["total_sentences"]
        );
        assert!(stats.max_sentences_per_post <= 9);
    }

    #[test]
    fn frequent_words_reflect_span_content() {
        let fw = frequent_span_words(&tiny_posts());
        let voc = fw.for_dimension(WellnessDimension::Vocational);
        assert!(voc.iter().any(|(w, _)| w == "job"));
        let pa = fw.for_dimension(WellnessDimension::Physical);
        assert!(pa.iter().any(|(w, _)| w == "sleep" || w == "anxiety"));
        // Intellectual has no posts in the tiny corpus.
        assert!(fw.for_dimension(WellnessDimension::Intellectual).is_empty());
    }

    #[test]
    fn generated_frequent_words_match_table3_leaders() {
        let corpus = HolistixCorpus::generate_small(400, 9);
        let fw = frequent_span_words(&corpus.posts);
        let top = |d: WellnessDimension, k: usize| -> Vec<String> {
            fw.for_dimension(d)
                .iter()
                .take(k)
                .map(|(w, _)| w.clone())
                .collect()
        };
        // The headline Table III words should appear among the top span words.
        assert!(top(WellnessDimension::Vocational, 5)
            .iter()
            .any(|w| w == "job" || w == "work"));
        assert!(top(WellnessDimension::Physical, 6)
            .iter()
            .any(|w| w == "anxiety" || w == "sleep"));
        assert!(top(WellnessDimension::Social, 8)
            .iter()
            .any(|w| w == "feel" || w == "alone" || w == "friends"));
    }

    #[test]
    fn tables_render_without_panicking() {
        let corpus = HolistixCorpus::generate_small(60, 1);
        let stats = CorpusStatistics::compute(&corpus.posts);
        let fw = frequent_span_words(&corpus.posts);
        assert!(stats.to_table().contains("Total posts"));
        assert!(fw.to_table().contains("Wellness Dimension"));
    }
}
