//! Dataset splits: the paper's fixed 990/212/213 split and stratified k-fold CV.
//!
//! §III of the paper fixes 990 training, 212 validation and 213 test samples and
//! reports every metric averaged over 10-fold cross-validation. Both splitting schemes
//! are stratified here so that each part keeps the Table II class balance — with only
//! 150 posts in the smallest class, unstratified folds can easily end up with too few
//! examples of a class to compute per-class recall.

use crate::post::AnnotatedPost;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Index-based train/validation/test split of a corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSplit {
    /// Indices of training posts.
    pub train: Vec<usize>,
    /// Indices of validation posts.
    pub validation: Vec<usize>,
    /// Indices of test posts.
    pub test: Vec<usize>,
    /// Indices not assigned to any part.
    ///
    /// The paper's fixed sizes (990 train + 212 validation + 213 test = 1,415) do not
    /// sum to the 1,420 posts of Table II; the five leftover posts end up here when the
    /// paper sizes are applied verbatim.
    pub unused: Vec<usize>,
}

impl DatasetSplit {
    /// Total number of indices across the three parts (excluding `unused`).
    pub fn len(&self) -> usize {
        self.train.len() + self.validation.len() + self.test.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Check that the parts (including `unused`) are disjoint and jointly cover `0..n`.
    pub fn is_partition_of(&self, n: usize) -> bool {
        let mut all: Vec<usize> = self
            .train
            .iter()
            .chain(&self.validation)
            .chain(&self.test)
            .chain(&self.unused)
            .copied()
            .collect();
        all.sort_unstable();
        all.len() == n && all.iter().enumerate().all(|(i, &v)| i == v)
    }
}

/// One fold of a cross-validation: train and held-out test indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fold {
    /// Indices used for training in this fold.
    pub train: Vec<usize>,
    /// Indices held out for evaluation in this fold.
    pub test: Vec<usize>,
}

/// A full set of cross-validation folds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossValidationFolds {
    /// The folds, in order.
    pub folds: Vec<Fold>,
    /// Number of items the folds were built over.
    pub n_items: usize,
}

impl CrossValidationFolds {
    /// Number of folds.
    pub fn len(&self) -> usize {
        self.folds.len()
    }

    /// Whether there are no folds.
    pub fn is_empty(&self) -> bool {
        self.folds.is_empty()
    }

    /// Iterate over folds.
    pub fn iter(&self) -> impl Iterator<Item = &Fold> {
        self.folds.iter()
    }

    /// Verify the fold test sets partition `0..n_items`.
    pub fn test_sets_partition_items(&self) -> bool {
        let mut all: Vec<usize> = self
            .folds
            .iter()
            .flat_map(|f| f.test.iter().copied())
            .collect();
        all.sort_unstable();
        all.len() == self.n_items && all.iter().enumerate().all(|(i, &v)| i == v)
    }
}

/// Group item indices by their dense class label.
fn indices_by_class(labels: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    let mut by_class = vec![Vec::new(); n_classes];
    for (i, &c) in labels.iter().enumerate() {
        assert!(
            c < n_classes,
            "label {c} out of range for {n_classes} classes"
        );
        by_class[c].push(i);
    }
    by_class
}

/// Stratified train/validation/test split with the given absolute sizes.
///
/// `sizes = (train, validation, test)` must sum to `labels.len()`. The class balance
/// of each part matches the corpus balance as closely as integer rounding allows.
/// Deterministic for a given seed.
pub fn train_val_test_split(
    labels: &[usize],
    n_classes: usize,
    sizes: (usize, usize, usize),
    seed: u64,
) -> DatasetSplit {
    let (n_train, n_val, n_test) = sizes;
    assert!(
        n_train + n_val + n_test <= labels.len(),
        "split sizes {:?} must sum to at most the number of items {}",
        sizes,
        labels.len()
    );
    let n_unused = labels.len() - (n_train + n_val + n_test);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_class = indices_by_class(labels, n_classes);
    for idx in &mut by_class {
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
    }

    let total = labels.len() as f64;
    let mut train = Vec::new();
    let mut validation = Vec::new();
    let mut test = Vec::new();
    // Per-class proportional allocation; leftovers (from rounding) go to train, then
    // are rebalanced below to hit the exact requested sizes.
    for idx in &by_class {
        let frac = idx.len() as f64 / total;
        let c_val = (n_val as f64 * frac).round() as usize;
        let c_test = (n_test as f64 * frac).round() as usize;
        let c_val = c_val.min(idx.len());
        let c_test = c_test.min(idx.len() - c_val);
        validation.extend_from_slice(&idx[..c_val]);
        test.extend_from_slice(&idx[c_val..c_val + c_test]);
        train.extend_from_slice(&idx[c_val + c_test..]);
    }
    // Fix up rounding drift by moving items between parts (largest part donates).
    let move_items = |from: &mut Vec<usize>, to: &mut Vec<usize>, count: usize| {
        for _ in 0..count {
            if let Some(x) = from.pop() {
                to.push(x);
            }
        }
    };
    while validation.len() > n_val {
        let extra = validation.len() - n_val;
        move_items(&mut validation, &mut train, extra);
    }
    while test.len() > n_test {
        let extra = test.len() - n_test;
        move_items(&mut test, &mut train, extra);
    }
    while validation.len() < n_val {
        let need = n_val - validation.len();
        move_items(&mut train, &mut validation, need);
    }
    while test.len() < n_test {
        let need = n_test - test.len();
        move_items(&mut train, &mut test, need);
    }
    let mut unused = Vec::with_capacity(n_unused);
    while train.len() > n_train {
        if let Some(x) = train.pop() {
            unused.push(x);
        }
    }
    DatasetSplit {
        train,
        validation,
        test,
        unused,
    }
}

/// The paper's fixed split sizes (990 / 212 / 213) applied to a 1,420-item corpus, or
/// proportionally scaled sizes for smaller corpora.
pub fn paper_split(labels: &[usize], n_classes: usize, seed: u64) -> DatasetSplit {
    let n = labels.len();
    if n == 1420 {
        return train_val_test_split(labels, n_classes, (990, 212, 213), seed);
    }
    let train = (n as f64 * 990.0 / 1420.0).round() as usize;
    let val = (n as f64 * 212.0 / 1420.0).round() as usize;
    let test = n - train - val;
    train_val_test_split(labels, n_classes, (train, val, test), seed)
}

/// Stratified k-fold cross-validation over dense labels. Deterministic for a seed.
///
/// Panics if `k < 2` or `k > labels.len()`.
pub fn kfold_stratified(
    labels: &[usize],
    n_classes: usize,
    k: usize,
    seed: u64,
) -> CrossValidationFolds {
    assert!(k >= 2, "k-fold requires k >= 2 (got {k})");
    assert!(
        k <= labels.len(),
        "k-fold requires k <= number of items ({k} > {})",
        labels.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_class = indices_by_class(labels, n_classes);
    for idx in &mut by_class {
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
    }
    // Deal each class's items round-robin into the k folds' test sets.
    let mut test_sets: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut next_fold = 0usize;
    for idx in &by_class {
        for &item in idx {
            test_sets[next_fold].push(item);
            next_fold = (next_fold + 1) % k;
        }
    }
    let folds = test_sets
        .iter()
        .enumerate()
        .map(|(fi, test)| {
            let train: Vec<usize> = test_sets
                .iter()
                .enumerate()
                .filter(|(fj, _)| *fj != fi)
                .flat_map(|(_, t)| t.iter().copied())
                .collect();
            Fold {
                train,
                test: test.clone(),
            }
        })
        .collect();
    CrossValidationFolds {
        folds,
        n_items: labels.len(),
    }
}

/// Convenience: build folds directly from annotated posts.
pub fn kfold_posts(posts: &[AnnotatedPost], k: usize, seed: u64) -> CrossValidationFolds {
    let labels: Vec<usize> = posts.iter().map(|p| p.label.index()).collect();
    kfold_stratified(&labels, 6, k, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::HolistixCorpus;

    #[test]
    fn paper_split_sizes_match_section3() {
        let corpus = HolistixCorpus::generate(1);
        let split = paper_split(&corpus.label_indices(), 6, 42);
        assert_eq!(split.train.len(), 990);
        assert_eq!(split.validation.len(), 212);
        assert_eq!(split.test.len(), 213);
        assert!(split.is_partition_of(1420));
    }

    #[test]
    fn split_is_stratified() {
        let corpus = HolistixCorpus::generate(1);
        let labels = corpus.label_indices();
        let split = paper_split(&labels, 6, 42);
        // Class proportions in train should be within a few points of the corpus.
        let corpus_frac =
            |c: usize| labels.iter().filter(|&&l| l == c).count() as f64 / labels.len() as f64;
        let train_frac = |c: usize| {
            split.train.iter().filter(|&&i| labels[i] == c).count() as f64
                / split.train.len() as f64
        };
        for c in 0..6 {
            assert!(
                (corpus_frac(c) - train_frac(c)).abs() < 0.03,
                "class {c} proportions drift: corpus {} vs train {}",
                corpus_frac(c),
                train_frac(c)
            );
        }
    }

    #[test]
    fn split_deterministic_per_seed() {
        let corpus = HolistixCorpus::generate_small(120, 3);
        let labels = corpus.label_indices();
        let a = paper_split(&labels, 6, 9);
        let b = paper_split(&labels, 6, 9);
        let c = paper_split(&labels, 6, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn kfold_test_sets_partition_and_are_stratified() {
        let corpus = HolistixCorpus::generate_small(300, 5);
        let labels = corpus.label_indices();
        let folds = kfold_stratified(&labels, 6, 10, 7);
        assert_eq!(folds.len(), 10);
        assert!(folds.test_sets_partition_items());
        for fold in folds.iter() {
            assert_eq!(fold.train.len() + fold.test.len(), labels.len());
            // Every class appears in every training set.
            for c in 0..6 {
                assert!(
                    fold.train.iter().any(|&i| labels[i] == c),
                    "class {c} missing from a training fold"
                );
            }
        }
    }

    #[test]
    fn kfold_posts_convenience() {
        let corpus = HolistixCorpus::generate_small(60, 2);
        let folds = kfold_posts(&corpus.posts, 5, 1);
        assert_eq!(folds.len(), 5);
        assert!(folds.test_sets_partition_items());
    }

    #[test]
    #[should_panic(expected = "k-fold requires k >= 2")]
    fn kfold_rejects_k_one() {
        let _ = kfold_stratified(&[0, 1, 2], 3, 1, 0);
    }

    #[test]
    #[should_panic(expected = "must sum to at most the number of items")]
    fn split_sizes_must_sum() {
        let _ = train_val_test_split(&[0, 1, 2, 3], 2, (2, 1, 2), 0);
    }

    #[test]
    fn small_corpus_split_still_partitions() {
        let corpus = HolistixCorpus::generate_small(40, 8);
        let labels = corpus.label_indices();
        let split = paper_split(&labels, 6, 3);
        assert!(split.is_partition_of(labels.len()));
    }
}
