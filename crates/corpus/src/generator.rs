//! Seeded synthetic Holistix corpus generator.
//!
//! The real Holistix corpus (1,420 Beyond Blue posts) cannot be redistributed, so the
//! generator synthesises a corpus with the same *measurable* properties the paper
//! reports:
//!
//! * the Table II statistics — post count, class counts, words per post (mean and max),
//!   sentences per post (mean and max);
//! * the Table III lexical profile — each class's explanation spans are built from the
//!   class's weighted indicator keywords, so the per-class frequent-word lists come out
//!   in the same order;
//! * the difficulty structure of Table IV — a tunable share of posts contain clauses
//!   from *other* dimensions or deliberately ambiguous clauses (EA↔SA, EA↔SpiA), which
//!   is what makes the Emotional and Spiritual classes hard for every model.
//!
//! Every post records the gold explanation [`Span`](crate::post::Span) — the byte range
//! of the indicator clause — so the LIME evaluation of Table V has gold spans to
//! compare against, exactly as the real dataset does.

use crate::lexicon::{DimensionLexicon, IndicatorLexicon};
use crate::post::{AnnotatedPost, Post, Span, WellnessDimension, ALL_DIMENSIONS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Beyond Blue forum categories the paper scraped.
pub const FORUM_CATEGORIES: [&str; 7] = [
    "Anxiety",
    "Depression",
    "PTSD and Trauma",
    "Suicidal Thoughts and Self-Harm",
    "Relationship and Family Issues",
    "Supporting Friends and Family",
    "Grief and Loss",
];

/// Neutral opener clauses (no dimension signal) used to pad posts.
const OPENERS: &[&str] = &[
    "Hi everyone, this is my first time posting here",
    "I've been lurking on this forum for a while",
    "Sorry if this is long, I just need to get it out",
    "I'm not really sure where to start",
    "Thanks in advance for reading this",
    "It's late at night and I can't stop thinking",
    "I've never told anyone this before",
    "Things have been building up for months now",
    "I'm writing this because I don't know what else to do",
    "A bit of background about me first",
];

/// Distractor frames: clauses that *mention* another dimension's keyword but mark it
/// as explicitly not the problem ("at least my job is fine"). Bag-of-words models see
/// the keyword and get pulled towards the wrong class; order-aware models can learn
/// that the framing neutralises it. `{}` is replaced with a keyword sampled from a
/// *different* dimension's lexicon.
const DISTRACTOR_FRAMES: &[&str] = &[
    "at least my {} is going okay for now",
    "thankfully the {} side of things has been fine lately",
    "it is not really about my {} this time",
    "my {} is honestly fine so that is not the problem",
    "I used to worry about {} but that part is under control",
    "people keep asking about my {} but that is not what hurts",
    "the {} stuff is manageable compared to this",
    "I can cope with the {} part just fine",
];

/// Neutral closer clauses (no dimension signal).
const CLOSERS: &[&str] = &[
    "Has anyone else been through something like this",
    "Any advice would mean a lot to me",
    "I just needed to tell someone",
    "Thanks for listening to me ramble",
    "I don't know what I'm hoping to hear",
    "Maybe writing it down will help somehow",
    "I hope tomorrow is a little better",
    "Please tell me it gets easier",
];

/// Calibration parameters for the generator. The defaults reproduce the paper's
/// Table II statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusCalibration {
    /// Number of posts per class, in table order (IA, VA, SpiA, PA, SA, EA).
    pub class_counts: [usize; 6],
    /// Probability that a post gains an extra clause drawn from a *different*
    /// dimension's lexicon (cross-dimension noise).
    pub cross_dimension_rate: f64,
    /// Probability that the gold sentence is extended with a *distractor* clause — a
    /// mention of another dimension's keyword framed as explicitly not the problem
    /// ("…, but at least my job is going okay for now"). This is what makes the corpus
    /// hard for bag-of-words models while remaining solvable for order-aware ones.
    pub distractor_rate: f64,
    /// Probability that a post includes one of the deliberately ambiguous clauses.
    pub ambiguous_clause_rate: f64,
    /// Probability of each additional filler (opener/closer) sentence.
    pub filler_rate: f64,
    /// Probability that a post is a "long" post with many sentences.
    pub long_post_rate: f64,
    /// Maximum number of sentences in a post (Table II: 9).
    pub max_sentences: usize,
}

impl Default for CorpusCalibration {
    fn default() -> Self {
        Self {
            class_counts: [155, 150, 190, 296, 406, 223],
            cross_dimension_rate: 0.30,
            distractor_rate: 0.60,
            ambiguous_clause_rate: 0.28,
            filler_rate: 0.45,
            long_post_rate: 0.04,
            max_sentences: 9,
        }
    }
}

impl CorpusCalibration {
    /// Total number of posts.
    pub fn n_posts(&self) -> usize {
        self.class_counts.iter().sum()
    }

    /// A proportionally scaled-down calibration with roughly `n` posts, keeping the
    /// class balance. Every class keeps at least 2 posts so stratified splitting and
    /// per-class metrics remain well-defined.
    pub fn scaled_to(&self, n: usize) -> Self {
        let total = self.n_posts() as f64;
        let mut counts = [0usize; 6];
        for (i, &c) in self.class_counts.iter().enumerate() {
            counts[i] = ((c as f64 / total) * n as f64).round().max(2.0) as usize;
        }
        Self {
            class_counts: counts,
            ..self.clone()
        }
    }
}

/// The generated corpus: every post carries its gold label and explanation span.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HolistixCorpus {
    /// Annotated posts in generation order (shuffled across classes).
    pub posts: Vec<AnnotatedPost>,
    /// The seed the corpus was generated from (for provenance).
    pub seed: u64,
}

impl HolistixCorpus {
    /// Generate the full-size corpus (1,420 posts, Table II class balance) from a seed.
    pub fn generate(seed: u64) -> Self {
        CorpusGenerator::new(CorpusCalibration::default()).generate(seed)
    }

    /// Generate a smaller corpus of roughly `n` posts with the same class balance —
    /// used by tests and quick examples.
    pub fn generate_small(n: usize, seed: u64) -> Self {
        CorpusGenerator::new(CorpusCalibration::default().scaled_to(n)).generate(seed)
    }

    /// Number of posts.
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }

    /// Iterate over the annotated posts.
    pub fn iter(&self) -> impl Iterator<Item = &AnnotatedPost> {
        self.posts.iter()
    }

    /// Post texts in order.
    pub fn texts(&self) -> Vec<&str> {
        self.posts.iter().map(|p| p.post.text.as_str()).collect()
    }

    /// Gold labels in order.
    pub fn labels(&self) -> Vec<WellnessDimension> {
        self.posts.iter().map(|p| p.label).collect()
    }

    /// Gold labels as dense class indices in order.
    pub fn label_indices(&self) -> Vec<usize> {
        self.posts.iter().map(|p| p.label.index()).collect()
    }

    /// Number of posts per class, in table order.
    pub fn class_counts(&self) -> [usize; 6] {
        let mut counts = [0usize; 6];
        for p in &self.posts {
            counts[p.label.index()] += 1;
        }
        counts
    }
}

/// Syllables composed into synthetic filler terms by [`synthetic_lexicon`]. None of
/// the combinations collide with English words, stop-words or the Table I indicator
/// keywords, so augmentation grows the vocabulary without disturbing the label signal.
const LEXICON_SYLLABLES: [&str; 40] = [
    "bel", "cor", "dan", "fen", "gol", "hun", "jor", "kel", "lom", "mur", "nel", "pol", "quin",
    "ros", "sel", "tor", "vul", "wex", "yal", "zem", "bri", "cla", "dre", "fal", "gre", "hol",
    "jin", "kra", "lun", "mex", "nor", "pra", "que", "ril", "ska", "tre", "vor", "wul", "xan",
    "yor",
];

/// A deterministic synthetic lexicon of `n_terms` distinct pronounceable word types
/// (two-syllable terms first, then three-syllable), used to scale the corpus
/// vocabulary to paper-scale sizes (10k+ terms) for benchmarking. Panics if
/// `n_terms` exceeds the 65,600 constructible combinations.
pub fn synthetic_lexicon(n_terms: usize) -> Vec<String> {
    let syl = &LEXICON_SYLLABLES;
    let max = syl.len() * syl.len() * (1 + syl.len());
    assert!(n_terms <= max, "synthetic lexicon caps at {max} terms");
    let mut terms = Vec::with_capacity(n_terms);
    'outer: for a in syl {
        for b in syl {
            if terms.len() == n_terms {
                break 'outer;
            }
            terms.push(format!("{a}{b}"));
        }
    }
    'outer3: for a in syl {
        for b in syl {
            for c in syl {
                if terms.len() == n_terms {
                    break 'outer3;
                }
                terms.push(format!("{a}{b}{c}"));
            }
        }
    }
    terms
}

impl HolistixCorpus {
    /// Append a trailing filler sentence of synthetic lexicon terms to every post,
    /// growing the corpus vocabulary to roughly `n_terms` distinct extra word types.
    ///
    /// Each post gains `words_per_post` terms: half drawn round-robin so every term
    /// is guaranteed to appear (and, once the corpus has at least `2 * n_terms`
    /// round-robin slots, to appear in at least two distinct posts — surviving any
    /// document-frequency cut-off of 2), half drawn log-uniformly so term
    /// frequencies fall off Zipf-style like a natural vocabulary. Terms are appended
    /// *after* the existing text, so gold spans and labels are untouched.
    ///
    /// This exists for benchmarking: the built-in Table I lexicon yields only a few
    /// hundred TF-IDF features, far below the 10k+ term vocabularies of real
    /// corpora where sparse inference pays off.
    pub fn augment_vocabulary(&mut self, n_terms: usize, words_per_post: usize, seed: u64) {
        let lexicon = synthetic_lexicon(n_terms);
        if lexicon.is_empty() || words_per_post == 0 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cursor = 0usize;
        let coverage_slots = words_per_post.div_ceil(2);
        for p in &mut self.posts {
            let mut extra: Vec<&str> = Vec::with_capacity(words_per_post);
            for _ in 0..coverage_slots {
                extra.push(&lexicon[cursor % lexicon.len()]);
                cursor += 1;
            }
            for _ in coverage_slots..words_per_post {
                // Log-uniform index: rank r is ~1/(r+1) likely, a Zipf-like tail.
                let idx = (lexicon.len() as f64).powf(rng.gen::<f64>()) as usize - 1;
                extra.push(&lexicon[idx.min(lexicon.len() - 1)]);
            }
            let text = &mut p.post.text;
            text.push(' ');
            text.push_str(&extra.join(" "));
            text.push('.');
        }
    }
}

/// Deterministic corpus generator.
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    calibration: CorpusCalibration,
    lexicon: IndicatorLexicon,
}

impl CorpusGenerator {
    /// Generator with the given calibration and the built-in Table I lexicon.
    pub fn new(calibration: CorpusCalibration) -> Self {
        Self {
            calibration,
            lexicon: IndicatorLexicon::new(),
        }
    }

    /// The calibration in use.
    pub fn calibration(&self) -> &CorpusCalibration {
        &self.calibration
    }

    /// The lexicon in use.
    pub fn lexicon(&self) -> &IndicatorLexicon {
        &self.lexicon
    }

    /// Generate a corpus. The same `(calibration, seed)` pair always yields the same
    /// corpus, byte for byte.
    pub fn generate(&self, seed: u64) -> HolistixCorpus {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut posts = Vec::with_capacity(self.calibration.n_posts());
        for dim in ALL_DIMENSIONS {
            for _ in 0..self.calibration.class_counts[dim.index()] {
                posts.push(self.generate_post(dim, &mut rng));
            }
        }
        // Shuffle so class blocks are interleaved, then re-assign ids in final order.
        for i in (1..posts.len()).rev() {
            let j = rng.gen_range(0..=i);
            posts.swap(i, j);
        }
        for (id, p) in posts.iter_mut().enumerate() {
            p.post.id = id;
        }
        HolistixCorpus { posts, seed }
    }

    /// Sample a keyword from a dimension lexicon, weight-proportional.
    fn sample_keyword<'a>(&self, lex: &'a DimensionLexicon, rng: &mut StdRng) -> &'a str {
        let total: f64 = lex.keywords.iter().map(|k| k.weight).sum();
        let mut target = rng.gen::<f64>() * total;
        for k in &lex.keywords {
            if target < k.weight {
                return k.word;
            }
            target -= k.weight;
        }
        lex.keywords.last().map(|k| k.word).unwrap_or("feel")
    }

    /// Render one indicator clause for a dimension.
    fn indicator_clause(&self, dim: WellnessDimension, rng: &mut StdRng) -> String {
        let lex = self.lexicon.for_dimension(dim);
        let template = lex.templates[rng.gen_range(0..lex.templates.len())];
        let keyword = self.sample_keyword(lex, rng);
        template.replacen("{}", keyword, 1)
    }

    /// Pick a plausible forum category for a dimension.
    fn category_for(&self, dim: WellnessDimension, rng: &mut StdRng) -> &'static str {
        use WellnessDimension::*;
        let preferred: &[&str] = match dim {
            Physical => &["Anxiety", "Depression"],
            Emotional => &["Depression", "Anxiety", "Grief and Loss"],
            Social => &[
                "Relationship and Family Issues",
                "Supporting Friends and Family",
            ],
            Spiritual => &["Suicidal Thoughts and Self-Harm", "Depression"],
            Vocational => &["Depression", "Anxiety"],
            Intellectual => &["Anxiety", "Depression"],
        };
        if rng.gen::<f64>() < 0.8 {
            preferred[rng.gen_range(0..preferred.len())]
        } else {
            FORUM_CATEGORIES[rng.gen_range(0..FORUM_CATEGORIES.len())]
        }
    }

    /// Generate a single annotated post for a dimension.
    fn generate_post(&self, dim: WellnessDimension, rng: &mut StdRng) -> AnnotatedPost {
        let cal = &self.calibration;
        let mut sentences: Vec<String> = Vec::new();

        // Optional opener.
        if rng.gen::<f64>() < cal.filler_rate * 0.6 {
            sentences.push(OPENERS[rng.gen_range(0..OPENERS.len())].to_string());
        }

        // The gold indicator clause — remember its index so we can compute the span.
        // With probability `distractor_rate` a neutralised mention of *another*
        // dimension's keyword is appended to the same sentence (outside the gold span),
        // so the post's bag of words straddles two classes while the sentence structure
        // still points at the gold dimension.
        let gold_clause = self.indicator_clause(dim, rng);
        let gold_index = sentences.len();
        // The gold span covers only the indicator clause, not the appended distractor.
        let gold_span_len = gold_clause.len();
        let gold_clause = if rng.gen::<f64>() < cal.distractor_rate {
            let mut other = dim;
            while other == dim {
                other = ALL_DIMENSIONS[rng.gen_range(0..6)];
            }
            let frame = DISTRACTOR_FRAMES[rng.gen_range(0..DISTRACTOR_FRAMES.len())];
            let keyword = self.sample_keyword(self.lexicon.for_dimension(other), rng);
            format!("{gold_clause}, but {}", frame.replacen("{}", keyword, 1))
        } else {
            gold_clause
        };
        sentences.push(gold_clause);

        // Cross-dimension noise clause.
        if rng.gen::<f64>() < cal.cross_dimension_rate {
            let mut other = dim;
            while other == dim {
                other = ALL_DIMENSIONS[rng.gen_range(0..6)];
            }
            sentences.push(self.indicator_clause(other, rng));
        }

        // Deliberately ambiguous clause.
        if rng.gen::<f64>() < cal.ambiguous_clause_rate {
            let clauses = self.lexicon.ambiguous_clauses();
            let (clause, _) = &clauses[rng.gen_range(0..clauses.len())];
            sentences.push((*clause).to_string());
        }

        // Optional closer.
        if rng.gen::<f64>() < cal.filler_rate * 0.5 {
            sentences.push(CLOSERS[rng.gen_range(0..CLOSERS.len())].to_string());
        }

        // Occasionally produce a long post by appending extra in-dimension clauses and
        // fillers, up to the max sentence count.
        if rng.gen::<f64>() < cal.long_post_rate {
            let extra = rng.gen_range(2..=cal.max_sentences.saturating_sub(sentences.len()).max(2));
            for _ in 0..extra {
                if sentences.len() >= cal.max_sentences {
                    break;
                }
                if rng.gen::<f64>() < 0.5 {
                    sentences.push(self.indicator_clause(dim, rng));
                } else {
                    sentences.push(OPENERS[rng.gen_range(0..OPENERS.len())].to_string());
                }
            }
        }
        sentences.truncate(cal.max_sentences);

        // Assemble the text and locate the gold span.
        let mut text = String::new();
        let mut span = Span::new(0, 0);
        for (i, s) in sentences.iter().enumerate() {
            if i > 0 {
                text.push(' ');
            }
            let start = text.len();
            text.push_str(s);
            text.push('.');
            if i == gold_index {
                span = Span::new(start, start + gold_span_len);
            }
        }

        AnnotatedPost {
            post: Post {
                id: 0, // assigned after shuffling
                text,
                category: self.category_for(dim, rng).to_string(),
            },
            label: dim,
            span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_calibration_matches_table2_counts() {
        let cal = CorpusCalibration::default();
        assert_eq!(cal.n_posts(), 1420);
        assert_eq!(cal.class_counts[WellnessDimension::Social.index()], 406);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = HolistixCorpus::generate_small(60, 7);
        let b = HolistixCorpus::generate_small(60, 7);
        assert_eq!(a.posts, b.posts);
        let c = HolistixCorpus::generate_small(60, 8);
        assert_ne!(a.posts, c.posts);
    }

    #[test]
    fn class_counts_match_calibration() {
        let corpus = HolistixCorpus::generate_small(120, 3);
        let cal = CorpusCalibration::default().scaled_to(120);
        assert_eq!(corpus.class_counts(), cal.class_counts);
    }

    #[test]
    fn full_corpus_has_1420_posts() {
        let corpus = HolistixCorpus::generate(42);
        assert_eq!(corpus.len(), 1420);
        assert_eq!(corpus.class_counts(), [155, 150, 190, 296, 406, 223]);
    }

    #[test]
    fn spans_point_at_indicator_clauses() {
        let corpus = HolistixCorpus::generate_small(80, 11);
        let lexicon = IndicatorLexicon::new();
        let mut span_hits = 0;
        for p in corpus.iter() {
            assert!(!p.span.is_empty(), "gold span should not be empty");
            let span_text = p.span_text();
            assert!(!span_text.is_empty());
            // The span should lie inside the post text.
            assert!(p.post.text.contains(span_text));
            if lexicon.classify_by_indicators(span_text) == Some(p.label) {
                span_hits += 1;
            }
        }
        // The indicator classifier should recover the label from the gold span for the
        // large majority of posts (it can lose ties on heavily shared words).
        assert!(
            span_hits as f64 / corpus.len() as f64 > 0.7,
            "only {span_hits}/{} spans classified correctly",
            corpus.len()
        );
    }

    #[test]
    fn sentence_and_word_limits_respected() {
        let corpus = HolistixCorpus::generate_small(200, 5);
        for p in corpus.iter() {
            assert!(
                p.post.sentence_count() <= 9,
                "too many sentences: {}",
                p.post.text
            );
            assert!(
                p.post.word_count() <= 130,
                "too many words: {}",
                p.post.text
            );
            assert!(p.post.word_count() >= 5, "too few words: {}", p.post.text);
        }
    }

    #[test]
    fn categories_are_valid_forum_categories() {
        let corpus = HolistixCorpus::generate_small(50, 2);
        for p in corpus.iter() {
            assert!(FORUM_CATEGORIES.contains(&p.post.category.as_str()));
        }
    }

    #[test]
    fn ids_are_dense_after_shuffle() {
        let corpus = HolistixCorpus::generate_small(40, 19);
        let mut ids: Vec<usize> = corpus.iter().map(|p| p.post.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..corpus.len()).collect::<Vec<_>>());
    }

    #[test]
    fn scaled_calibration_keeps_every_class() {
        let cal = CorpusCalibration::default().scaled_to(30);
        assert!(cal.class_counts.iter().all(|&c| c >= 2));
    }

    #[test]
    fn synthetic_lexicon_terms_are_distinct() {
        assert!(synthetic_lexicon(0).is_empty());
        assert_eq!(synthetic_lexicon(1600).len(), 1600);
        let terms = synthetic_lexicon(5000);
        assert_eq!(terms.len(), 5000);
        let mut sorted = terms.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), terms.len(), "lexicon terms must be distinct");
        assert!(terms
            .iter()
            .all(|t| t.chars().all(|c| c.is_ascii_lowercase())));
    }

    #[test]
    fn augmentation_covers_every_term_at_least_twice() {
        let mut corpus = HolistixCorpus::generate_small(60, 5);
        corpus.augment_vocabulary(100, 20, 9);
        // 60 posts × 10 round-robin slots = 600 ≥ 2×100, so every term lands in
        // at least two distinct posts (the cursor revisits a term only after a
        // full cycle through the lexicon, which spans many posts).
        let lexicon = synthetic_lexicon(100);
        for term in &lexicon {
            let posts_with_term = corpus
                .iter()
                .filter(|p| {
                    p.post
                        .text
                        .split_whitespace()
                        .any(|w| w.trim_end_matches('.') == term)
                })
                .count();
            assert!(
                posts_with_term >= 2,
                "term {term} in only {posts_with_term} posts"
            );
        }
    }

    #[test]
    fn augmentation_is_deterministic_and_preserves_spans() {
        let pristine = HolistixCorpus::generate_small(40, 11);
        let mut a = pristine.clone();
        let mut b = pristine.clone();
        a.augment_vocabulary(500, 16, 3);
        b.augment_vocabulary(500, 16, 3);
        assert_eq!(a.posts, b.posts);
        for (augmented, original) in a.iter().zip(pristine.iter()) {
            assert_eq!(augmented.span, original.span);
            assert_eq!(augmented.span_text(), original.span_text());
            assert_eq!(augmented.label, original.label);
            assert!(augmented.post.text.starts_with(&original.post.text));
        }
    }
}
