//! Property-based tests for the dataset substrate: splits always partition, kappa is
//! bounded, the generator respects its calibration, and serialisation round-trips.

use holistix_corpus::agreement::{cohen_kappa, fleiss_kappa, two_rater_table};
use holistix_corpus::generator::{CorpusCalibration, CorpusGenerator, HolistixCorpus};
use holistix_corpus::splits::{kfold_stratified, train_val_test_split};
use holistix_corpus::{io, CorpusStatistics};
use proptest::prelude::*;

fn label_vec() -> impl Strategy<Value = Vec<usize>> {
    // At least 2 items of every class so stratified splitting is well-defined.
    proptest::collection::vec(0usize..6, 30..120).prop_map(|mut v| {
        for c in 0..6 {
            v.push(c);
            v.push(c);
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Stratified k-fold test sets always partition the items, and every fold's train
    /// and test sets are disjoint and exhaustive.
    #[test]
    fn kfold_partitions(labels in label_vec(), k in 2usize..8, seed in 0u64..1000) {
        let folds = kfold_stratified(&labels, 6, k, seed);
        prop_assert_eq!(folds.len(), k);
        prop_assert!(folds.test_sets_partition_items());
        for fold in folds.iter() {
            prop_assert_eq!(fold.train.len() + fold.test.len(), labels.len());
            let mut all: Vec<usize> = fold.train.iter().chain(&fold.test).copied().collect();
            all.sort_unstable();
            prop_assert!(all.windows(2).all(|w| w[0] != w[1]));
        }
    }

    /// Train/val/test splits with any feasible sizes form a partition and have exactly
    /// the requested sizes.
    #[test]
    fn train_val_test_sizes_respected(labels in label_vec(), seed in 0u64..1000) {
        let n = labels.len();
        let val = n / 6;
        let test = n / 5;
        let train = n - val - test;
        let split = train_val_test_split(&labels, 6, (train, val, test), seed);
        prop_assert_eq!(split.train.len(), train);
        prop_assert_eq!(split.validation.len(), val);
        prop_assert_eq!(split.test.len(), test);
        prop_assert!(split.is_partition_of(n));
    }

    /// Fleiss' and Cohen's kappa are bounded in [-1, 1] and equal 1 for self-agreement.
    #[test]
    fn kappa_bounds(labels_a in proptest::collection::vec(0usize..6, 12..80), seed in 0u64..1000) {
        // Derive a second rater by perturbing the first deterministically.
        let labels_b: Vec<usize> = labels_a
            .iter()
            .enumerate()
            .map(|(i, &l)| if (i as u64 + seed).is_multiple_of(5) { (l + 1) % 6 } else { l })
            .collect();
        let table = two_rater_table(&labels_a, &labels_b, 6);
        if let Some(kappa) = fleiss_kappa(&table) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&kappa));
        }
        if let Some(kappa) = cohen_kappa(&labels_a, &labels_b, 6) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&kappa));
        }
        let self_table = two_rater_table(&labels_a, &labels_a, 6);
        if let Some(kappa) = fleiss_kappa(&self_table) {
            prop_assert!(kappa > 0.999);
        }
    }

    /// The corpus generator honours its per-class calibration exactly, for any scale.
    #[test]
    fn generator_respects_class_counts(scale in 20usize..150, seed in 0u64..500) {
        let calibration = CorpusCalibration::default().scaled_to(scale);
        let corpus = CorpusGenerator::new(calibration.clone()).generate(seed);
        prop_assert_eq!(corpus.class_counts(), calibration.class_counts);
        // Gold spans always lie inside their post and are non-empty.
        for post in corpus.iter() {
            prop_assert!(post.span.end <= post.post.text.len());
            prop_assert!(!post.span.is_empty());
            prop_assert!(!post.span_text().is_empty());
        }
        // Statistics never exceed the configured sentence cap.
        let stats = CorpusStatistics::compute(&corpus.posts);
        prop_assert!(stats.max_sentences_per_post <= calibration.max_sentences);
    }

    /// JSONL serialisation round-trips any generated corpus exactly.
    #[test]
    fn jsonl_round_trips(n in 5usize..40, seed in 0u64..500) {
        let corpus = HolistixCorpus::generate_small(n, seed);
        let serialized = io::to_jsonl(&corpus.posts);
        let parsed = io::from_jsonl(&serialized).expect("round trip");
        prop_assert_eq!(parsed, corpus.posts);
    }

    /// Generation is a pure function of (calibration, seed).
    #[test]
    fn generation_is_deterministic(n in 10usize..60, seed in 0u64..500) {
        let a = HolistixCorpus::generate_small(n, seed);
        let b = HolistixCorpus::generate_small(n, seed);
        prop_assert_eq!(a.posts, b.posts);
    }
}
