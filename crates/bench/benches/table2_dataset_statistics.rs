//! Table II — statistics of the dataset.
//!
//! Regenerates the paper's Table II (total posts, word counts, sentence counts and the
//! per-dimension class counts) from the calibrated synthetic corpus and prints the
//! measured values next to the published reference. The timed units are corpus
//! generation and the statistics pass over all 1,420 posts.

use criterion::{criterion_group, criterion_main, Criterion};
use holistix::corpus::{CorpusStatistics, HolistixCorpus};
use std::hint::black_box;

fn print_table2() {
    let corpus = HolistixCorpus::generate(42);
    let measured = CorpusStatistics::compute(&corpus.posts);
    let paper = CorpusStatistics::paper_reference();
    println!("\n=== Table II: statistics of the dataset (measured vs paper) ===");
    println!("{}", measured.to_table());
    println!("Reference (paper):");
    println!("{}", paper.to_table());
    println!(
        "Class distribution measured: {:?}",
        measured
            .class_percentages()
            .iter()
            .map(|p| format!("{p:.2}%"))
            .collect::<Vec<_>>()
    );
}

fn bench_table2(c: &mut Criterion) {
    print_table2();
    let corpus = HolistixCorpus::generate(42);

    let mut group = c.benchmark_group("table2_dataset_statistics");
    group.sample_size(10);
    group.bench_function("generate_full_corpus_1420", |b| {
        b.iter(|| black_box(HolistixCorpus::generate(black_box(42))))
    });
    group.bench_function("compute_statistics_1420", |b| {
        b.iter(|| black_box(CorpusStatistics::compute(black_box(&corpus.posts))))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
