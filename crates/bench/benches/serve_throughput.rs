//! Serving-layer throughput: requests/s vs [`BatchConfig::max_wait`] over
//! keep-alive connections.
//!
//! This is the ROADMAP's "once keep-alive lands" bench: with one request per
//! connection, TCP setup/teardown dominated and the batching knobs were
//! untunable from data. Now each client holds one persistent [`HttpClient`]
//! connection for its whole request stream, so the measured quantity is the
//! serving stack itself — HTTP parse, per-kind batch queue, one batched
//! `Scorer::probabilities` call, fan-out, response write.
//!
//! The corpus is the paper-scale one the other serving benches use: the
//! Table I lexicon augmented with a 12k-term synthetic vocabulary
//! (`HolistixCorpus::augment_vocabulary`), so per-text scoring cost is
//! realistic. The sweep varies the LR queue's coalescing window
//! (`max_wait` 0/1/2/5/10 ms) under concurrent keep-alive clients; wider
//! windows assemble bigger batches (fewer, better-amortised scoring calls)
//! at the price of per-request latency. The headline table prints requests/s
//! and the mean scored-batch size per setting so the trade-off is visible in
//! one run; criterion per-iteration timings follow.
//!
//! Since the connection-multiplexer redesign there is a second headline
//! sweep: requests/s and resident OS thread count as a function of **idle
//! keep-alive connections parked on the server** (100 → 2 000). Under the old
//! one-thread-per-connection pool those idle clients would each pin a worker;
//! under the multiplexer they cost poll-set entries, so throughput and thread
//! count must both stay flat. The sweep's trajectory is written to
//! `BENCH_serve.json` at the repository root so successive runs can be
//! compared. Each step also records p50/p99/p999 request latency, read from
//! the server's own log-bucketed histogram and snapshot-subtracted so every
//! step reports only its own requests — the same instrumentation `/metrics`
//! exposes, exercised here as the regression gate for its overhead.
//!
//! Correctness is pinned elsewhere (the loopback integration tests assert
//! bit-identical answers over keep-alive connections and batches); this bench
//! compares only speed.

use criterion::{criterion_group, criterion_main, Criterion};
use holistix::corpus::JsonValue;
use holistix::prelude::*;
use holistix::transformer::ModelKind;
use holistix_bench::report::merge_section;
use holistix_serve::{
    os_thread_count, serve, AdmissionConfig, BatchConfig, HttpClient, KeepAliveConfig,
    ModelRegistry, ServeConfig, ServerHandle,
};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Synthetic lexicon size: paper-scale vocabulary.
const AUGMENT_TERMS: usize = 12_000;
/// Filler terms appended per post.
const AUGMENT_WORDS_PER_POST: usize = 60;
/// Training corpus size (augmented).
const TRAIN_POSTS: usize = 400;
/// Concurrent keep-alive clients.
const CLIENTS: usize = 4;
/// Requests each client issues per measured run.
const REQUESTS_PER_CLIENT: usize = 50;

/// Start a server with the given LR-queue window, fitted once on the
/// augmented corpus (the registry is fitted per call because the server owns
/// it; fit cost is outside the measured request loops).
fn start_server(
    corpus: &HolistixCorpus,
    max_wait: Duration,
    idle_timeout: Duration,
) -> ServerHandle {
    let texts = corpus.texts();
    let labels = corpus.label_indices();
    let registry = ModelRegistry::fit(
        &[BaselineKind::LogisticRegression],
        SpeedProfile::Tiny,
        &texts,
        &labels,
        42,
    );
    let config = ServeConfig {
        handlers: CLIENTS + 2,
        batch: BatchConfig {
            max_batch: 64,
            max_wait,
        },
        keep_alive: KeepAliveConfig {
            idle_timeout,
            ..KeepAliveConfig::default()
        },
        ..ServeConfig::default()
    };
    serve("127.0.0.1:0", registry, config).expect("bind loopback")
}

/// Park `n` keep-alive connections on the server that never send a byte.
/// Returned streams must stay alive for the duration of the measurement.
/// Connects with retry: a burst of thousands of SYNs can transiently overrun
/// the listen backlog.
fn open_idle_clients(addr: SocketAddr, n: usize) -> Vec<TcpStream> {
    let mut idle = Vec::with_capacity(n);
    for i in 0..n {
        let mut attempts = 0;
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    idle.push(stream);
                    break;
                }
                Err(e) => {
                    attempts += 1;
                    assert!(attempts < 200, "idle client {i} could not connect: {e}");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }
    idle
}

/// Drive `CLIENTS` persistent connections × `REQUESTS_PER_CLIENT` single-text
/// predicts; returns total wall-clock. Panics on any non-200 so a broken
/// server cannot masquerade as a fast one.
fn drive(addr: SocketAddr, pool: &[String]) -> Duration {
    let started = Instant::now();
    crossbeam::thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            scope.spawn(move |_| {
                let mut client = HttpClient::connect(addr).expect("connect");
                for i in 0..REQUESTS_PER_CLIENT {
                    let text = &pool[(client_id * REQUESTS_PER_CLIENT + i) % pool.len()];
                    let body =
                        format!("{{\"text\":{}}}", holistix::corpus::json::json_escape(text));
                    let (status, response) = client
                        .request("POST", "/predict", Some(&body))
                        .expect("keep-alive predict");
                    assert_eq!(status, 200, "{response}");
                }
            });
        }
    })
    .expect("client scope failed");
    started.elapsed()
}

/// Drive `clients` persistent connections × `requests` single-text predicts
/// against one named model; returns total wall-clock.
fn drive_model(
    addr: SocketAddr,
    pool: &[String],
    model: &str,
    clients: usize,
    requests: usize,
) -> Duration {
    let started = Instant::now();
    crossbeam::thread::scope(|scope| {
        for client_id in 0..clients {
            scope.spawn(move |_| {
                let mut client = HttpClient::connect(addr).expect("connect");
                for i in 0..requests {
                    let text = &pool[(client_id * requests + i) % pool.len()];
                    let body = format!(
                        "{{\"text\":{},\"model\":{}}}",
                        holistix::corpus::json::json_escape(text),
                        holistix::corpus::json::json_escape(model),
                    );
                    let (status, response) = client
                        .request("POST", "/predict", Some(&body))
                        .expect("keep-alive predict");
                    assert_eq!(status, 200, "{response}");
                }
            });
        }
    })
    .expect("client scope failed");
    started.elapsed()
}

/// The long-promised real-slow-backend sweep: a `Fast`-profile MentalBERT
/// analogue and its i8-quantized sibling registered beside LR via
/// [`ModelRegistry::from_scorers`], so per-kind queue isolation,
/// [`BatchConfig::sized_for`] and `explain_shed_depth` degradation are
/// measured against a genuinely slow scorer instead of a flag-gated stub.
/// Returns the sweep's JSON section for the trajectory files.
fn real_backend_sweep() -> JsonValue {
    let corpus = HolistixCorpus::generate_small(120, 7);
    let texts = corpus.texts();
    let labels = corpus.label_indices();
    let pool: Vec<String> = texts.iter().map(|t| t.to_string()).collect();

    let lr: Arc<dyn Scorer> = fit_scorer(
        BaselineKind::LogisticRegression,
        SpeedProfile::Tiny,
        &texts,
        &labels,
        7,
        1,
    );
    let f64_scorer = TransformerScorer::fit(
        ModelKind::MentalBert,
        SpeedProfile::Fast,
        &texts,
        &labels,
        7,
    );
    let i8_arc: Arc<dyn Scorer> = Arc::new(QuantizedScorer::from_transformer(&f64_scorer));
    let f64_arc: Arc<dyn Scorer> = Arc::new(f64_scorer);

    let start = || {
        let registry = ModelRegistry::from_scorers(vec![
            Arc::clone(&lr),
            Arc::clone(&f64_arc),
            Arc::clone(&i8_arc),
        ]);
        let config = ServeConfig {
            handlers: CLIENTS + 2,
            batch: BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(1),
            },
            admission: AdmissionConfig {
                max_queue_depth: 512,
                global_intake_limit: 4096,
                explain_shed_depth: 8,
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        };
        serve("127.0.0.1:0", registry, config).expect("bind loopback")
    };

    // Per-kind throughput, each kind on a fresh server so queue metrics and
    // warmup effects never bleed across arms. The f64-vs-i8 ratio is the
    // serving-level quantization speedup, which compounds two effects: the
    // cheaper i8 kernels, and the i8 scorer's *measured* cost hint keeping
    // its coalescing window near the base 1 ms while the f64 kind's declared
    // 50 ms hint stretches its window via `sized_for` (at this client count
    // the f64 queue is window-bound — exactly how a production registry
    // would behave with these hints).
    let requests = 25usize;
    let total = (CLIENTS * requests) as f64;
    let mut req_per_s = Vec::new();
    println!("serve_real_backend: {CLIENTS} keep-alive clients x {requests} requests per kind");
    for model in ["LR", "MentalBERT", "MentalBERT-i8"] {
        let server = start();
        let elapsed = drive_model(server.addr(), &pool, model, CLIENTS, requests);
        let rps = total / elapsed.as_secs_f64();
        println!("{model:>13}: {rps:>7.0} req/s");
        req_per_s.push((model, rps));
        server.shutdown();
    }
    let serve_speedup = req_per_s[2].1 / req_per_s[1].1;
    println!("serving speedup MentalBERT-i8 vs MentalBERT: {serve_speedup:.2}x");

    // Queue isolation: half the clients hammer the slow f64 transformer while
    // the other half run LR. LR requests must never wait behind transformer
    // batches — its queue-wait p99 stays within its own coalescing window,
    // not the transformer's service time.
    let server = start();
    let addr = server.addr();
    crossbeam::thread::scope(|scope| {
        let pool = &pool;
        scope.spawn(move |_| drive_model(addr, pool, "MentalBERT", CLIENTS / 2, requests));
        scope.spawn(move |_| drive_model(addr, pool, "LR", CLIENTS / 2, requests));
    })
    .expect("mixed traffic scope");
    let snapshot = server.metrics().snapshot();
    let queues = snapshot.get("queues").unwrap();
    let wait_p99 = |kind: &str| {
        queues
            .get(kind)
            .unwrap()
            .get("queue_wait_us")
            .unwrap()
            .get("p99")
            .unwrap()
            .as_f64()
            .unwrap_or(0.0)
    };
    let lr_p99 = wait_p99("LR");
    let bert_p99 = wait_p99("MentalBERT");
    println!("mixed traffic: LR queue-wait p99 {lr_p99:.0} us, MentalBERT p99 {bert_p99:.0} us");
    assert!(
        lr_p99 < 10_000.0,
        "LR waited {lr_p99} us behind the transformer queue — isolation broke"
    );

    // Degradation: saturate the f64 transformer queue past `explain_shed_depth`
    // (8) and watch `/explain` shed with 429 while the flood's predicts still
    // serve. Each flood request carries 100 texts, so the queue holds hundreds
    // of texts × ~ms-scale scoring — a wide window for the explain probe.
    let flood_body = {
        let items: Vec<String> = pool
            .iter()
            .cycle()
            .take(100)
            .map(|t| holistix::corpus::json::json_escape(t))
            .collect();
        format!(
            "{{\"texts\":[{}],\"model\":\"MentalBERT\"}}",
            items.join(",")
        )
    };
    let explain_body = format!(
        "{{\"text\":{},\"model\":\"LR\",\"n_samples\":50,\"top_k\":3}}",
        holistix::corpus::json::json_escape(&pool[0])
    );
    let shed_seen = crossbeam::thread::scope(|scope| {
        for _ in 0..4 {
            let flood_body = &flood_body;
            scope.spawn(move |_| {
                let mut client = HttpClient::connect(addr).expect("connect flood");
                for _ in 0..3 {
                    let (status, response) = client
                        .request("POST", "/predict", Some(flood_body))
                        .expect("flood predict");
                    assert!(status == 200 || status == 429, "{response}");
                }
            });
        }
        let mut client = HttpClient::connect(addr).expect("connect explain probe");
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut seen = false;
        while Instant::now() < deadline {
            let (status, _) = client
                .request("POST", "/explain", Some(&explain_body))
                .expect("explain probe");
            if status == 429 {
                seen = true;
                break;
            }
        }
        seen
    })
    .expect("flood scope");
    let shed_total = server
        .metrics()
        .snapshot()
        .get("admission")
        .unwrap()
        .get("shed")
        .unwrap()
        .get("explain")
        .unwrap()
        .get("degraded")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(
        shed_seen && shed_total >= 1.0,
        "explain never shed under a saturated transformer queue \
         (seen={shed_seen}, counter={shed_total})"
    );
    println!("explain shed under transformer flood: {shed_total} degraded sheds");
    server.shutdown();

    JsonValue::object(vec![
        ("lr_req_per_s", JsonValue::Number(req_per_s[0].1)),
        ("transformer_req_per_s", JsonValue::Number(req_per_s[1].1)),
        ("quantized_req_per_s", JsonValue::Number(req_per_s[2].1)),
        ("serve_speedup_i8_vs_f64", JsonValue::Number(serve_speedup)),
        ("mixed_lr_wait_p99_us", JsonValue::Number(lr_p99)),
        ("mixed_transformer_wait_p99_us", JsonValue::Number(bert_p99)),
        ("explain_degraded_sheds", JsonValue::Number(shed_total)),
    ])
}

fn bench_serve_throughput(c: &mut Criterion) {
    let mut corpus = HolistixCorpus::generate_small(TRAIN_POSTS, 42);
    corpus.augment_vocabulary(AUGMENT_TERMS, AUGMENT_WORDS_PER_POST, 42);
    let pool: Vec<String> = corpus.texts().iter().map(|t| t.to_string()).collect();

    let waits = [0u64, 1, 2, 5, 10];
    let total_requests = (CLIENTS * REQUESTS_PER_CLIENT) as f64;

    // Headline requests/s table (criterion per-iteration timings below).
    println!(
        "serve_throughput: {CLIENTS} keep-alive clients x {REQUESTS_PER_CLIENT} requests, \
         12k-term vocabulary"
    );
    for &wait_ms in &waits {
        let server = start_server(
            &corpus,
            Duration::from_millis(wait_ms),
            Duration::from_secs(5),
        );
        let elapsed = drive(server.addr(), &pool);
        let metrics = server.metrics();
        let reuses = metrics.keepalive_reuses_total();
        let snapshot = metrics.snapshot();
        let batches = snapshot.get("batches").unwrap();
        let batch_count = batches.get("count").unwrap().as_f64().unwrap();
        let scored = snapshot.get("texts_scored").unwrap().as_f64().unwrap();
        let mean_batch = if batch_count > 0.0 {
            scored / batch_count
        } else {
            0.0
        };
        assert!(
            reuses as f64 >= total_requests - CLIENTS as f64,
            "clients reconnected: only {reuses} reuses"
        );
        println!(
            "max_wait {wait_ms:>2} ms: {:>7.0} req/s  (mean batch {:.2}, {} reuses)",
            total_requests / elapsed.as_secs_f64(),
            mean_batch,
            reuses
        );
        server.shutdown();
    }

    // The multiplexer's headline: park 100 → 2 000 idle keep-alive clients on
    // one server and re-measure active-client throughput and the process's OS
    // thread count at each step. Both must stay flat — idle connections are
    // poll-set entries, not threads.
    let idle_counts = [100usize, 500, 1000, 2000];
    // One server for the whole sweep (so the thread-count comparison is
    // apples-to-apples) with a long idle timeout so the parked clients are
    // not evicted mid-measurement.
    let server = start_server(&corpus, Duration::from_millis(2), Duration::from_secs(600));
    let addr = server.addr();
    println!("serve_idle_sweep: {CLIENTS} active clients against parked idle connections");
    let mut trajectory: Vec<JsonValue> = Vec::new();
    let mut thread_counts: Vec<u64> = Vec::new();
    let mut idle_pool: Vec<TcpStream> = Vec::new();
    for &target in &idle_counts {
        idle_pool.extend(open_idle_clients(addr, target - idle_pool.len()));
        // Snapshot the cumulative latency histogram around the drive so each
        // sweep step reports the percentiles of *its own* requests only
        // (histogram subtraction is exact — the buckets are atomic counters).
        let latency_before = server.metrics().latency_snapshot();
        let elapsed = drive(addr, &pool);
        let latency = server.metrics().latency_snapshot().minus(&latency_before);
        let req_per_s = total_requests / elapsed.as_secs_f64();
        // `drive` joins its client threads, but the kernel can still list a
        // joined thread in /proc for a beat afterwards. Dying threads only
        // inflate the count, so the minimum over a short window is the
        // settled value.
        let os_threads = (0..20)
            .map(|_| {
                std::thread::sleep(Duration::from_millis(10));
                os_thread_count().unwrap_or(0)
            })
            .min()
            .unwrap_or(0);
        let open = server.metrics().connections().open();
        assert!(
            open >= target as u64,
            "only {open} connections open with {target} idle clients parked"
        );
        thread_counts.push(os_threads);
        let pct = |q: f64| latency.percentile(q).unwrap_or(0);
        let (p50, p99, p999) = (pct(0.50), pct(0.99), pct(0.999));
        println!(
            "idle {target:>4}: {req_per_s:>7.0} req/s  p50 {p50} us  p99 {p99} us  p999 {p999} us  \
             ({os_threads} OS threads, {open} open connections)"
        );
        trajectory.push(JsonValue::object(vec![
            ("idle_clients", JsonValue::Number(target as f64)),
            ("req_per_s", JsonValue::Number(req_per_s)),
            ("latency_p50_us", JsonValue::Number(p50 as f64)),
            ("latency_p99_us", JsonValue::Number(p99 as f64)),
            ("latency_p999_us", JsonValue::Number(p999 as f64)),
            ("os_threads", JsonValue::Number(os_threads as f64)),
            ("open_connections", JsonValue::Number(open as f64)),
        ]));
    }
    drop(idle_pool);
    server.shutdown();
    assert!(
        thread_counts.windows(2).all(|w| w[0] == w[1]),
        "OS thread count moved with idle connections: {thread_counts:?}"
    );
    let real_backend = real_backend_sweep();

    let report = JsonValue::object(vec![
        ("bench", JsonValue::string("serve_throughput")),
        ("active_clients", JsonValue::Number(CLIENTS as f64)),
        (
            "requests_per_client",
            JsonValue::Number(REQUESTS_PER_CLIENT as f64),
        ),
        ("idle_sweep", JsonValue::Array(trajectory)),
        ("real_backend", real_backend.clone()),
    ]);
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out_path, report.to_string()).expect("write BENCH_serve.json");
    println!("idle-sweep trajectory written to {out_path}");
    // The serving-level quantization speedup also belongs in the transformer
    // trajectory file, next to the kernel-level numbers.
    merge_section(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transformer.json"),
        "serve",
        real_backend,
    );

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    for &wait_ms in &waits {
        let server = start_server(
            &corpus,
            Duration::from_millis(wait_ms),
            Duration::from_secs(5),
        );
        let addr = server.addr();
        group.bench_function(format!("keepalive_predict_wait_{wait_ms}ms"), |b| {
            b.iter(|| drive(addr, &pool))
        });
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
