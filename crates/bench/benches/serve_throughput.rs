//! Serving-layer throughput: requests/s vs [`BatchConfig::max_wait`] over
//! keep-alive connections.
//!
//! This is the ROADMAP's "once keep-alive lands" bench: with one request per
//! connection, TCP setup/teardown dominated and the batching knobs were
//! untunable from data. Now each client holds one persistent [`HttpClient`]
//! connection for its whole request stream, so the measured quantity is the
//! serving stack itself — HTTP parse, per-kind batch queue, one batched
//! `Scorer::probabilities` call, fan-out, response write.
//!
//! The corpus is the paper-scale one the other serving benches use: the
//! Table I lexicon augmented with a 12k-term synthetic vocabulary
//! (`HolistixCorpus::augment_vocabulary`), so per-text scoring cost is
//! realistic. The sweep varies the LR queue's coalescing window
//! (`max_wait` 0/1/2/5/10 ms) under concurrent keep-alive clients; wider
//! windows assemble bigger batches (fewer, better-amortised scoring calls)
//! at the price of per-request latency. The headline table prints requests/s
//! and the mean scored-batch size per setting so the trade-off is visible in
//! one run; criterion per-iteration timings follow.
//!
//! Correctness is pinned elsewhere (the loopback integration tests assert
//! bit-identical answers over keep-alive connections and batches); this bench
//! compares only speed.

use criterion::{criterion_group, criterion_main, Criterion};
use holistix::prelude::*;
use holistix_serve::{serve, BatchConfig, HttpClient, ModelRegistry, ServeConfig, ServerHandle};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Synthetic lexicon size: paper-scale vocabulary.
const AUGMENT_TERMS: usize = 12_000;
/// Filler terms appended per post.
const AUGMENT_WORDS_PER_POST: usize = 60;
/// Training corpus size (augmented).
const TRAIN_POSTS: usize = 400;
/// Concurrent keep-alive clients.
const CLIENTS: usize = 4;
/// Requests each client issues per measured run.
const REQUESTS_PER_CLIENT: usize = 50;

/// Start a server with the given LR-queue window, fitted once on the
/// augmented corpus (the registry is fitted per call because the server owns
/// it; fit cost is outside the measured request loops).
fn start_server(corpus: &HolistixCorpus, max_wait: Duration) -> ServerHandle {
    let texts = corpus.texts();
    let labels = corpus.label_indices();
    let registry = ModelRegistry::fit(
        &[BaselineKind::LogisticRegression],
        SpeedProfile::Tiny,
        &texts,
        &labels,
        42,
    );
    let config = ServeConfig {
        workers: CLIENTS + 2,
        batch: BatchConfig {
            max_batch: 64,
            max_wait,
        },
        ..ServeConfig::default()
    };
    serve("127.0.0.1:0", registry, config).expect("bind loopback")
}

/// Drive `CLIENTS` persistent connections × `REQUESTS_PER_CLIENT` single-text
/// predicts; returns total wall-clock. Panics on any non-200 so a broken
/// server cannot masquerade as a fast one.
fn drive(addr: SocketAddr, pool: &[String]) -> Duration {
    let started = Instant::now();
    crossbeam::thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            scope.spawn(move |_| {
                let mut client = HttpClient::connect(addr).expect("connect");
                for i in 0..REQUESTS_PER_CLIENT {
                    let text = &pool[(client_id * REQUESTS_PER_CLIENT + i) % pool.len()];
                    let body =
                        format!("{{\"text\":{}}}", holistix::corpus::json::json_escape(text));
                    let (status, response) = client
                        .request("POST", "/predict", Some(&body))
                        .expect("keep-alive predict");
                    assert_eq!(status, 200, "{response}");
                }
            });
        }
    })
    .expect("client scope failed");
    started.elapsed()
}

fn bench_serve_throughput(c: &mut Criterion) {
    let mut corpus = HolistixCorpus::generate_small(TRAIN_POSTS, 42);
    corpus.augment_vocabulary(AUGMENT_TERMS, AUGMENT_WORDS_PER_POST, 42);
    let pool: Vec<String> = corpus.texts().iter().map(|t| t.to_string()).collect();

    let waits = [0u64, 1, 2, 5, 10];
    let total_requests = (CLIENTS * REQUESTS_PER_CLIENT) as f64;

    // Headline requests/s table (criterion per-iteration timings below).
    println!(
        "serve_throughput: {CLIENTS} keep-alive clients x {REQUESTS_PER_CLIENT} requests, \
         12k-term vocabulary"
    );
    for &wait_ms in &waits {
        let server = start_server(&corpus, Duration::from_millis(wait_ms));
        let elapsed = drive(server.addr(), &pool);
        let metrics = server.metrics();
        let reuses = metrics.keepalive_reuses_total();
        let snapshot = metrics.snapshot();
        let batches = snapshot.get("batches").unwrap();
        let batch_count = batches.get("count").unwrap().as_f64().unwrap();
        let scored = snapshot.get("texts_scored").unwrap().as_f64().unwrap();
        let mean_batch = if batch_count > 0.0 {
            scored / batch_count
        } else {
            0.0
        };
        assert!(
            reuses as f64 >= total_requests - CLIENTS as f64,
            "clients reconnected: only {reuses} reuses"
        );
        println!(
            "max_wait {wait_ms:>2} ms: {:>7.0} req/s  (mean batch {:.2}, {} reuses)",
            total_requests / elapsed.as_secs_f64(),
            mean_batch,
            reuses
        );
        server.shutdown();
    }

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    for &wait_ms in &waits {
        let server = start_server(&corpus, Duration::from_millis(wait_ms));
        let addr = server.addr();
        group.bench_function(format!("keepalive_predict_wait_{wait_ms}ms"), |b| {
            b.iter(|| drive(addr, &pool))
        });
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
