//! Table I — class indicators for the annotation task.
//!
//! The paper's Table I defines the per-dimension indicator lexicons annotators use.
//! This bench measures how well the rule-based indicator classifier recovers the gold
//! label from (a) the explanation span and (b) the full post, and benchmarks the
//! indicator-scoring pass — the cheapest possible baseline and a sanity check that the
//! synthetic corpus carries the Table I signal.

use criterion::{criterion_group, criterion_main, Criterion};
use holistix::corpus::{HolistixCorpus, IndicatorLexicon, ALL_DIMENSIONS};
use std::hint::black_box;

fn print_coverage() {
    let corpus = HolistixCorpus::generate(42);
    let lexicon = IndicatorLexicon::new();
    println!("\n=== Table I: indicator lexicon coverage (measured) ===");
    println!(
        "{:<6}{:>18}{:>18}{:>16}",
        "Class", "span accuracy", "post accuracy", "distinctiveness"
    );
    for dim in ALL_DIMENSIONS {
        let posts: Vec<_> = corpus.iter().filter(|p| p.label == dim).collect();
        let span_hits = posts
            .iter()
            .filter(|p| lexicon.classify_by_indicators(p.span_text()) == Some(dim))
            .count();
        let post_hits = posts
            .iter()
            .filter(|p| lexicon.classify_by_indicators(&p.post.text) == Some(dim))
            .count();
        println!(
            "{:<6}{:>17.1}%{:>17.1}%{:>16.2}",
            dim.code(),
            100.0 * span_hits as f64 / posts.len().max(1) as f64,
            100.0 * post_hits as f64 / posts.len().max(1) as f64,
            lexicon.distinctiveness(dim)
        );
    }
}

fn bench_indicators(c: &mut Criterion) {
    print_coverage();
    let corpus = HolistixCorpus::generate_small(400, 42);
    let lexicon = IndicatorLexicon::new();

    let mut group = c.benchmark_group("table1_indicator_coverage");
    group.bench_function("indicator_classify_400_posts", |b| {
        b.iter(|| {
            for post in corpus.iter() {
                black_box(lexicon.classify_by_indicators(black_box(&post.post.text)));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_indicators);
criterion_main!(benches);
