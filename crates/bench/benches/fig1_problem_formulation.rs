//! Fig. 1 — problem formulation: identify the wellness dimension of a user post and
//! surface the explanatory keywords.
//!
//! Prints a single-post walkthrough (post → predicted dimension → LIME keywords vs the
//! gold span) and benchmarks the inference path: vectorise + classify + explain one
//! post with an already-fitted model.

use criterion::{criterion_group, criterion_main, Criterion};
use holistix::explain::LimeExplainer;
use holistix::prelude::*;
use std::hint::black_box;

fn print_walkthrough() {
    println!("\n=== Fig. 1: problem-formulation walkthrough (measured) ===\n");
    let walkthrough = run_fig1_walkthrough(42);
    println!("{walkthrough}");
}

fn bench_fig1(c: &mut Criterion) {
    print_walkthrough();

    let corpus = HolistixCorpus::generate_small(240, 42);
    let model = FittedBaseline::fit(
        BaselineKind::LogisticRegression,
        SpeedProfile::Fast,
        &corpus.texts(),
        &corpus.label_indices(),
        42,
    );
    let post = &corpus.posts[1];
    let explainer = LimeExplainer::default_config();

    let mut group = c.benchmark_group("fig1_problem_formulation");
    group.sample_size(30);
    group.bench_function("classify_single_post", |b| {
        b.iter(|| black_box(model.predict(black_box(&[post.post.text.as_str()]))))
    });
    group.bench_function("classify_and_explain_single_post", |b| {
        b.iter(|| {
            let prediction = model.predict(&[post.post.text.as_str()]);
            let explanation = explainer.explain(&model, &post.post.text, None);
            black_box((prediction, explanation))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
