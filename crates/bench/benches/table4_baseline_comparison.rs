//! Table IV — comparison of baseline methods.
//!
//! Prints a full Table IV reproduction (per-class precision/recall/F1 and accuracy for
//! all nine baselines, averaged over stratified folds) using the reduced "fast"
//! profile so the sweep completes within a benchmark run, then benchmarks the
//! per-fold training unit of a classical and a transformer baseline.
//!
//! The absolute numbers differ from the paper (synthetic corpus, small from-scratch
//! transformer analogues) but the shape is the comparison of interest: transformers >
//! classical TF-IDF models, the MentalBERT analogue strongest, Gaussian NB weakest,
//! and the Emotional / Spiritual classes hardest — see EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use holistix::corpus::splits::kfold_stratified;
use holistix::ml::cross_validate;
use holistix::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn print_table4() {
    let config = EvaluationConfig {
        corpus_size: Some(300),
        n_folds: 3,
        parallel: true,
        ..EvaluationConfig::fast()
    };
    println!("\n=== Table IV: comparison of baseline methods (fast profile, measured) ===");
    println!(
        "corpus: {} posts, {} folds, reduced transformer analogues\n",
        config.corpus_size.unwrap(),
        config.n_folds
    );
    let result = run_table4(&config);
    println!("{result}");
    println!("Paper accuracies: LR 0.52, Linear SVM 0.50, Gaussian NB 0.32, BERT 0.65,");
    println!("                  DistilBERT 0.69, MentalBERT 0.74, Flan-T5 0.65, XLNet 0.63, GPT-2.0 0.66");
}

fn bench_table4(c: &mut Criterion) {
    print_table4();

    let corpus = HolistixCorpus::generate_small(240, 42);
    let texts = corpus.texts();
    let labels = corpus.label_indices();
    let folds = kfold_stratified(&labels, 6, 3, 42);

    let mut group = c.benchmark_group("table4_baseline_comparison");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(20));
    group.bench_function("lr_3fold_240_posts", |b| {
        b.iter(|| {
            black_box(cross_validate(
                &texts,
                &labels,
                6,
                &folds,
                || BaselinePipeline::new(BaselineKind::LogisticRegression, SpeedProfile::Fast, 42),
                true,
            ))
        })
    });
    group.bench_function("gaussian_nb_3fold_240_posts", |b| {
        b.iter(|| {
            black_box(cross_validate(
                &texts,
                &labels,
                6,
                &folds,
                || BaselinePipeline::new(BaselineKind::GaussianNb, SpeedProfile::Fast, 42),
                true,
            ))
        })
    });
    group.finish();

    let mut transformer_group = c.benchmark_group("table4_transformer_fold");
    transformer_group.sample_size(10);
    transformer_group.measurement_time(Duration::from_secs(30));
    let small = HolistixCorpus::generate_small(90, 7);
    let small_texts = small.texts();
    let small_labels = small.label_indices();
    transformer_group.bench_function("distilbert_tiny_fit_90_posts", |b| {
        b.iter(|| {
            black_box(FittedBaseline::fit(
                BaselineKind::Transformer(ModelKind::DistilBert),
                SpeedProfile::Tiny,
                black_box(&small_texts),
                black_box(&small_labels),
                7,
            ))
        })
    });
    transformer_group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
