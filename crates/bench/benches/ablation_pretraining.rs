//! Ablation — domain-adaptive pre-initialisation of the transformer analogues.
//!
//! DESIGN.md substitutes HuggingFace checkpoints with a masked-LM pre-initialisation
//! stage whose *provenance* (in-domain vs domain-degraded vs none) models the
//! pretrained/domain-adapted distinction between BERT and MentalBERT. This ablation
//! measures test accuracy of the same architecture under the three provenances and
//! benchmarks the pre-initialisation stage itself.

use criterion::{criterion_group, criterion_main, Criterion};
use holistix::corpus::splits::paper_split;
use holistix::corpus::HolistixCorpus;
use holistix::ml::ClassificationReport;
use holistix::transformer::{FineTuneRecipe, ModelKind, PretrainConfig};
use std::hint::black_box;
use std::time::Duration;

fn accuracy_with_pretrain(pretrain: Option<PretrainConfig>, label: &str) -> f64 {
    let corpus = HolistixCorpus::generate_small(220, 42);
    let labels = corpus.label_indices();
    let texts = corpus.texts();
    let split = paper_split(&labels, 6, 42);
    let train_texts: Vec<&str> = split.train.iter().map(|&i| texts[i]).collect();
    let train_labels: Vec<usize> = split.train.iter().map(|&i| labels[i]).collect();
    let test_texts: Vec<&str> = split.test.iter().map(|&i| texts[i]).collect();
    let test_labels: Vec<usize> = split.test.iter().map(|&i| labels[i]).collect();

    let mut recipe = FineTuneRecipe::fast(ModelKind::MentalBert, 6, 42);
    recipe.finetune.pretrain = pretrain;
    let mut trainer = recipe.build();
    trainer.fit(&train_texts, &train_labels);
    let predictions = trainer.predict(&test_texts);
    let report = ClassificationReport::from_labels(&test_labels, &predictions, 6);
    println!(
        "{label:<28}{:>10.3}{:>12.3}",
        report.accuracy, report.macro_f1
    );
    report.accuracy
}

fn print_ablation() {
    println!("\n=== Ablation: pre-initialisation provenance (same architecture, measured) ===\n");
    println!("{:<28}{:>10}{:>12}", "provenance", "accuracy", "macro F1");
    let _ = accuracy_with_pretrain(Some(PretrainConfig::in_domain()), "in-domain (MentalBERT)");
    let _ = accuracy_with_pretrain(Some(PretrainConfig::generic()), "degraded (BERT-style)");
    let _ = accuracy_with_pretrain(None, "none (random init)");
}

fn bench_pretraining(c: &mut Criterion) {
    print_ablation();

    let corpus = HolistixCorpus::generate_small(150, 7);
    let texts: Vec<&str> = corpus.texts();

    let mut group = c.benchmark_group("ablation_pretraining");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(25));
    group.bench_function("masked_lm_pretrain_150_posts", |b| {
        b.iter(|| {
            let recipe = FineTuneRecipe::fast(ModelKind::MentalBert, 6, 7);
            let mut builder = holistix::text::SubwordVocabBuilder::new(600);
            for t in &texts {
                let words: Vec<&str> = t.split_whitespace().collect();
                builder.add_words(&words);
            }
            let mut model = holistix::transformer::TransformerClassifier::new(
                recipe.model.clone(),
                "MentalBERT",
                builder.build(),
                7,
            );
            let summary = holistix::transformer::pretrain_masked_lm(
                &mut model,
                &texts,
                &PretrainConfig {
                    epochs: 1,
                    max_sequences: Some(100),
                    ..PretrainConfig::in_domain()
                },
            );
            black_box(summary)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pretraining);
criterion_main!(benches);
