//! Ablation — feature representation for the classical baselines.
//!
//! The paper fixes TF-IDF unigrams for its classical models. This ablation varies the
//! representation (raw counts vs TF-IDF, with/without stemming, unigram vs unigram+
//! bigram) and reports cross-validated accuracy of logistic regression under each, then
//! benchmarks the vectorise+train unit per variant. It justifies the DESIGN.md choice
//! of scikit-learn-style smoothed TF-IDF as the default analyzer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holistix::corpus::splits::kfold_stratified;
use holistix::corpus::HolistixCorpus;
use holistix::ml::{
    cross_validate, LogisticRegression, LogisticRegressionConfig, TfidfPipeline, VectorizerOptions,
};
use std::hint::black_box;
use std::time::Duration;

fn variants() -> Vec<(&'static str, VectorizerOptions)> {
    let base = VectorizerOptions::paper_default();
    vec![
        ("tfidf_unigram", base.clone()),
        (
            "tfidf_no_stopword_removal",
            VectorizerOptions {
                remove_stopwords: false,
                ..base.clone()
            },
        ),
        (
            "tfidf_stemmed",
            VectorizerOptions {
                stem: true,
                ..base.clone()
            },
        ),
        (
            "tfidf_unigram_bigram",
            VectorizerOptions {
                ngram_max: 2,
                ..base.clone()
            },
        ),
        (
            "tfidf_sublinear",
            VectorizerOptions {
                sublinear_tf: true,
                ..base.clone()
            },
        ),
        (
            "tfidf_unnormalised",
            VectorizerOptions {
                l2_normalize: false,
                ..base
            },
        ),
    ]
}

fn classifier() -> LogisticRegression {
    LogisticRegression::new(LogisticRegressionConfig {
        epochs: 120,
        ..LogisticRegressionConfig::default()
    })
}

fn print_ablation() {
    let corpus = HolistixCorpus::generate_small(300, 42);
    let texts = corpus.texts();
    let labels = corpus.label_indices();
    let folds = kfold_stratified(&labels, 6, 4, 42);
    println!("\n=== Ablation: feature representation for the LR baseline (measured) ===\n");
    println!("{:<28}{:>10}{:>12}", "variant", "accuracy", "macro F1");
    for (name, options) in variants() {
        let report = cross_validate(
            &texts,
            &labels,
            6,
            &folds,
            || TfidfPipeline::new(classifier(), options.clone()),
            true,
        );
        println!(
            "{:<28}{:>10.3}{:>12.3}",
            name, report.averaged.accuracy, report.averaged.macro_f1
        );
    }
}

fn bench_ablation(c: &mut Criterion) {
    print_ablation();

    let corpus = HolistixCorpus::generate_small(240, 42);
    let texts = corpus.texts();
    let labels = corpus.label_indices();
    let folds = kfold_stratified(&labels, 6, 3, 42);

    let mut group = c.benchmark_group("ablation_features");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(15));
    for (name, options) in variants().into_iter().take(3) {
        group.bench_with_input(BenchmarkId::from_parameter(name), &options, |b, options| {
            b.iter(|| {
                black_box(cross_validate(
                    &texts,
                    &labels,
                    6,
                    &folds,
                    || TfidfPipeline::new(classifier(), options.clone()),
                    true,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
