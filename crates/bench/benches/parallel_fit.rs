//! Sharded map-reduce fit throughput.
//!
//! The PR-4 refactor turned vectoriser fitting — the last serial stage between
//! a JSONL corpus and a servable model — into a map-reduce over document
//! shards (`TfidfVectorizer::fit_parallel`). This bench measures fit
//! throughput (documents/second) against shard count on a paper-scale
//! vocabulary: the Table I lexicon augmented with a 12k-term synthetic lexicon
//! (`HolistixCorpus::augment_vocabulary`), the same corpus construction the
//! `sparse_vs_dense_inference` bench uses.
//!
//! Two variants per shard count:
//!
//! * `fit` — vocabulary counting + merge + IDF (what cross-validation folds
//!   and the serve registry pay per model);
//! * `fit_transform` — the one-tokenisation-pass fit + CSR transform used by
//!   the training pipelines (per-shard token streams re-emitted as CSR blocks,
//!   stacked in document order).
//!
//! Correctness is pinned elsewhere: property tests assert the sharded fit is
//! bit-identical to the sequential one for every shard count, so this bench
//! compares *only* speed. On a multi-core machine the expected shape is
//! near-linear scaling until shards exceed physical cores (>1.5× at 4 shards);
//! on a single-core container all variants collapse to sequential throughput
//! plus a small scoped-thread overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use holistix::ml::{TfidfVectorizer, VectorizerOptions};
use holistix::prelude::*;
use std::hint::black_box;
use std::time::Instant;

/// Synthetic lexicon size: paper-scale (the fitted vocabulary comes out at
/// this plus the few hundred organic terms).
const AUGMENT_TERMS: usize = 12_000;
/// Filler terms appended per post (half round-robin coverage, half Zipf tail).
const AUGMENT_WORDS_PER_POST: usize = 60;
/// Corpus size: large enough that per-shard work dominates thread setup.
const POSTS: usize = 1_500;

fn bench_parallel_fit(c: &mut Criterion) {
    let mut corpus = HolistixCorpus::generate_small(POSTS, 42);
    corpus.augment_vocabulary(AUGMENT_TERMS, AUGMENT_WORDS_PER_POST, 42);
    let texts = corpus.texts();

    let reference = TfidfVectorizer::fit(&texts, VectorizerOptions::paper_default());
    assert!(
        reference.n_features() >= 10_000,
        "augmentation should put the vocabulary at paper scale, got {}",
        reference.n_features()
    );

    // Headline docs/s table (criterion's per-iteration timings are below).
    println!(
        "corpus: {} posts, vocabulary {} terms",
        texts.len(),
        reference.n_features()
    );
    for shards in [1usize, 2, 4, 8] {
        let started = Instant::now();
        let fitted =
            TfidfVectorizer::fit_parallel(&texts, VectorizerOptions::paper_default(), shards);
        let elapsed = started.elapsed();
        assert_eq!(fitted.n_features(), reference.n_features());
        println!(
            "fit with {shards} shard(s): {:>8.1} ms  ({:>9.0} docs/s)",
            elapsed.as_secs_f64() * 1e3,
            texts.len() as f64 / elapsed.as_secs_f64()
        );
    }

    let mut group = c.benchmark_group("parallel_fit");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("fit_12k_vocab_{shards}_shards"), |b| {
            b.iter(|| {
                black_box(TfidfVectorizer::fit_parallel(
                    black_box(&texts),
                    VectorizerOptions::paper_default(),
                    shards,
                ))
            })
        });
        group.bench_function(format!("fit_transform_12k_vocab_{shards}_shards"), |b| {
            b.iter(|| {
                black_box(TfidfVectorizer::fit_transform_sparse_parallel(
                    black_box(&texts),
                    VectorizerOptions::paper_default(),
                    shards,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_fit);
criterion_main!(benches);
