//! Sparse vs dense classical inference.
//!
//! The multi-layer sparse refactor replaced the dense `documents × vocabulary`
//! TF-IDF grid with CSR matrices threaded through vectorisation, training and
//! scoring. This bench quantifies the win on the hot path of every classical
//! experiment: vectorise + score 1,000 synthetic posts, dense vs sparse vs the
//! batched parallel production path (`FittedBaseline::probabilities`).
//!
//! Correctness of the comparison is pinned by construction: property tests in
//! `holistix-ml` assert the sparse transform equals the dense one bitwise, and
//! the pipeline tests assert batched parallel scoring equals single-text
//! scoring bit for bit — so all three variants compute the same numbers.
//!
//! The built-in Table I lexicon only yields a few hundred TF-IDF features —
//! two orders of magnitude below the 10k+ term vocabularies of real corpora,
//! where the dense grid really hurts. The corpus is therefore augmented with
//! a 12k-term synthetic lexicon (`HolistixCorpus::augment_vocabulary`), which
//! puts the measured gap at paper-scale vocabulary sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use holistix::linalg::FeatureMatrix;
use holistix::ml::Classifier;
use holistix::pipeline::tfidf_features_sparse;
use holistix::prelude::*;
use std::hint::black_box;

/// Synthetic lexicon size: paper-scale (the benched vocabulary comes out at
/// this plus the few hundred organic terms).
const AUGMENT_TERMS: usize = 12_000;
/// Filler terms appended per post (half round-robin coverage, half Zipf tail).
const AUGMENT_WORDS_PER_POST: usize = 60;

fn bench_sparse_vs_dense(c: &mut Criterion) {
    let mut corpus = HolistixCorpus::generate_small(1000, 42);
    corpus.augment_vocabulary(AUGMENT_TERMS, AUGMENT_WORDS_PER_POST, 42);
    let texts = corpus.texts();
    let labels = corpus.label_indices();

    let (vectorizer, sparse) = tfidf_features_sparse(&texts);
    println!(
        "corpus: {} posts, vocabulary {} terms, feature density {:.4} ({} nnz vs {} dense cells)",
        texts.len(),
        vectorizer.n_features(),
        sparse.density(),
        sparse.nnz(),
        sparse.rows() * sparse.cols(),
    );
    assert!(
        vectorizer.n_features() >= 10_000,
        "augmentation should put the vocabulary at paper scale, got {}",
        vectorizer.n_features()
    );

    let mut model = holistix::ml::LogisticRegression::default_config();
    model.fit_features(&FeatureMatrix::Sparse(sparse), &labels);
    let fitted = FittedBaseline::fit(
        BaselineKind::LogisticRegression,
        SpeedProfile::Fast,
        &texts,
        &labels,
        42,
    );

    let mut group = c.benchmark_group("sparse_vs_dense_inference");
    group.sample_size(10);

    group.bench_function("dense_vectorize_and_score_1k", |b| {
        b.iter(|| {
            let features = vectorizer.transform(black_box(&texts));
            black_box(model.predict_proba(&features))
        })
    });

    group.bench_function("sparse_vectorize_and_score_1k", |b| {
        b.iter(|| {
            let features = vectorizer.transform_sparse(black_box(&texts));
            black_box(model.predict_proba_features(&FeatureMatrix::Sparse(features)))
        })
    });

    group.bench_function("batched_parallel_pipeline_1k", |b| {
        b.iter(|| black_box(fitted.probabilities(black_box(&texts))))
    });

    group.finish();
}

criterion_group!(benches, bench_sparse_vs_dense);
criterion_main!(benches);
