//! Fig. 2 / §II-E — the annotation framework and inter-annotator agreement.
//!
//! Runs the simulated two-annotator study over the full corpus, prints the resulting
//! Fleiss' kappa next to the paper's 75.92 %, and benchmarks the study plus the kappa
//! computation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use holistix::corpus::annotation::AnnotationStudy;
use holistix::corpus::{fleiss_kappa, HolistixCorpus};
use std::hint::black_box;

fn print_agreement() {
    let corpus = HolistixCorpus::generate(42);
    let study = AnnotationStudy::run(&corpus.posts, 7);
    println!("\n=== Fig. 2 / §II-E: annotation study (measured vs paper) ===");
    println!("  posts annotated:          {}", corpus.len());
    println!(
        "  percentage agreement:     {:.2}%",
        100.0 * study.agreement.percent_agreement
    );
    println!(
        "  Fleiss' kappa (measured): {:.2}%",
        100.0 * study.agreement.fleiss_kappa
    );
    println!("  Fleiss' kappa (paper):    75.92%");
    println!(
        "  Cohen's kappa (measured): {:.2}%",
        100.0 * study.agreement.cohen_kappa
    );
    println!("  top confusions:");
    for (gold, assigned, count) in study.confusion_pairs().into_iter().take(5) {
        println!(
            "    {:<4} -> {:<4} {:>4}",
            gold.code(),
            assigned.code(),
            count
        );
    }
}

fn bench_annotation(c: &mut Criterion) {
    print_agreement();
    let corpus = HolistixCorpus::generate(42);
    let study = AnnotationStudy::run(&corpus.posts, 7);
    let table =
        holistix::corpus::agreement::two_rater_table(&study.annotator_a, &study.annotator_b, 6);

    let mut group = c.benchmark_group("fig2_annotation_pipeline");
    group.sample_size(20);
    group.bench_function("annotation_study_1420_posts", |b| {
        b.iter(|| black_box(AnnotationStudy::run(black_box(&corpus.posts), 7)))
    });
    group.bench_function("fleiss_kappa_1420_items", |b| {
        b.iter(|| black_box(fleiss_kappa(black_box(&table))))
    });
    group.finish();
}

criterion_group!(benches, bench_annotation);
criterion_main!(benches);
