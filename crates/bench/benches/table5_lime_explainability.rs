//! Table V — explainability of the top-performing models using LIME.
//!
//! Prints a Table V reproduction (F1, precision, recall, ROUGE, BLEU of LIME keyword
//! explanations against gold spans for LR and the MentalBERT analogue) on the fast
//! profile, then benchmarks a single LIME explanation of the logistic-regression
//! baseline (the unit cost that dominates the experiment).

use criterion::{criterion_group, criterion_main, Criterion};
use holistix::explain::{LimeConfig, LimeExplainer};
use holistix::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn print_table5() {
    let config = Table5Config {
        corpus_size: Some(300),
        n_explanations: 25,
        speed: SpeedProfile::Fast,
        lime: LimeConfig {
            n_samples: 120,
            ..LimeConfig::default()
        },
        ..Table5Config::paper()
    };
    println!("\n=== Table V: explainability of top performing models using LIME (measured) ===\n");
    let result = run_table5(&config);
    println!("{result}");
    println!("Paper reference:");
    println!("LR           0.4221     0.3140   0.6976   0.3645   0.1349");
    println!("MentalBERT   0.4471     0.4901   0.7463   0.3833   0.1412");
}

fn bench_table5(c: &mut Criterion) {
    print_table5();

    let corpus = HolistixCorpus::generate_small(250, 42);
    let model = FittedBaseline::fit(
        BaselineKind::LogisticRegression,
        SpeedProfile::Fast,
        &corpus.texts(),
        &corpus.label_indices(),
        42,
    );
    let post = &corpus.posts[0];
    let explainer = LimeExplainer::new(LimeConfig {
        n_samples: 120,
        ..LimeConfig::default()
    });

    let mut group = c.benchmark_group("table5_lime_explainability");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(15));
    group.bench_function("lime_explain_lr_120_samples", |b| {
        b.iter(|| black_box(explainer.explain(&model, black_box(&post.post.text), None)))
    });
    group.bench_function("lr_predict_proba_single_post", |b| {
        b.iter(|| black_box(model.probabilities_one(black_box(&post.post.text))))
    });
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
