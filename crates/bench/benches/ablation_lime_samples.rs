//! Ablation — LIME sample budget and scoring batch size.
//!
//! Table V depends on LIME's perturbation sample count. This ablation sweeps the
//! budget (30 → 400 samples), reporting explanation quality (token F1 against gold
//! spans) and benchmarking the explanation cost at each budget, which documents the
//! quality/latency trade-off behind the default of 200 samples.
//!
//! A second sweep varies [`LimeConfig::batch_size`] at a fixed sample budget: the
//! perturbation set is scored through `FittedBaseline::predict_proba` in
//! `batch_size`-sized chunks, and only chunks larger than the pipeline's internal
//! 64-text batch fan out across threads — so this quantifies the batching win that
//! dominates the Table V runtime (and sizes the serving layer's defaults).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holistix::explain::{evaluate_explanations, LimeConfig, LimeExplainer};
use holistix::prelude::*;
use std::hint::black_box;
use std::time::Duration;

const BUDGETS: [usize; 4] = [30, 100, 200, 400];

/// Batch sizes for the `LimeConfig::batch_size` sweep: below, at, and above the
/// core pipeline's 64-text internal scoring batch.
const BATCH_SIZES: [usize; 4] = [32, 64, 256, 1024];

fn print_sweep() {
    let corpus = HolistixCorpus::generate_small(260, 42);
    let model = FittedBaseline::fit(
        BaselineKind::LogisticRegression,
        SpeedProfile::Fast,
        &corpus.texts(),
        &corpus.label_indices(),
        42,
    );
    println!("\n=== Ablation: LIME sample budget vs explanation quality (measured) ===\n");
    println!(
        "{:<12}{:>10}{:>12}{:>10}",
        "samples", "F1", "precision", "recall"
    );
    for &budget in &BUDGETS {
        let explainer = LimeExplainer::new(LimeConfig {
            n_samples: budget,
            ..LimeConfig::default()
        });
        let items: Vec<(Vec<String>, String)> = corpus
            .iter()
            .take(20)
            .map(|post| {
                let explanation = explainer.explain(&model, &post.post.text, None);
                (explanation.top_tokens(5), post.span_text().to_string())
            })
            .collect();
        let report = evaluate_explanations("LR", &items);
        println!(
            "{:<12}{:>10.3}{:>12.3}{:>10.3}",
            budget, report.f1, report.precision, report.recall
        );
    }
}

fn bench_lime_samples(c: &mut Criterion) {
    print_sweep();

    let corpus = HolistixCorpus::generate_small(200, 7);
    let model = FittedBaseline::fit(
        BaselineKind::LogisticRegression,
        SpeedProfile::Fast,
        &corpus.texts(),
        &corpus.label_indices(),
        7,
    );
    let post = &corpus.posts[2];

    let mut group = c.benchmark_group("ablation_lime_samples");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(10));
    for &budget in &BUDGETS {
        let explainer = LimeExplainer::new(LimeConfig {
            n_samples: budget,
            ..LimeConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(budget),
            &explainer,
            |b, explainer| {
                b.iter(|| black_box(explainer.explain(&model, black_box(&post.post.text), None)))
            },
        );
    }
    group.finish();

    // The batching ablation: same explanation, increasingly large scoring chunks.
    let mut group = c.benchmark_group("ablation_lime_batch_size");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(10));
    for &batch_size in &BATCH_SIZES {
        let explainer = LimeExplainer::new(LimeConfig {
            n_samples: 400,
            batch_size,
            ..LimeConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(batch_size),
            &explainer,
            |b, explainer| {
                b.iter(|| black_box(explainer.explain(&model, black_box(&post.post.text), None)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lime_samples);
criterion_main!(benches);
