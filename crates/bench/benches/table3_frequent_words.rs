//! Table III — frequent words in explanatory text spans.
//!
//! Regenerates the per-dimension frequent-word lists from the gold explanation spans
//! (stop-words removed, top-7 per class as in the paper) and benchmarks the analysis
//! pass over the full corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use holistix::corpus::{frequent_span_words, HolistixCorpus};
use std::hint::black_box;

fn print_table3() {
    let corpus = HolistixCorpus::generate(42);
    let frequent = frequent_span_words(&corpus.posts);
    println!("\n=== Table III: frequent words in explanatory text spans (measured) ===");
    println!("{}", frequent.to_table());
    println!("Paper top words: IA future/feel/hard, VA job/work/money, SpiA feel/life/thoughts,");
    println!(
        "                 PA anxiety/sleep/depression, SA me/feel/people, EA feel/anxiety/feeling"
    );
}

fn bench_table3(c: &mut Criterion) {
    print_table3();
    let corpus = HolistixCorpus::generate(42);

    let mut group = c.benchmark_group("table3_frequent_words");
    group.sample_size(20);
    group.bench_function("frequent_span_words_1420", |b| {
        b.iter(|| black_box(frequent_span_words(black_box(&corpus.posts))))
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
