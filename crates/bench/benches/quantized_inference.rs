//! Quantized transformer inference: f64 reference vs weight-only i8.
//!
//! Fits one small-but-real MentalBERT analogue (hidden 64 × 2 layers — big
//! enough that linear-layer compute dominates the shared tokenization cost;
//! at the `Fast` profile's hidden 32 the two paths are both ~500 µs of
//! subword encoding and the kernel ratio is invisible), quantizes it with
//! [`QuantizedScorer::from_transformer`], and compares the two `Scorer`
//! implementations on single-text and batched scoring. The f64 path runs the
//! tape-based autograd forward (graph construction and all); the i8 path is
//! the graph-free f32/i8 kernel — the measured ratio is the speedup a serving
//! deployment gets by registering the `-i8` sibling kind.
//!
//! Headline numbers (mean per-text latency for both paths, both shapes, plus
//! the batched speedup and the measured `cost_hint`s) are merged into the
//! `inference` section of `BENCH_transformer.json` at the repository root so
//! successive runs can be compared; `transformer_fit` owns the file's `fit`
//! section. Correctness (100% label agreement on the seeded eval set, drift
//! bound) is pinned by tests in `holistix::scorer` and the transformer
//! proptests; this bench compares only speed.

use criterion::{criterion_group, criterion_main, Criterion};
use holistix::corpus::JsonValue;
use holistix::prelude::*;
use holistix::transformer::{FineTuneConfig, ModelConfig, ModelKind, Trainer};
use holistix_bench::report::merge_section;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Training corpus size (the `Fast` profile's paper-scale slice).
const TRAIN_POSTS: usize = 120;
/// Texts per batched `probabilities` call.
const BATCH: usize = 32;
/// Measured repetitions per headline cell.
const REPS: usize = 20;

/// Mean wall-clock of `reps` runs of `f`, after one warmup run.
fn mean_time(reps: usize, mut f: impl FnMut()) -> Duration {
    f();
    let started = Instant::now();
    for _ in 0..reps {
        f();
    }
    started.elapsed() / reps as u32
}

fn bench_quantized_inference(c: &mut Criterion) {
    let corpus = HolistixCorpus::generate_small(TRAIN_POSTS, 42);
    let texts = corpus.texts();
    let labels = corpus.label_indices();

    let mut model = ModelConfig::for_kind(ModelKind::MentalBert, 6);
    model.hidden_dim = 64;
    model.n_heads = 4;
    model.ff_dim = 128;
    model.max_len = 48;
    model.n_layers = 2;
    let finetune = FineTuneConfig {
        epochs: 6,
        subword_vocab_size: 800,
        learning_rate: 1e-3,
        pretrain: None,
        seed: 42,
        ..FineTuneConfig::default()
    };
    let mut trainer = Trainer::new(ModelKind::MentalBert, model, finetune);
    trainer.fit(&texts, &labels);
    let f64_scorer = TransformerScorer::from_trainer(trainer);
    let i8_scorer = QuantizedScorer::from_transformer(&f64_scorer);

    let single = texts[0];
    let batch: Vec<&str> = texts.iter().take(BATCH).copied().collect();

    // Headline table: mean per-text latency, f64 vs i8, single vs batched.
    let single_f64 = mean_time(REPS, || {
        black_box(f64_scorer.probabilities_one(black_box(single)));
    });
    let single_i8 = mean_time(REPS, || {
        black_box(i8_scorer.probabilities_one(black_box(single)));
    });
    let batched_f64 = mean_time(REPS, || {
        black_box(f64_scorer.probabilities(black_box(&batch)));
    }) / BATCH as u32;
    let batched_i8 = mean_time(REPS, || {
        black_box(i8_scorer.probabilities(black_box(&batch)));
    }) / BATCH as u32;
    let single_speedup = single_f64.as_secs_f64() / single_i8.as_secs_f64();
    let batched_speedup = batched_f64.as_secs_f64() / batched_i8.as_secs_f64();

    // Both scorers agree on every label of the training slice (the seeded
    // eval-set gate lives in `holistix::scorer`'s tests; this guards the
    // benched pair so a speedup over wrong answers can never be recorded).
    let agree = f64_scorer
        .probabilities(&batch)
        .iter()
        .zip(i8_scorer.probabilities(&batch))
        .all(|(a, b)| {
            let argmax = |row: &[f64]| {
                row.iter()
                    .enumerate()
                    .max_by(|x, y| x.1.total_cmp(y.1))
                    .map(|(i, _)| i)
            };
            argmax(a) == argmax(&b)
        });
    assert!(agree, "i8 labels diverged from f64 on the bench corpus");

    println!("quantized_inference: MentalBERT (hidden 64 x 2 layers), {TRAIN_POSTS}-post corpus");
    println!(
        "single text : f64 {:>8.0} us  i8 {:>8.0} us  ({single_speedup:.2}x)",
        single_f64.as_secs_f64() * 1e6,
        single_i8.as_secs_f64() * 1e6,
    );
    println!(
        "batched x{BATCH}  : f64 {:>8.0} us/text  i8 {:>8.0} us/text  ({batched_speedup:.2}x)",
        batched_f64.as_secs_f64() * 1e6,
        batched_i8.as_secs_f64() * 1e6,
    );
    println!(
        "cost hints  : f64 {} us (declared)  i8 {} us (measured)",
        f64_scorer.cost_hint().as_micros(),
        i8_scorer.cost_hint().as_micros(),
    );

    let section = JsonValue::object(vec![
        ("model", JsonValue::string(ModelKind::MentalBert.name())),
        ("profile", JsonValue::string("hidden64x2")),
        ("train_posts", JsonValue::Number(TRAIN_POSTS as f64)),
        ("batch", JsonValue::Number(BATCH as f64)),
        (
            "single_f64_us",
            JsonValue::Number(single_f64.as_secs_f64() * 1e6),
        ),
        (
            "single_i8_us",
            JsonValue::Number(single_i8.as_secs_f64() * 1e6),
        ),
        (
            "batched_f64_us_per_text",
            JsonValue::Number(batched_f64.as_secs_f64() * 1e6),
        ),
        (
            "batched_i8_us_per_text",
            JsonValue::Number(batched_i8.as_secs_f64() * 1e6),
        ),
        ("single_speedup", JsonValue::Number(single_speedup)),
        ("batched_speedup", JsonValue::Number(batched_speedup)),
        (
            "cost_hint_f64_us",
            JsonValue::Number(f64_scorer.cost_hint().as_micros() as f64),
        ),
        (
            "cost_hint_i8_us",
            JsonValue::Number(i8_scorer.cost_hint().as_micros() as f64),
        ),
    ]);
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transformer.json");
    merge_section(out_path, "inference", section);
    println!("inference headline merged into {out_path}");

    let mut group = c.benchmark_group("quantized_inference");
    group.sample_size(10);
    group.bench_function("single_text_f64", |b| {
        b.iter(|| black_box(f64_scorer.probabilities_one(black_box(single))))
    });
    group.bench_function("single_text_i8", |b| {
        b.iter(|| black_box(i8_scorer.probabilities_one(black_box(single))))
    });
    group.bench_function(format!("batched{BATCH}_f64"), |b| {
        b.iter(|| black_box(f64_scorer.probabilities(black_box(&batch))))
    });
    group.bench_function(format!("batched{BATCH}_i8"), |b| {
        b.iter(|| black_box(i8_scorer.probabilities(black_box(&batch))))
    });
    group.finish();
}

criterion_group!(benches, bench_quantized_inference);
criterion_main!(benches);
