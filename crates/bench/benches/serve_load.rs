//! Open-loop load ramp: the max sustainable TPS of the serving stack under
//! its admission SLOs.
//!
//! The `serve_throughput` bench is closed-loop — clients wait for responses,
//! so a slowing server throttles its own offered load and the number
//! flatters it. This bench offers **fixed-TPS open-loop** traffic
//! ([`holistix_bench::loadgen`]) and ramps the rate step by step until the
//! server violates an SLO: p99 request latency (read from the server's *own*
//! `/metrics` log-bucketed histogram, snapshot-subtracted so each step
//! reports only its own requests) or shed rate (429s per scheduled request,
//! from the admission counters). The last step that met both SLOs is the
//! **max sustainable TPS**; it is merged into `BENCH_serve.json` under the
//! `"serve_load"` key (preserving whatever other benches wrote) so
//! successive runs can be compared.
//!
//! The server runs with deliberately finite admission bounds — more handler
//! threads than queue slots, so sustained over-capacity concurrency hits the
//! per-kind cap and shows up as counted 429s (the graceful failure mode this
//! layer exists to provide) rather than as unbounded queue growth. Each
//! request enqueues one text and blocks its handler, so queue depth tracks
//! in-flight concurrency: with a cap below the handler count, shed rate
//! rises exactly when offered load exceeds what the handlers can drain.

use holistix::corpus::JsonValue;
use holistix::prelude::*;
use holistix_bench::loadgen::{
    ramp_until_slo, run_open_loop, OpenLoopConfig, SloConfig, StepMeasure,
};
use holistix_serve::{
    serve, AdmissionConfig, BatchConfig, KeepAliveConfig, ModelRegistry, ServeConfig,
};
use std::time::Duration;

/// Offered load of the first ramp step.
const START_TPS: f64 = 100.0;
/// Per-step ramp factor.
const RAMP_FACTOR: f64 = 1.6;
/// Ramp ceiling (steps, not TPS): 12 steps spans 100 → ~28k TPS.
const MAX_STEPS: usize = 12;
/// Traffic duration per step — long enough that a one-off scheduler stall
/// cannot push 1% of the step's requests over the latency SLO by itself.
const STEP_DURATION: Duration = Duration::from_secs(2);
/// Connections sharing each step's schedule.
const CONNECTIONS: usize = 4;
/// Handler threads; deliberately more than the queue cap (below) so
/// over-capacity concurrency sheds instead of queueing invisibly.
const HANDLERS: usize = 16;
/// Per-kind queue cap: the shed gate. Each in-flight request holds one slot.
const QUEUE_CAP: usize = 8;
/// SLO: p99 request latency ceiling (server-side, µs).
const SLO_P99_US: u64 = 50_000;
/// SLO: highest acceptable shed rate.
const SLO_SHED_RATE: f64 = 0.05;

fn main() {
    let corpus = HolistixCorpus::generate_small(300, 42);
    let texts = corpus.texts();
    let labels = corpus.label_indices();
    let registry = ModelRegistry::fit(
        &[BaselineKind::LogisticRegression],
        SpeedProfile::Tiny,
        &texts,
        &labels,
        42,
    );
    let server = serve(
        "127.0.0.1:0",
        registry,
        ServeConfig {
            handlers: HANDLERS,
            batch: BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(1),
            },
            // Queue cap below the handler count: each request holds a slot
            // while a handler scores it, so once offered load exceeds what
            // the handlers drain, depth pins at the cap and the overflow is
            // counted as 429s — the shed-rate SLO has something to bind on.
            admission: AdmissionConfig {
                max_queue_depth: QUEUE_CAP,
                explain_shed_depth: QUEUE_CAP * 3 / 4,
                ..AdmissionConfig::default()
            },
            // The ramp's top steps push tens of thousands of requests down
            // four connections; the default per-connection request cap would
            // cut them off mid-step and mask overload as silence.
            keep_alive: KeepAliveConfig {
                max_requests: 10_000_000,
                ..KeepAliveConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    let metrics = server.metrics();

    let slo = SloConfig {
        max_p99_us: SLO_P99_US,
        max_shed_rate: SLO_SHED_RATE,
    };
    println!(
        "serve_load: open-loop ramp from {START_TPS} TPS x{RAMP_FACTOR} over {CONNECTIONS} \
         connections; SLOs p99 <= {SLO_P99_US} us, shed <= {:.0}%",
        SLO_SHED_RATE * 100.0
    );

    // Discarded warmup: first contact pays for lazy allocation, branch
    // predictor and page-cache warmup on both sides; keep it out of step 1.
    run_open_loop(
        addr,
        &OpenLoopConfig {
            tps: START_TPS,
            duration: Duration::from_millis(500),
            connections: CONNECTIONS,
            method: "POST".into(),
            path: "/predict".into(),
            body: r#"{"text":"i feel alone and exhausted lately"}"#.into(),
            drain: Duration::from_secs(2),
        },
    );

    let mut rows: Vec<JsonValue> = Vec::new();
    let report = ramp_until_slo(START_TPS, RAMP_FACTOR, MAX_STEPS, slo, |tps| {
        // Snapshot the server's own histogram and shed counters around the
        // step so it reports only its own traffic.
        let latency_before = metrics.latency_snapshot();
        let shed_before = metrics.admission().shed_total();
        let step = run_open_loop(
            addr,
            &OpenLoopConfig {
                tps,
                duration: STEP_DURATION,
                connections: CONNECTIONS,
                method: "POST".into(),
                path: "/predict".into(),
                body: r#"{"text":"i feel alone and exhausted lately"}"#.into(),
                drain: Duration::from_secs(3),
            },
        );
        let latency = metrics.latency_snapshot().minus(&latency_before);
        let shed = metrics.admission().shed_total() - shed_before;
        let p99_us = latency.percentile(0.99).unwrap_or(0);
        let shed_rate = if step.scheduled == 0 {
            0.0
        } else {
            shed as f64 / step.scheduled as f64
        };
        println!(
            "tps {tps:>8.0}: scheduled {:>5}  answered {:>5}  ok {:>5}  shed {shed:>5}  \
             p99 {p99_us:>7} us  drift {:?}",
            step.scheduled, step.responses, step.ok, step.max_send_drift
        );
        rows.push(JsonValue::object(vec![
            ("tps", JsonValue::Number(tps)),
            ("scheduled", JsonValue::Number(step.scheduled as f64)),
            ("responses", JsonValue::Number(step.responses as f64)),
            ("ok", JsonValue::Number(step.ok as f64)),
            ("shed", JsonValue::Number(shed as f64)),
            ("p99_us", JsonValue::Number(p99_us as f64)),
            ("shed_rate", JsonValue::Number(shed_rate)),
            (
                "max_send_drift_us",
                JsonValue::Number(step.max_send_drift.as_micros() as f64),
            ),
        ]));
        StepMeasure { p99_us, shed_rate }
    });
    server.shutdown();

    match report.max_sustainable_tps {
        Some(tps) => println!("max sustainable TPS under SLOs: {tps:.0}"),
        None => println!("no step met the SLOs — even {START_TPS} TPS overloads this machine"),
    }

    // Mark which rows sustained (the ramp report knows; the rows were built
    // inside the closure before the verdict existed).
    for (row, step) in rows.iter_mut().zip(&report.steps) {
        if let JsonValue::Object(fields) = row {
            fields.push(("sustained".to_string(), JsonValue::Bool(step.sustained)));
        }
    }

    let entry = JsonValue::object(vec![
        (
            "max_sustainable_tps",
            report
                .max_sustainable_tps
                .map_or(JsonValue::Null, JsonValue::Number),
        ),
        (
            "slo",
            JsonValue::object(vec![
                ("max_p99_us", JsonValue::Number(SLO_P99_US as f64)),
                ("max_shed_rate", JsonValue::Number(SLO_SHED_RATE)),
            ]),
        ),
        ("connections", JsonValue::Number(CONNECTIONS as f64)),
        (
            "step_duration_s",
            JsonValue::Number(STEP_DURATION.as_secs_f64()),
        ),
        ("steps", JsonValue::Array(rows)),
    ]);

    // Merge (not overwrite): other serving benches keep their sections.
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let mut fields: Vec<(String, JsonValue)> = match std::fs::read_to_string(out_path)
        .ok()
        .and_then(|s| JsonValue::parse(&s).ok())
    {
        Some(JsonValue::Object(existing)) => existing
            .into_iter()
            .filter(|(key, _)| key != "serve_load")
            .collect(),
        _ => Vec::new(),
    };
    fields.push(("serve_load".to_string(), entry));
    std::fs::write(out_path, JsonValue::Object(fields).to_string())
        .expect("write BENCH_serve.json");
    println!("serve_load entry written to {out_path}");
}
