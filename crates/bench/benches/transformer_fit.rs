//! Fine-tuning throughput: dense vs sparse embedding-gradient accumulation.
//!
//! Fine-tunes the same small MentalBERT analogue twice on the same seeded
//! corpus — once with the dense embedding-gradient scatter (a full
//! `vocab × hidden` gradient table touched per step) and once with the sparse
//! one-row-per-token CSR fold (`Graph::gather_param`) — and reports fit
//! throughput in tokens/s for both. The two runs are bit-identical by
//! construction (asserted on the per-epoch losses, and property-tested across
//! random corpora in `holistix-transformer`), so the ratio is a pure
//! bookkeeping speedup.
//!
//! "Tokens" is `posts × max_len × epochs`: every padded position the encoder
//! processes per pass. Both arms process exactly the same count, so the
//! headline ratio is exact even though padding inflates the absolute numbers.
//!
//! Results are merged into the `fit` section of `BENCH_transformer.json` at
//! the repository root (`quantized_inference` owns the `inference` section).

use criterion::{criterion_group, criterion_main, Criterion};
use holistix::corpus::JsonValue;
use holistix::prelude::*;
use holistix::transformer::{FineTuneConfig, ModelConfig, ModelKind, Trainer};
use holistix_bench::report::merge_section;
use std::time::{Duration, Instant};

/// Training corpus size.
const TRAIN_POSTS: usize = 60;
/// Fine-tuning epochs per measured fit.
const EPOCHS: usize = 4;

/// A small but real configuration: big enough that the embedding tables
/// dominate the parameter count (as in the paper-scale models), small enough
/// that a two-way fit finishes in a benchmark run.
fn recipe(seed: u64) -> (ModelConfig, FineTuneConfig) {
    let mut model = ModelConfig::for_kind(ModelKind::MentalBert, 6);
    model.hidden_dim = 32;
    model.n_heads = 2;
    model.ff_dim = 64;
    model.max_len = 32;
    model.n_layers = 2;
    let finetune = FineTuneConfig {
        epochs: EPOCHS,
        subword_vocab_size: 800,
        learning_rate: 1e-3,
        pretrain: None,
        seed,
        ..FineTuneConfig::default()
    };
    (model, finetune)
}

/// One full fine-tune; returns wall-clock and the per-epoch losses.
fn fit_once(texts: &[&str], labels: &[usize], sparse: bool) -> (Duration, Vec<f64>) {
    let (model, finetune) = recipe(42);
    let mut trainer = Trainer::new(ModelKind::MentalBert, model, finetune);
    trainer.set_sparse_embedding_grad(sparse);
    let started = Instant::now();
    trainer.fit(texts, labels);
    let elapsed = started.elapsed();
    (elapsed, trainer.summary().unwrap().epoch_losses.clone())
}

fn bench_transformer_fit(c: &mut Criterion) {
    let corpus = HolistixCorpus::generate_small(TRAIN_POSTS, 42);
    let texts = corpus.texts();
    let labels = corpus.label_indices();
    let max_len = recipe(42).0.max_len;
    let tokens = (texts.len() * max_len * EPOCHS) as f64;

    let (dense_time, dense_losses) = fit_once(&texts, &labels, false);
    let (sparse_time, sparse_losses) = fit_once(&texts, &labels, true);
    assert_eq!(
        dense_losses, sparse_losses,
        "sparse embedding gradients changed the training trajectory"
    );

    let dense_tps = tokens / dense_time.as_secs_f64();
    let sparse_tps = tokens / sparse_time.as_secs_f64();
    let speedup = dense_time.as_secs_f64() / sparse_time.as_secs_f64();
    println!(
        "transformer_fit: {} posts x {EPOCHS} epochs, max_len {max_len} (= {tokens:.0} tokens)",
        texts.len()
    );
    println!("dense  embedding grads: {dense_tps:>8.0} tokens/s  ({dense_time:.2?})");
    println!("sparse embedding grads: {sparse_tps:>8.0} tokens/s  ({sparse_time:.2?})");
    println!("speedup: {speedup:.2}x (bit-identical trajectories)");

    let section = JsonValue::object(vec![
        ("model", JsonValue::string(ModelKind::MentalBert.name())),
        ("train_posts", JsonValue::Number(texts.len() as f64)),
        ("epochs", JsonValue::Number(EPOCHS as f64)),
        ("max_len", JsonValue::Number(max_len as f64)),
        ("tokens", JsonValue::Number(tokens)),
        ("dense_tokens_per_s", JsonValue::Number(dense_tps)),
        ("sparse_tokens_per_s", JsonValue::Number(sparse_tps)),
        ("speedup", JsonValue::Number(speedup)),
    ]);
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transformer.json");
    merge_section(out_path, "fit", section);
    println!("fit headline merged into {out_path}");

    let mut group = c.benchmark_group("transformer_fit");
    group.sample_size(10);
    group.bench_function("dense_embedding_grads", |b| {
        b.iter(|| fit_once(&texts, &labels, false))
    });
    group.bench_function("sparse_embedding_grads", |b| {
        b.iter(|| fit_once(&texts, &labels, true))
    });
    group.finish();
}

criterion_group!(benches, bench_transformer_fit);
criterion_main!(benches);
