//! Read-merge-write support for the committed `BENCH_*.json` trajectory files.
//!
//! Several benches share one report file (`BENCH_transformer.json` holds both
//! the fit-throughput and the quantized-inference headlines), and each bench
//! must be runnable alone without clobbering the others' sections. So a bench
//! never writes the whole file: it merges its own top-level key into whatever
//! is already on disk, preserving every other key and their insertion order.

use holistix::corpus::JsonValue;
use std::path::Path;

/// Replace (or append) the top-level `key` of the JSON report at `path` with
/// `section` and write the result back. A missing or unparsable file is
/// replaced by a fresh single-key object — an earlier run interrupted
/// mid-write must not wedge every later bench.
pub fn merge_section(path: impl AsRef<Path>, key: &str, section: JsonValue) {
    let path = path.as_ref();
    let mut fields: Vec<(String, JsonValue)> = match std::fs::read_to_string(path) {
        Ok(existing) => match JsonValue::parse(&existing) {
            Ok(JsonValue::Object(fields)) => fields,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    match fields.iter_mut().find(|(k, _)| k == key) {
        Some((_, value)) => *value = section,
        None => fields.push((key.to_string(), section)),
    }
    let report = JsonValue::Object(fields);
    std::fs::write(path, report.to_string())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "holistix_report_{name}_{}.json",
            std::process::id()
        ))
    }

    #[test]
    fn merge_preserves_other_sections() {
        let path = temp_path("merge");
        let _ = std::fs::remove_file(&path);
        merge_section(
            &path,
            "fit",
            JsonValue::object(vec![("speedup", JsonValue::Number(2.0))]),
        );
        merge_section(
            &path,
            "inference",
            JsonValue::object(vec![("speedup", JsonValue::Number(3.0))]),
        );
        // Overwriting one section leaves the other untouched.
        merge_section(
            &path,
            "fit",
            JsonValue::object(vec![("speedup", JsonValue::Number(2.5))]),
        );
        let report = JsonValue::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let fit = report.get("fit").unwrap().get("speedup").unwrap().as_f64();
        let inference = report
            .get("inference")
            .unwrap()
            .get("speedup")
            .unwrap()
            .as_f64();
        assert_eq!(fit, Some(2.5));
        assert_eq!(inference, Some(3.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_recovers_from_corrupt_file() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{not json").unwrap();
        merge_section(&path, "fit", JsonValue::object(vec![]));
        let report = JsonValue::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(report.get("fit").is_some());
        let _ = std::fs::remove_file(&path);
    }
}
