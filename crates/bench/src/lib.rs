//! Benchmark harness support library — see `benches/` for the per-table Criterion benches.

pub mod loadgen;
pub mod report;
