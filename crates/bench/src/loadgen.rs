//! Open-loop fixed-TPS load generation and the SLO ramp controller.
//!
//! The serving benches so far were **closed-loop**: each client waits for a
//! response before sending its next request, so a slowing server throttles
//! its own offered load and the measured throughput flatters it (coordinated
//! omission). An **open-loop** client sends on a fixed schedule no matter
//! what the server does: every request has an absolute scheduled instant
//! (`start + i/tps`), and at that instant the request bytes are appended to a
//! client-side output buffer on a nonblocking socket. A stalled server backs
//! traffic up in that buffer and the kernel — it cannot slow the schedule,
//! which is exactly what the stalled-server unit test pins.
//!
//! On top of the clients sits [`ramp_until_slo`]: raise TPS step by step,
//! measure each step (the `serve_load` bench reads the server's *own*
//! `/metrics` latency histogram, snapshot-subtracted per step), and stop at
//! the first step that violates a p99-latency or shed-rate SLO. The last
//! passing step is the **max sustainable TPS** — the number the bench
//! appends to `BENCH_serve.json`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Absolute send offsets from the run's start: request `i` of a `tps`-rate
/// schedule is due at `i / tps` seconds. The schedule is what makes the load
/// open-loop — due times are fixed up front, never derived from responses.
#[derive(Debug, Clone)]
pub struct Schedule {
    offsets: Vec<Duration>,
}

impl Schedule {
    /// A fixed-TPS schedule: `floor(tps · duration)` sends, evenly spaced
    /// `1/tps` apart, starting at offset zero.
    pub fn fixed_tps(tps: f64, duration: Duration) -> Self {
        assert!(tps > 0.0, "tps must be positive");
        let n = (tps * duration.as_secs_f64()).floor() as usize;
        Self {
            offsets: (0..n)
                .map(|i| Duration::from_secs_f64(i as f64 / tps))
                .collect(),
        }
    }

    /// The send offsets, ascending.
    pub fn offsets(&self) -> &[Duration] {
        &self.offsets
    }

    /// Number of scheduled sends.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Round-robin split across `n` clients: client `i` takes offsets
    /// `i, i+n, i+2n, …`, so the aggregate schedule (and its rate) is
    /// preserved while no two clients share a connection.
    fn split(&self, n: usize) -> Vec<Schedule> {
        (0..n.max(1))
            .map(|i| Schedule {
                offsets: self
                    .offsets
                    .iter()
                    .skip(i)
                    .step_by(n.max(1))
                    .copied()
                    .collect(),
            })
            .collect()
    }
}

/// One open-loop run's parameters.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Offered load in requests per second, across all connections.
    pub tps: f64,
    /// How long to offer it.
    pub duration: Duration,
    /// Concurrent connections sharing the schedule round-robin.
    pub connections: usize,
    /// Request method (requests are preformatted once, then replayed).
    pub method: String,
    /// Request path.
    pub path: String,
    /// Request body.
    pub body: String,
    /// After the last scheduled send, how long to keep draining responses
    /// before giving up on the stragglers.
    pub drain: Duration,
}

/// What one open-loop run observed, summed across its connections.
#[derive(Debug, Clone, Default)]
pub struct OpenLoopReport {
    /// Sends the schedule called for.
    pub scheduled: usize,
    /// Requests actually placed on the wire-or-buffer at their tick. Equal
    /// to `scheduled` unless a connection died mid-run.
    pub sent: usize,
    /// Complete responses parsed back, any status.
    pub responses: usize,
    /// 2xx responses.
    pub ok: usize,
    /// 429 responses (the server shedding load).
    pub shed: usize,
    /// 429 responses that carried a `Retry-After` header.
    pub shed_with_retry_after: usize,
    /// Non-2xx/non-429 responses plus connection-level failures.
    pub errors: usize,
    /// Worst lateness of any send against its scheduled instant. Open-loop
    /// sends never block, so this stays small no matter what the server
    /// does — the stalled-server test pins it.
    pub max_send_drift: Duration,
}

impl OpenLoopReport {
    /// Fold another connection's report into this one.
    fn merge(&mut self, other: &OpenLoopReport) {
        self.scheduled += other.scheduled;
        self.sent += other.sent;
        self.responses += other.responses;
        self.ok += other.ok;
        self.shed += other.shed;
        self.shed_with_retry_after += other.shed_with_retry_after;
        self.errors += other.errors;
        self.max_send_drift = self.max_send_drift.max(other.max_send_drift);
    }

    /// Fraction of scheduled requests the server shed (429), in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.scheduled == 0 {
            0.0
        } else {
            self.shed as f64 / self.scheduled as f64
        }
    }
}

/// Incremental HTTP/1.1 response scanner: counts complete responses in a
/// byte stream arriving in arbitrary fragments. Framing only — status line
/// plus `Content-Length` — because the load generator needs counts and
/// status classes, not bodies.
#[derive(Debug, Default)]
pub struct ResponseScanner {
    buffer: Vec<u8>,
    /// Body bytes still owed to the current response.
    body_remaining: usize,
    /// Completed responses: total, 2xx, 429, 429-with-Retry-After, other.
    pub responses: usize,
    pub ok: usize,
    pub shed: usize,
    pub shed_with_retry_after: usize,
    pub other: usize,
}

impl ResponseScanner {
    /// Feed the next fragment; complete responses update the counters.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
        loop {
            // Swallow body bytes owed first.
            if self.body_remaining > 0 {
                let take = self.body_remaining.min(self.buffer.len());
                self.buffer.drain(..take);
                self.body_remaining -= take;
                if self.body_remaining > 0 {
                    return; // need more bytes
                }
            }
            // Then look for a complete header block.
            let Some(end) = find_header_end(&self.buffer) else {
                return;
            };
            let head = String::from_utf8_lossy(&self.buffer[..end]).into_owned();
            self.buffer.drain(..end + 4);
            let status = head
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse::<u16>().ok())
                .unwrap_or(0);
            let mut content_length = 0usize;
            let mut retry_after = false;
            for line in head.lines().skip(1) {
                if let Some((name, value)) = line.split_once(':') {
                    if name.eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse().unwrap_or(0);
                    } else if name.eq_ignore_ascii_case("retry-after") {
                        retry_after = true;
                    }
                }
            }
            self.responses += 1;
            match status {
                200..=299 => self.ok += 1,
                429 => {
                    self.shed += 1;
                    if retry_after {
                        self.shed_with_retry_after += 1;
                    }
                }
                _ => self.other += 1,
            }
            self.body_remaining = content_length;
        }
    }
}

fn find_header_end(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One connection's open-loop run: nonblocking socket, client-side output
/// buffer, absolute schedule. Appending to the buffer is the "send" — it
/// never blocks, so the schedule holds regardless of the server.
fn run_connection(
    addr: SocketAddr,
    schedule: &Schedule,
    request: &[u8],
    drain: Duration,
) -> OpenLoopReport {
    let mut report = OpenLoopReport {
        scheduled: schedule.len(),
        ..OpenLoopReport::default()
    };
    let stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(_) => {
            report.errors += 1;
            return report;
        }
    };
    stream.set_nonblocking(true).expect("nonblocking client");
    stream.set_nodelay(true).ok();

    let mut stream = stream;
    let mut outbuf: Vec<u8> = Vec::new();
    let mut out_pos = 0usize;
    let mut scanner = ResponseScanner::default();
    let mut dead = false;
    let start = Instant::now();

    for &offset in schedule.offsets() {
        let due = start + offset;
        // Until the tick: move bytes, never past the tick by more than the
        // 200 µs nap below.
        loop {
            let now = Instant::now();
            if now >= due {
                break;
            }
            if !dead {
                dead = pump(&mut stream, &mut outbuf, &mut out_pos, &mut scanner);
            }
            std::thread::sleep((due - now).min(Duration::from_micros(200)));
        }
        let drift = Instant::now().saturating_duration_since(due);
        report.max_send_drift = report.max_send_drift.max(drift);
        outbuf.extend_from_slice(request);
        report.sent += 1;
        if !dead {
            dead = pump(&mut stream, &mut outbuf, &mut out_pos, &mut scanner);
        }
    }

    // Drain window: collect straggler responses, bounded.
    let deadline = Instant::now() + drain;
    while !dead && scanner.responses < report.sent && Instant::now() < deadline {
        dead = pump(&mut stream, &mut outbuf, &mut out_pos, &mut scanner);
        std::thread::sleep(Duration::from_micros(500));
    }

    if dead {
        report.errors += 1;
    }
    report.responses = scanner.responses;
    report.ok = scanner.ok;
    report.shed = scanner.shed;
    report.shed_with_retry_after = scanner.shed_with_retry_after;
    report.errors += scanner.other;
    report
}

/// Flush what the socket will take, read what it has. Returns `true` when
/// the connection is unusable (reset, closed). Never blocks.
fn pump(
    stream: &mut TcpStream,
    outbuf: &mut Vec<u8>,
    out_pos: &mut usize,
    scanner: &mut ResponseScanner,
) -> bool {
    while *out_pos < outbuf.len() {
        match stream.write(&outbuf[*out_pos..]) {
            Ok(0) => return true,
            Ok(n) => *out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    if *out_pos > 0 && *out_pos == outbuf.len() {
        outbuf.clear();
        *out_pos = 0;
    }
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return true,
            Ok(n) => scanner.feed(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
}

/// Run one open-loop step: `config.connections` clients share the fixed-TPS
/// schedule round-robin, each on its own thread and connection, and the
/// per-connection reports are merged.
pub fn run_open_loop(addr: SocketAddr, config: &OpenLoopConfig) -> OpenLoopReport {
    let request = format!(
        "{} {} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
        config.method,
        config.path,
        config.body.len(),
        config.body
    )
    .into_bytes();
    let schedules = Schedule::fixed_tps(config.tps, config.duration).split(config.connections);
    let mut merged = OpenLoopReport::default();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = schedules
            .iter()
            .map(|schedule| {
                let request = &request;
                scope.spawn(move |_| run_connection(addr, schedule, request, config.drain))
            })
            .collect();
        for handle in handles {
            merged.merge(&handle.join().expect("loadgen client panicked"));
        }
    })
    .expect("loadgen scope failed");
    merged
}

/// One ramp step's measurement, as the SLO gate sees it.
#[derive(Debug, Clone, Copy)]
pub struct StepMeasure {
    /// Server-side p99 request latency over this step only, microseconds.
    pub p99_us: u64,
    /// Fraction of this step's requests shed (429), in `[0, 1]`.
    pub shed_rate: f64,
}

/// The SLOs a step must meet to count as sustained.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Highest acceptable p99 request latency, microseconds.
    pub max_p99_us: u64,
    /// Highest acceptable shed rate, `[0, 1]`.
    pub max_shed_rate: f64,
}

/// One row of the ramp's trajectory.
#[derive(Debug, Clone, Copy)]
pub struct RampStep {
    /// Offered load this step.
    pub tps: f64,
    /// What the step measured.
    pub measure: StepMeasure,
    /// Whether the step met both SLOs.
    pub sustained: bool,
}

/// The ramp's outcome: every step walked, and the last sustained TPS (None
/// when even the first step violated an SLO).
#[derive(Debug, Clone)]
pub struct RampReport {
    /// Every step, in ramp order.
    pub steps: Vec<RampStep>,
    /// The highest TPS that met both SLOs.
    pub max_sustainable_tps: Option<f64>,
}

/// Raise offered load from `start_tps` by `factor` per step (at most
/// `max_steps`), measuring each step with `measure`, until a step violates
/// an SLO — then stop. The caller's closure runs the actual traffic and
/// reads whatever latency source it trusts (the `serve_load` bench uses the
/// server's own histograms).
pub fn ramp_until_slo(
    start_tps: f64,
    factor: f64,
    max_steps: usize,
    slo: SloConfig,
    mut measure: impl FnMut(f64) -> StepMeasure,
) -> RampReport {
    assert!(start_tps > 0.0 && factor > 1.0);
    let mut steps = Vec::new();
    let mut max_sustainable_tps = None;
    let mut tps = start_tps;
    for _ in 0..max_steps {
        let m = measure(tps);
        let sustained = m.p99_us <= slo.max_p99_us && m.shed_rate <= slo.max_shed_rate;
        steps.push(RampStep {
            tps,
            measure: m,
            sustained,
        });
        if !sustained {
            break;
        }
        max_sustainable_tps = Some(tps);
        tps *= factor;
    }
    RampReport {
        steps,
        max_sustainable_tps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn fixed_tps_schedule_is_evenly_spaced() {
        let schedule = Schedule::fixed_tps(100.0, Duration::from_secs(1));
        assert_eq!(schedule.len(), 100);
        assert_eq!(schedule.offsets()[0], Duration::ZERO);
        for pair in schedule.offsets().windows(2) {
            let gap = pair[1] - pair[0];
            assert!(
                (gap.as_secs_f64() - 0.01).abs() < 1e-9,
                "uneven gap {gap:?}"
            );
        }
        // The round-robin split preserves the aggregate count.
        let parts = schedule.split(3);
        assert_eq!(parts.iter().map(Schedule::len).sum::<usize>(), 100);
    }

    #[test]
    fn scanner_counts_responses_across_arbitrary_fragments() {
        let stream = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello\
                       HTTP/1.1 429 Too Many Requests\r\nRetry-After: 2\r\nContent-Length: 2\r\n\r\nno\
                       HTTP/1.1 500 Internal Server Error\r\nContent-Length: 0\r\n\r\n";
        // Feed in every chunk size from byte-at-a-time up; counts must not
        // depend on fragmentation.
        for chunk_size in 1..=stream.len() {
            let mut scanner = ResponseScanner::default();
            for chunk in stream.chunks(chunk_size) {
                scanner.feed(chunk);
            }
            assert_eq!(scanner.responses, 3, "chunk size {chunk_size}");
            assert_eq!(scanner.ok, 1);
            assert_eq!(scanner.shed, 1);
            assert_eq!(scanner.shed_with_retry_after, 1);
            assert_eq!(scanner.other, 1);
        }
    }

    /// The open-loop bar (and the difference from every closed-loop client
    /// in this repo): a server that never reads cannot slow the send
    /// schedule. The listener here accepts nothing — the client's connect
    /// lands in the kernel backlog and its requests pile up client-side —
    /// yet every send happens at its scheduled tick within a drift bound,
    /// and zero responses arrive.
    #[test]
    fn open_loop_schedule_holds_against_a_stalled_server() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        // Never accept; just keep the listener alive so the backlog holds.
        let config = OpenLoopConfig {
            tps: 200.0,
            duration: Duration::from_millis(500),
            connections: 1,
            method: "POST".into(),
            path: "/predict".into(),
            body: r#"{"text":"stalled"}"#.into(),
            drain: Duration::from_millis(50),
        };
        let report = run_open_loop(addr, &config);
        assert_eq!(report.scheduled, 100);
        assert_eq!(
            report.sent, report.scheduled,
            "a stalled server suppressed sends — the loop is not open"
        );
        assert_eq!(report.responses, 0);
        assert_eq!(report.ok, 0);
        // Generous CI bound: sends are buffer appends plus a sub-millisecond
        // nap, so even a loaded machine stays far under this.
        assert!(
            report.max_send_drift < Duration::from_millis(250),
            "send drift {:?} — the schedule slipped",
            report.max_send_drift
        );
        drop(listener);
    }

    #[test]
    fn ramp_stops_at_the_first_slo_violation() {
        let slo = SloConfig {
            max_p99_us: 1_000,
            max_shed_rate: 0.05,
        };
        // Latency scales with TPS; the third step (400 TPS → 1600 µs)
        // crosses the SLO.
        let report = ramp_until_slo(100.0, 2.0, 10, slo, |tps| StepMeasure {
            p99_us: (tps * 4.0) as u64,
            shed_rate: 0.0,
        });
        assert_eq!(report.steps.len(), 3);
        assert!(report.steps[0].sustained && report.steps[1].sustained);
        assert!(!report.steps[2].sustained);
        assert_eq!(report.max_sustainable_tps, Some(200.0));

        // An immediately violated SLO yields no sustainable TPS.
        let report = ramp_until_slo(100.0, 2.0, 10, slo, |_| StepMeasure {
            p99_us: 0,
            shed_rate: 1.0,
        });
        assert_eq!(report.max_sustainable_tps, None);
        assert_eq!(report.steps.len(), 1);
    }
}
