//! Property-based tests for the explainability metrics: ROUGE, BLEU and the span
//! overlap scores are bounded, symmetric where they should be, and maximal on
//! identical inputs.

use holistix_explain::span_eval::ExplanationMetrics;
use holistix_explain::{bleu, rouge_1, rouge_l};
use proptest::prelude::*;

fn token_vec() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-h]{1,6}", 0..15)
}

proptest! {
    /// ROUGE and BLEU are always in [0, 1].
    #[test]
    fn scores_are_bounded(candidate in token_vec(), reference in token_vec()) {
        let r1 = rouge_1(&candidate, &reference);
        let rl = rouge_l(&candidate, &reference);
        let b = bleu(&candidate, &reference);
        for value in [r1.precision, r1.recall, r1.f1, rl.precision, rl.recall, rl.f1, b] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&value), "out of range: {value}");
        }
        // ROUGE-L can never exceed ROUGE-1 recall (an LCS is a subset of the bag overlap).
        prop_assert!(rl.recall <= r1.recall + 1e-9);
    }

    /// Identical non-empty sequences score 1 on every metric.
    #[test]
    fn identical_sequences_are_maximal(tokens in proptest::collection::vec("[a-h]{1,6}", 1..12)) {
        prop_assert!((rouge_1(&tokens, &tokens).f1 - 1.0).abs() < 1e-9);
        prop_assert!((rouge_l(&tokens, &tokens).f1 - 1.0).abs() < 1e-9);
        prop_assert!((bleu(&tokens, &tokens) - 1.0).abs() < 1e-9);
    }

    /// ROUGE-1 F1 is symmetric in its arguments (precision and recall swap).
    #[test]
    fn rouge1_f1_is_symmetric(a in token_vec(), b in token_vec()) {
        let ab = rouge_1(&a, &b);
        let ba = rouge_1(&b, &a);
        prop_assert!((ab.f1 - ba.f1).abs() < 1e-9);
        prop_assert!((ab.precision - ba.recall).abs() < 1e-9);
    }

    /// Explanation metrics are bounded and zero when the prediction is disjoint from
    /// the gold span vocabulary.
    #[test]
    fn explanation_metrics_bounds(keywords in proptest::collection::vec("[a-h]{1,6}", 0..8)) {
        let gold = "anxiety keeps me awake and my sleep is ruined";
        let metrics = ExplanationMetrics::score(&keywords, gold);
        for value in [metrics.precision, metrics.recall, metrics.f1, metrics.rouge, metrics.bleu] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&value));
        }
        // Keywords drawn from a disjoint alphabet cannot overlap the gold span words.
        prop_assert!(metrics.precision == 0.0 || keywords.iter().any(|k| gold.contains(k.as_str())));
    }

    /// Adding the gold span's own words to a prediction never lowers recall.
    #[test]
    fn adding_gold_words_never_hurts_recall(extra in token_vec()) {
        let gold = "my job drains me and the money worries never stop";
        let gold_words = holistix_text::content_words(gold);
        let baseline = ExplanationMetrics::score(&extra, gold);
        let mut augmented = extra.clone();
        augmented.extend(gold_words);
        let improved = ExplanationMetrics::score(&augmented, gold);
        prop_assert!(improved.recall + 1e-9 >= baseline.recall);
    }
}
