//! Explanation-vs-gold-span evaluation (Table V).
//!
//! The paper "calculate[s] the similarity score between the LIME-generated predictions
//! and the annotated explanation spans using keywords" and reports F1, precision,
//! recall, ROUGE and BLEU. Here one evaluation item is a pair of
//! `(predicted keywords, gold explanation span text)`; keywords are compared against
//! the span's content words (stop-words removed, case-folded), ROUGE/BLEU are computed
//! over the same token lists, and the report averages every metric over items.

use crate::bleu::bleu;
use crate::rouge::rouge_1;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Metrics for a single explanation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExplanationMetrics {
    /// Token-set precision of the predicted keywords against the gold span words.
    pub precision: f64,
    /// Token-set recall.
    pub recall: f64,
    /// Token-set F1.
    pub f1: f64,
    /// ROUGE-1 F-measure.
    pub rouge: f64,
    /// BLEU score.
    pub bleu: f64,
}

impl ExplanationMetrics {
    /// Score one explanation: `predicted` keywords against the raw `gold_span` text.
    pub fn score<S: AsRef<str>>(predicted: &[S], gold_span: &str) -> Self {
        let predicted: Vec<String> = predicted
            .iter()
            .map(|t| t.as_ref().to_lowercase())
            .filter(|t| !t.is_empty())
            .collect();
        let gold: Vec<String> = holistix_text::content_words(gold_span);
        if predicted.is_empty() || gold.is_empty() {
            return Self {
                precision: 0.0,
                recall: 0.0,
                f1: 0.0,
                rouge: 0.0,
                bleu: 0.0,
            };
        }
        let predicted_set: HashSet<&String> = predicted.iter().collect();
        let gold_set: HashSet<&String> = gold.iter().collect();
        let overlap = predicted_set.intersection(&gold_set).count() as f64;
        let precision = overlap / predicted_set.len() as f64;
        let recall = overlap / gold_set.len() as f64;
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
            rouge: rouge_1(&predicted, &gold).f1,
            bleu: bleu(&predicted, &gold),
        }
    }
}

/// The aggregate Table V row for one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplanationReport {
    /// Model display name.
    pub model_name: String,
    /// Number of explanations evaluated.
    pub n_items: usize,
    /// Mean token-set F1.
    pub f1: f64,
    /// Mean token-set precision.
    pub precision: f64,
    /// Mean token-set recall.
    pub recall: f64,
    /// Mean ROUGE-1 F-measure.
    pub rouge: f64,
    /// Mean BLEU.
    pub bleu: f64,
}

impl ExplanationReport {
    /// Render the report as a Table V style row.
    pub fn to_table_row(&self) -> String {
        format!(
            "{:<12} {:>8.4} {:>10.4} {:>8.4} {:>8.4} {:>8.4}",
            self.model_name, self.f1, self.precision, self.recall, self.rouge, self.bleu
        )
    }
}

/// Average explanation metrics over `(predicted keywords, gold span)` pairs.
pub fn evaluate_explanations<S: AsRef<str>>(
    model_name: &str,
    items: &[(Vec<S>, String)],
) -> ExplanationReport {
    let scores: Vec<ExplanationMetrics> = items
        .iter()
        .map(|(predicted, gold)| ExplanationMetrics::score(predicted, gold))
        .collect();
    let n = scores.len();
    let mean = |f: fn(&ExplanationMetrics) -> f64| {
        if n == 0 {
            0.0
        } else {
            scores.iter().map(f).sum::<f64>() / n as f64
        }
    };
    ExplanationReport {
        model_name: model_name.to_string(),
        n_items: n,
        f1: mean(|m| m.f1),
        precision: mean(|m| m.precision),
        recall: mean(|m| m.recall),
        rouge: mean(|m| m.rouge),
        bleu: mean(|m| m.bleu),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_keywords_score_high() {
        let gold = "I feel exhausted and cannot sleep";
        let m = ExplanationMetrics::score(&["exhausted", "sleep", "feel"], gold);
        assert!((m.recall - 1.0).abs() < 1e-12, "recall {}", m.recall);
        assert!((m.precision - 1.0).abs() < 1e-12);
        assert!(m.rouge > 0.5);
    }

    #[test]
    fn irrelevant_keywords_score_zero_overlap() {
        let m = ExplanationMetrics::score(&["job", "money"], "I feel exhausted and cannot sleep");
        assert_eq!(m.f1, 0.0);
        assert_eq!(m.precision, 0.0);
    }

    #[test]
    fn partial_overlap_hand_computed() {
        // Gold content words: {feel, exhausted, sleep}; predicted {exhausted, job}.
        // precision 1/2, recall 1/3, f1 = 0.4
        let m =
            ExplanationMetrics::score(&["exhausted", "job"], "I feel exhausted and cannot sleep");
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.f1 - 0.4).abs() < 1e-12);
        assert!(m.bleu >= 0.0 && m.bleu <= 1.0);
    }

    #[test]
    fn empty_inputs_score_zero() {
        assert_eq!(ExplanationMetrics::score::<&str>(&[], "gold span").f1, 0.0);
        assert_eq!(ExplanationMetrics::score(&["word"], "").f1, 0.0);
        // A span made only of stop-words has no content words.
        assert_eq!(ExplanationMetrics::score(&["word"], "and the of").f1, 0.0);
    }

    #[test]
    fn report_averages_items() {
        let items = vec![
            (
                vec!["exhausted", "sleep"],
                "I feel exhausted and cannot sleep".to_string(),
            ),
            (vec!["job"], "my job drains me".to_string()),
            (vec!["zzz"], "I feel alone".to_string()),
        ];
        let report = evaluate_explanations("LR", &items);
        assert_eq!(report.n_items, 3);
        assert!(report.f1 > 0.0 && report.f1 < 1.0);
        assert!(report.precision >= report.f1 * 0.5);
        assert!(report.to_table_row().contains("LR"));
    }

    #[test]
    fn empty_report_is_zero() {
        let report = evaluate_explanations::<&str>("none", &[]);
        assert_eq!(report.n_items, 0);
        assert_eq!(report.f1, 0.0);
    }

    #[test]
    fn keyword_case_is_folded() {
        let m = ExplanationMetrics::score(&["EXHAUSTED"], "I feel exhausted");
        assert!(m.recall > 0.0);
    }
}
