//! ROUGE metrics (Lin, 2004): ROUGE-1 unigram overlap and ROUGE-L longest common
//! subsequence, each reported as precision / recall / F1.
//!
//! Table V scores LIME keyword explanations against the annotated explanation spans
//! with ROUGE; the paper reports a single ROUGE figure, which corresponds to the
//! ROUGE-1 F-measure here (candidate = LIME keywords, reference = gold span words).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Precision / recall / F-measure triple for a ROUGE variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RougeScore {
    /// Overlap / candidate length.
    pub precision: f64,
    /// Overlap / reference length.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl RougeScore {
    fn from_overlap(overlap: f64, candidate_len: usize, reference_len: usize) -> Self {
        let precision = if candidate_len == 0 {
            0.0
        } else {
            overlap / candidate_len as f64
        };
        let recall = if reference_len == 0 {
            0.0
        } else {
            overlap / reference_len as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
        }
    }

    /// The all-zero score.
    pub fn zero() -> Self {
        Self {
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
        }
    }
}

fn counts<S: AsRef<str>>(tokens: &[S]) -> HashMap<String, usize> {
    let mut map = HashMap::new();
    for t in tokens {
        *map.entry(t.as_ref().to_lowercase()).or_insert(0) += 1;
    }
    map
}

/// ROUGE-1: unigram overlap between candidate and reference token sequences.
pub fn rouge_1<S: AsRef<str>, T: AsRef<str>>(candidate: &[S], reference: &[T]) -> RougeScore {
    if candidate.is_empty() && reference.is_empty() {
        return RougeScore::zero();
    }
    let cand_counts = counts(candidate);
    let ref_counts = counts(reference);
    let overlap: usize = cand_counts
        .iter()
        .map(|(token, &c)| c.min(*ref_counts.get(token).unwrap_or(&0)))
        .sum();
    RougeScore::from_overlap(overlap as f64, candidate.len(), reference.len())
}

/// Length of the longest common subsequence of two token sequences (case-insensitive).
fn lcs_length<S: AsRef<str>, T: AsRef<str>>(a: &[S], b: &[T]) -> usize {
    let a: Vec<String> = a.iter().map(|t| t.as_ref().to_lowercase()).collect();
    let b: Vec<String> = b.iter().map(|t| t.as_ref().to_lowercase()).collect();
    let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            dp[i][j] = if a[i - 1] == b[j - 1] {
                dp[i - 1][j - 1] + 1
            } else {
                dp[i - 1][j].max(dp[i][j - 1])
            };
        }
    }
    dp[a.len()][b.len()]
}

/// ROUGE-L: longest-common-subsequence overlap.
pub fn rouge_l<S: AsRef<str>, T: AsRef<str>>(candidate: &[S], reference: &[T]) -> RougeScore {
    if candidate.is_empty() && reference.is_empty() {
        return RougeScore::zero();
    }
    let lcs = lcs_length(candidate, reference);
    RougeScore::from_overlap(lcs as f64, candidate.len(), reference.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_score_one() {
        let tokens = ["feel", "exhausted", "sleep"];
        let r1 = rouge_1(&tokens, &tokens);
        let rl = rouge_l(&tokens, &tokens);
        assert!((r1.f1 - 1.0).abs() < 1e-12);
        assert!((rl.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sequences_score_zero() {
        let r = rouge_1(&["job", "money"], &["sleep", "anxiety"]);
        assert_eq!(r.f1, 0.0);
        assert_eq!(rouge_l(&["job"], &["sleep"]).f1, 0.0);
    }

    #[test]
    fn rouge1_hand_computed() {
        // candidate: {the, cat, sat}; reference: {the, cat, was, here}
        // overlap = 2; P = 2/3, R = 2/4 = 0.5, F1 = 2*(2/3)*(1/2)/(2/3+1/2) = 0.5714…
        let r = rouge_1(&["the", "cat", "sat"], &["the", "cat", "was", "here"]);
        assert!((r.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.recall - 0.5).abs() < 1e-12);
        assert!((r.f1 - 0.5714285714).abs() < 1e-6);
    }

    #[test]
    fn rouge1_is_clipped_by_reference_counts() {
        // "feel" appears twice in the candidate but once in the reference -> overlap 1.
        let r = rouge_1(&["feel", "feel"], &["feel", "alone"]);
        assert!((r.precision - 0.5).abs() < 1e-12);
        assert!((r.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rouge_l_respects_order() {
        // LCS of [a b c d] and [a c b d] is 3 (a b d or a c d).
        let r = rouge_l(&["a", "b", "c", "d"], &["a", "c", "b", "d"]);
        assert!((r.recall - 0.75).abs() < 1e-12);
        // Bag-of-words ROUGE-1 would be 1.0 here.
        assert!((rouge_1(&["a", "b", "c", "d"], &["a", "c", "b", "d"]).f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn case_insensitive() {
        let r = rouge_1(&["Feel", "ALONE"], &["feel", "alone"]);
        assert!((r.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(rouge_1::<&str, &str>(&[], &[]).f1, 0.0);
        assert_eq!(rouge_1(&["a"], &[] as &[&str]).f1, 0.0);
        assert_eq!(rouge_l(&[] as &[&str], &["a"]).f1, 0.0);
    }
}
