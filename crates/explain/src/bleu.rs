//! BLEU (Papineni et al., 2002) with modified n-gram precision and brevity penalty.
//!
//! Table V reports BLEU between the LIME-selected keywords and the gold explanation
//! span. Explanation keyword lists are short, so the paper-style BLEU here uses
//! clipped n-gram precisions up to order `min(4, candidate length)` with uniform
//! weights, +1 smoothing on higher orders (Lin & Och smoothing), and the standard
//! brevity penalty.

use holistix_text::ngrams;
use std::collections::HashMap;

fn ngram_counts<S: AsRef<str>>(tokens: &[S], n: usize) -> HashMap<String, usize> {
    let lowered: Vec<String> = tokens.iter().map(|t| t.as_ref().to_lowercase()).collect();
    let mut map = HashMap::new();
    for gram in ngrams(&lowered, n) {
        *map.entry(gram.joined()).or_insert(0) += 1;
    }
    map
}

/// Modified (clipped) n-gram precision of a candidate against one reference.
fn modified_precision<S: AsRef<str>, T: AsRef<str>>(
    candidate: &[S],
    reference: &[T],
    n: usize,
) -> (usize, usize) {
    let cand = ngram_counts(candidate, n);
    let refer = ngram_counts(reference, n);
    let total: usize = cand.values().sum();
    let clipped: usize = cand
        .iter()
        .map(|(gram, &c)| c.min(*refer.get(gram).unwrap_or(&0)))
        .sum();
    (clipped, total)
}

/// BLEU with n-gram orders `1..=max_n`, uniform weights, +1 smoothing for orders above
/// one, and brevity penalty. Returns 0 for an empty candidate or reference.
pub fn bleu_n<S: AsRef<str>, T: AsRef<str>>(candidate: &[S], reference: &[T], max_n: usize) -> f64 {
    if candidate.is_empty() || reference.is_empty() || max_n == 0 {
        return 0.0;
    }
    let max_n = max_n.min(candidate.len()).min(reference.len()).max(1);
    let mut log_sum = 0.0;
    for n in 1..=max_n {
        let (clipped, total) = modified_precision(candidate, reference, n);
        let (num, den) = if n == 1 {
            (clipped as f64, total as f64)
        } else {
            // +1 smoothing keeps short explanation lists from collapsing to zero.
            (clipped as f64 + 1.0, total as f64 + 1.0)
        };
        if num == 0.0 || den == 0.0 {
            return 0.0;
        }
        log_sum += (num / den).ln();
    }
    let geometric_mean = (log_sum / max_n as f64).exp();
    let c = candidate.len() as f64;
    let r = reference.len() as f64;
    let brevity_penalty = if c >= r { 1.0 } else { (1.0 - r / c).exp() };
    brevity_penalty * geometric_mean
}

/// BLEU-4 (the conventional default).
pub fn bleu<S: AsRef<str>, T: AsRef<str>>(candidate: &[S], reference: &[T]) -> f64 {
    bleu_n(candidate, reference, 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_score_one() {
        let tokens = ["i", "feel", "exhausted", "and", "alone"];
        assert!((bleu(&tokens, &tokens) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_sequences_score_zero() {
        assert_eq!(
            bleu(&["job", "money", "career"], &["sleep", "anxiety", "tired"]),
            0.0
        );
    }

    #[test]
    fn partial_overlap_is_between_zero_and_one() {
        let candidate = ["feel", "alone", "sad"];
        let reference = ["i", "feel", "so", "alone"];
        let score = bleu(&candidate, &reference);
        assert!(score > 0.0 && score < 1.0, "score {score}");
    }

    #[test]
    fn unigram_precision_hand_computed() {
        // candidate [a b], reference [a c]: clipped 1/2 -> BLEU-1 = 0.5, BP = exp(1-2/2)=1
        let score = bleu_n(&["a", "b"], &["a", "c"], 1);
        assert!((score - 0.5).abs() < 1e-12);
    }

    #[test]
    fn brevity_penalty_penalises_short_candidates() {
        let reference = ["i", "feel", "so", "alone", "every", "day"];
        let long_candidate = ["i", "feel", "so", "alone", "every", "day"];
        let short_candidate = ["feel", "alone"];
        assert!(bleu_n(&long_candidate, &reference, 1) > bleu_n(&short_candidate, &reference, 1));
    }

    #[test]
    fn word_order_matters_beyond_unigrams() {
        let reference = ["my", "job", "drains", "me"];
        let in_order = ["my", "job", "drains", "me"];
        let scrambled = ["me", "drains", "job", "my"];
        assert!(bleu(&in_order, &reference) > bleu(&scrambled, &reference));
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(bleu::<&str, &str>(&[], &[]), 0.0);
        assert_eq!(bleu(&["a"], &[] as &[&str]), 0.0);
        assert_eq!(bleu(&[] as &[&str], &["a"]), 0.0);
    }

    #[test]
    fn max_n_is_capped_by_sequence_length() {
        // Candidate shorter than 4 tokens should still produce a sensible score.
        let score = bleu(&["feel", "alone"], &["feel", "alone"]);
        assert!((score - 1.0).abs() < 1e-9);
    }
}
