//! # holistix-explain
//!
//! Post-hoc explainability for the Holistix reproduction.
//!
//! §III-B of the paper applies LIME to the two best models (logistic regression and
//! fine-tuned MentalBERT) and scores the LIME-selected keywords against the gold
//! explanation spans with F1, precision, recall, ROUGE and BLEU (Table V). This crate
//! provides that whole stack:
//!
//! * [`lime`] — LIME for text: word-masking perturbations, exponential-kernel sample
//!   weighting, a weighted ridge surrogate and top-k token attributions;
//! * [`rouge`] — ROUGE-1 and ROUGE-L;
//! * [`bleu`] — BLEU-n with brevity penalty;
//! * [`span_eval`] — token-overlap precision/recall/F1 between a predicted keyword set
//!   and a gold explanation span, plus the aggregated Table V report.
//!
//! The explainer works against the [`ProbabilityModel`] trait, so the classical
//! TF-IDF pipelines and the transformer classifiers plug in identically.

pub mod bleu;
pub mod lime;
pub mod rouge;
pub mod span_eval;

pub use bleu::{bleu, bleu_n};
pub use lime::{
    interpretable_features, LimeConfig, LimeExplainer, LimeExplanation, ProbabilityModel,
};
pub use rouge::{rouge_1, rouge_l, RougeScore};
pub use span_eval::{evaluate_explanations, ExplanationMetrics, ExplanationReport};
