//! LIME for text classification (Ribeiro et al., 2016).
//!
//! The explanation of a single prediction is produced exactly the way the `lime`
//! Python package the paper uses does it for text:
//!
//! 1. the post is split into interpretable features — its distinct (lower-cased) word
//!    types;
//! 2. perturbed variants are sampled by switching random subsets of those words off
//!    (removing every occurrence) and the model is queried for each variant;
//! 3. samples are weighted with an exponential kernel on the fraction of words
//!    removed;
//! 4. a weighted ridge regression from the binary word-presence vectors to the
//!    model's probability for the explained class yields one weight per word;
//! 5. the top-k positively weighted words are the explanation, which Table V compares
//!    against the gold explanation span.

use holistix_linalg::Rng64;
use serde::{Deserialize, Serialize};

/// Anything that can score texts with class probabilities.
///
/// Implemented by the core crate's adapters for both the TF-IDF pipelines and the
/// transformer classifiers.
pub trait ProbabilityModel {
    /// Probability vectors (one per text, each of length `n_classes`).
    fn predict_proba(&self, texts: &[&str]) -> Vec<Vec<f64>>;
    /// Number of classes.
    fn n_classes(&self) -> usize;
}

/// The interpretable features LIME explains a text over: its distinct
/// lower-cased word types, in first-occurrence order. Exposed so callers that
/// need to bound explanation cost (the serving layer caps the feature count
/// before the `(features+1)²` surrogate solve) count exactly what the
/// explainer will solve over.
pub fn interpretable_features(text: &str) -> Vec<String> {
    distinct_features(&text_words(text))
}

/// First-occurrence-ordered distinct words.
fn distinct_features(words: &[String]) -> Vec<String> {
    let mut features: Vec<String> = Vec::new();
    for w in words {
        if !features.contains(w) {
            features.push(w.clone());
        }
    }
    features
}

/// All word tokens of a text, lower-cased, in order (with repeats).
fn text_words(text: &str) -> Vec<String> {
    holistix_text::tokenize(text)
        .into_iter()
        .filter(|t| t.kind == holistix_text::TokenKind::Word)
        .map(|t| t.lower())
        .collect()
}

/// LIME hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LimeConfig {
    /// Number of perturbed samples per explanation.
    pub n_samples: usize,
    /// Number of top tokens reported by [`LimeExplanation::top_tokens`].
    pub top_k: usize,
    /// Kernel width of the exponential locality kernel (on the fraction of words
    /// removed).
    pub kernel_width: f64,
    /// Ridge regularisation strength of the surrogate model.
    pub ridge_lambda: f64,
    /// Probability of keeping each word in a perturbed sample.
    pub keep_probability: f64,
    /// How many perturbed texts are sent to the model per `predict_proba` call.
    /// Chunks bound peak memory by the batch (not by `n_samples`). Keep this
    /// *larger* than the core pipeline's internal 64-text scoring batch: each
    /// `predict_proba` call fans its rows out across threads only when it
    /// receives more than one internal batch, so a chunk of 256 parallelises
    /// 4-wide while a chunk of 64 runs sequentially. Results are independent of
    /// the chunking because each text is scored in isolation.
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LimeConfig {
    fn default() -> Self {
        Self {
            n_samples: 200,
            top_k: 5,
            kernel_width: 0.5,
            ridge_lambda: 1.0,
            keep_probability: 0.5,
            batch_size: 256,
            seed: 42,
        }
    }
}

/// The explanation of one prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LimeExplanation {
    /// The class the explanation is for.
    pub target_class: usize,
    /// The model's probability of that class on the unperturbed text.
    pub target_probability: f64,
    /// `(word, weight)` pairs, sorted by weight descending.
    pub token_weights: Vec<(String, f64)>,
    /// The surrogate model's intercept.
    pub intercept: f64,
}

impl LimeExplanation {
    /// The `k` words with the largest positive weights.
    pub fn top_tokens(&self, k: usize) -> Vec<String> {
        self.token_weights
            .iter()
            .filter(|(_, w)| *w > 0.0)
            .take(k)
            .map(|(t, _)| t.clone())
            .collect()
    }

    /// The weight assigned to a word (0 if the word was not a feature).
    pub fn weight_of(&self, word: &str) -> f64 {
        let lower = word.to_lowercase();
        self.token_weights
            .iter()
            .find(|(t, _)| *t == lower)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }
}

/// The LIME explainer.
#[derive(Debug, Clone, Default)]
pub struct LimeExplainer {
    config: LimeConfig,
}

impl LimeExplainer {
    /// New explainer with the given configuration.
    pub fn new(config: LimeConfig) -> Self {
        Self { config }
    }

    /// New explainer with default configuration.
    pub fn default_config() -> Self {
        Self::new(LimeConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> &LimeConfig {
        &self.config
    }

    /// Explain the model's prediction on `text`. If `target_class` is `None`, the
    /// model's argmax class on the original text is explained. `?Sized` so a
    /// trait object (e.g. the serving layer's `&dyn Scorer`) can be explained
    /// without a concrete wrapper.
    pub fn explain<M: ProbabilityModel + ?Sized>(
        &self,
        model: &M,
        text: &str,
        target_class: Option<usize>,
    ) -> LimeExplanation {
        // Interpretable features: distinct lower-cased word types, in first-occurrence order.
        let words = text_words(text);
        let features = distinct_features(&words);

        let original = model
            .predict_proba(&[text])
            .into_iter()
            .next()
            .unwrap_or_else(|| vec![0.0; model.n_classes()]);
        let target =
            target_class.unwrap_or_else(|| holistix_linalg::argmax(&original).unwrap_or(0));
        let target_probability = original.get(target).copied().unwrap_or(0.0);

        if features.is_empty() {
            return LimeExplanation {
                target_class: target,
                target_probability,
                token_weights: Vec::new(),
                intercept: target_probability,
            };
        }

        // 1. Sample perturbations.
        let mut rng = Rng64::new(self.config.seed);
        let n_features = features.len();
        let mut design: Vec<Vec<f64>> = Vec::with_capacity(self.config.n_samples + 1);
        let mut texts: Vec<String> = Vec::with_capacity(self.config.n_samples + 1);
        // The unperturbed instance is always included with full weight.
        design.push(vec![1.0; n_features]);
        texts.push(text.to_string());
        for _ in 0..self.config.n_samples {
            let mut mask = vec![false; n_features];
            let mut any = false;
            for m in mask.iter_mut() {
                *m = rng.bernoulli(self.config.keep_probability);
                any |= *m;
            }
            if !any {
                mask[rng.below(n_features)] = true;
            }
            let kept: Vec<&str> = words
                .iter()
                .filter(|w| mask[features.iter().position(|f| f == *w).unwrap()])
                .map(|w| w.as_str())
                .collect();
            design.push(mask.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect());
            texts.push(kept.join(" "));
        }

        // 2. Model responses, in batches: the full perturbation set (n_samples + 1
        // texts) never hits the model as one giant transform.
        let text_refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let batch = self.config.batch_size.max(1);
        let mut responses: Vec<f64> = Vec::with_capacity(text_refs.len());
        for chunk in text_refs.chunks(batch) {
            responses.extend(
                model
                    .predict_proba(chunk)
                    .iter()
                    .map(|p| p.get(target).copied().unwrap_or(0.0)),
            );
        }

        // 3. Locality weights.
        let weights: Vec<f64> = design
            .iter()
            .map(|row| {
                let kept: f64 = row.iter().sum();
                let removed_fraction = 1.0 - kept / n_features as f64;
                (-(removed_fraction * removed_fraction)
                    / (self.config.kernel_width * self.config.kernel_width))
                    .exp()
            })
            .collect();

        // 4. Weighted ridge regression with intercept.
        let (coefficients, intercept) =
            weighted_ridge(&design, &responses, &weights, self.config.ridge_lambda);

        let mut token_weights: Vec<(String, f64)> =
            features.into_iter().zip(coefficients).collect();
        token_weights.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

        LimeExplanation {
            target_class: target,
            target_probability,
            token_weights,
            intercept,
        }
    }
}

/// Solve weighted ridge regression `min Σ w_i (y_i - x_i·β - b)² + λ‖β‖²`.
/// Returns `(coefficients, intercept)`. The intercept is not regularised.
fn weighted_ridge(
    design: &[Vec<f64>],
    responses: &[f64],
    weights: &[f64],
    lambda: f64,
) -> (Vec<f64>, f64) {
    let n_features = design.first().map(|r| r.len()).unwrap_or(0);
    let dim = n_features + 1; // last column is the intercept
                              // Normal equations: (Xᵀ W X + λI') β = Xᵀ W y, with no penalty on the intercept.
    let mut a = vec![vec![0.0f64; dim]; dim];
    let mut b = vec![0.0f64; dim];
    for ((row, &y), &w) in design.iter().zip(responses).zip(weights) {
        let mut extended = row.clone();
        extended.push(1.0);
        for i in 0..dim {
            b[i] += w * extended[i] * y;
            for j in 0..dim {
                a[i][j] += w * extended[i] * extended[j];
            }
        }
    }
    for (i, row) in a.iter_mut().enumerate().take(n_features) {
        row[i] += lambda;
    }
    let solution = solve_linear_system(&mut a, &mut b);
    let intercept = solution[n_features];
    (solution[..n_features].to_vec(), intercept)
}

/// Gaussian elimination with partial pivoting; falls back to zeros for singular
/// systems (which only arise for degenerate all-identical perturbations).
// The elimination inner loop reads row `col` while writing row `row` of the same
// matrix, so it cannot be expressed as a clippy-preferred iterator without
// split_at_mut gymnastics.
#[allow(clippy::needless_range_loop)]
fn solve_linear_system(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap_or(col);
        if a[pivot_row][col].abs() < 1e-12 {
            continue;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        if a[row][row].abs() < 1e-12 {
            x[row] = 0.0;
            continue;
        }
        let mut sum = b[row];
        for col in (row + 1)..n {
            sum -= a[row][col] * x[col];
        }
        x[row] = sum / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic "model" whose class-0 probability rises with occurrences of the
    /// word "job" and class-1 probability with "alone".
    struct KeywordModel;

    impl ProbabilityModel for KeywordModel {
        fn predict_proba(&self, texts: &[&str]) -> Vec<Vec<f64>> {
            texts
                .iter()
                .map(|t| {
                    let lower = t.to_lowercase();
                    let job =
                        lower.matches("job").count() as f64 + lower.matches("work").count() as f64;
                    let alone = lower.matches("alone").count() as f64
                        + lower.matches("lonely").count() as f64;
                    let scores = [job + 0.1, alone + 0.1];
                    let total: f64 = scores.iter().sum();
                    scores.iter().map(|s| s / total).collect()
                })
                .collect()
        }

        fn n_classes(&self) -> usize {
            2
        }
    }

    #[test]
    fn lime_finds_the_driving_keywords() {
        let explainer = LimeExplainer::default_config();
        let text = "my job and the work stress leave me feeling terrible every day";
        let explanation = explainer.explain(&KeywordModel, text, None);
        assert_eq!(explanation.target_class, 0);
        let top = explanation.top_tokens(3);
        assert!(
            top.contains(&"job".to_string()) || top.contains(&"work".to_string()),
            "top tokens {top:?} should include the driving keyword"
        );
        assert!(explanation.weight_of("job") > explanation.weight_of("terrible"));
    }

    #[test]
    fn explaining_the_other_class_flips_the_sign() {
        let explainer = LimeExplainer::default_config();
        let text = "my job keeps me busy but i feel alone at night";
        let for_class0 = explainer.explain(&KeywordModel, text, Some(0));
        let for_class1 = explainer.explain(&KeywordModel, text, Some(1));
        assert!(for_class0.weight_of("job") > 0.0);
        assert!(for_class1.weight_of("alone") > 0.0);
        assert!(for_class1.weight_of("job") < for_class1.weight_of("alone"));
    }

    #[test]
    fn explanations_are_deterministic_for_a_seed() {
        let explainer = LimeExplainer::default_config();
        let text = "work deadlines make me feel alone and exhausted";
        let a = explainer.explain(&KeywordModel, text, None);
        let b = explainer.explain(&KeywordModel, text, None);
        assert_eq!(a, b);
        let other_seed = LimeExplainer::new(LimeConfig {
            seed: 7,
            ..LimeConfig::default()
        });
        let c = other_seed.explain(&KeywordModel, text, None);
        // Same ranking of the decisive token even under a different seed.
        assert_eq!(a.top_tokens(1), c.top_tokens(1));
    }

    #[test]
    fn chunked_scoring_is_independent_of_batch_size() {
        let text = "work deadlines make me feel alone and exhausted every night";
        let reference = LimeExplainer::default_config().explain(&KeywordModel, text, None);
        for batch_size in [1, 7, 64, 1000] {
            let explainer = LimeExplainer::new(LimeConfig {
                batch_size,
                ..LimeConfig::default()
            });
            assert_eq!(explainer.explain(&KeywordModel, text, None), reference);
        }
    }

    #[test]
    fn empty_text_yields_empty_explanation() {
        let explainer = LimeExplainer::default_config();
        let explanation = explainer.explain(&KeywordModel, "", None);
        assert!(explanation.token_weights.is_empty());
        assert!(explanation.top_tokens(5).is_empty());
    }

    #[test]
    fn weight_of_unknown_word_is_zero() {
        let explainer = LimeExplainer::default_config();
        let explanation = explainer.explain(&KeywordModel, "my job is hard", None);
        assert_eq!(explanation.weight_of("zzz"), 0.0);
    }

    #[test]
    fn ridge_solver_recovers_a_linear_function() {
        // y = 2 x0 - 1 x1 + 0.5, no noise, uniform weights.
        let design = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
            vec![1.0, 0.0],
        ];
        let responses: Vec<f64> = design.iter().map(|r| 2.0 * r[0] - r[1] + 0.5).collect();
        let weights = vec![1.0; design.len()];
        let (coef, intercept) = weighted_ridge(&design, &responses, &weights, 1e-6);
        assert!((coef[0] - 2.0).abs() < 1e-3);
        assert!((coef[1] + 1.0).abs() < 1e-3);
        assert!((intercept - 0.5).abs() < 1e-3);
    }

    #[test]
    fn singular_system_does_not_panic() {
        let mut a = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        let mut b = vec![1.0, 2.0];
        let x = solve_linear_system(&mut a, &mut b);
        assert_eq!(x, vec![0.0, 0.0]);
    }
}
