//! lint: no_panic — event-loop fixture.

pub fn pump(v: Option<u32>) -> u32 {
    match v {
        Some(x) => x,
        None => panic!("empty"),
    }
}

pub fn force(v: Option<u32>) -> u32 {
    v.unwrap()
}
