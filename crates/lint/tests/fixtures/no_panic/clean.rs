//! lint: no_panic — event-loop fixture.

pub fn pump(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::pump(Some(3)), 3);
        let _ = Some(1).unwrap();
    }
}
