//! lint: no_panic — event-loop fixture.

pub fn pump(v: Option<u32>) -> u32 {
    // lint:allow(no-panic-in-event-loop): caller checked is_some on entry
    v.unwrap()
}
