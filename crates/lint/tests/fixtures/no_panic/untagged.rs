// No panic-free header here: panicking constructs are allowed.

pub fn force(v: Option<u32>) -> u32 {
    v.unwrap()
}
