use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed);
    counter.load(Ordering::Relaxed)
}

pub fn publish(flag: &AtomicU64) {
    // ordering: best-effort hint — nobody synchronizes through this store;
    // the surrounding mutex is the real fence.
    flag.store(1, Ordering::Relaxed);
}
