use std::sync::atomic::{AtomicU64, Ordering};

pub fn close_valve(flag: &AtomicU64) {
    flag.store(1, Ordering::Relaxed);
}
