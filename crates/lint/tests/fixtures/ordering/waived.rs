use std::sync::atomic::{AtomicU64, Ordering};

pub fn reset(flag: &AtomicU64) {
    // lint:allow(atomic-ordering-audit): single-threaded startup path
    flag.store(0, Ordering::Relaxed);
}
