pub fn lonely() {}
