pub fn listed() {}

pub fn drifted() {}
