use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub fn take_turn(shared: &Mutex<Receiver<u64>>) -> Option<u64> {
    // lint:allow(guard-across-send): receivers take turns by design
    let job = { shared.lock().unwrap().recv() };
    job.ok()
}
