use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub fn drain(state: &Mutex<u64>, jobs: &Receiver<u64>) {
    let snapshot = {
        let guard = state.lock().unwrap();
        *guard
    };
    let _ = snapshot;
    let _ = jobs.recv();
}

pub fn drop_first(state: &Mutex<u64>, jobs: &Receiver<u64>) {
    let guard = state.lock().unwrap();
    drop(guard);
    let _ = jobs.recv();
}
