use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub fn drain(state: &Mutex<u64>, jobs: &Receiver<u64>) {
    let guard = state.lock().unwrap();
    let job = jobs.recv();
    drop(guard);
    let _ = job;
}
