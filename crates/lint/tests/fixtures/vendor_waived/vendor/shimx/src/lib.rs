pub fn listed() {}

// lint:allow(vendor-drift): deliberate extension pending manifest review
pub fn drifted() {}
