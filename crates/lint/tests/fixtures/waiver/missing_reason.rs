pub fn read_raw(p: *const u32) -> u32 {
    // lint:allow(safety-comment)
    unsafe { *p }
}
