// lint:allow(no-such-rule): this rule name does not exist
pub fn nothing() {}
