use std::sync::atomic::{AtomicU64, Ordering};

pub fn reset_counter(counter: &AtomicU64) {
    counter.store(0, Ordering::Relaxed);
}
