pub fn listed() {}

pub fn also_listed() {}
