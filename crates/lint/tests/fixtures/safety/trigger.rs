pub fn read_raw(p: *const u32) -> u32 {
    unsafe { *p }
}
