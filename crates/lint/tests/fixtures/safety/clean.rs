pub fn read_raw(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` is non-null, aligned and valid for
    // reads for the duration of this call.
    unsafe { *p }
}
