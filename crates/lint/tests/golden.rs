//! Golden fixture tests: each rule has a triggering, a clean and a waived
//! fixture under `tests/fixtures/`, and the engine run over each fixture
//! directory must report exactly the expected findings. The final test is the
//! self-check: the analyzer run over the workspace itself must be clean —
//! which is the invariant CI gates on.

use holistix_lint::{check, Config};
use std::path::{Path, PathBuf};

fn fixture_root(dir: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(dir)
}

fn fixture_config(dir: &str) -> Config {
    let mut config = Config::new(fixture_root(dir));
    // The workspace default skips the fixture tree (it triggers on purpose);
    // here the fixture tree *is* the analysis root, so drop that entry.
    config.skip_substrings.retain(|s| !s.contains("fixtures"));
    config
}

/// Findings for a fixture dir, rendered as `file:line: rule: message`.
fn findings(dir: &str) -> Vec<String> {
    check(&fixture_config(dir))
        .expect("fixture walk")
        .iter()
        .map(|f| f.to_string())
        .collect()
}

fn assert_findings(dir: &str, expected_prefixes: &[&str]) {
    let found = findings(dir);
    assert_eq!(
        found.len(),
        expected_prefixes.len(),
        "fixture `{dir}`: expected {} findings, got: {found:#?}",
        expected_prefixes.len()
    );
    for (finding, prefix) in found.iter().zip(expected_prefixes) {
        assert!(
            finding.starts_with(prefix),
            "fixture `{dir}`: expected finding starting `{prefix}`, got `{finding}`"
        );
    }
}

#[test]
fn ordering_trigger_fires_clean_and_waived_do_not() {
    // trigger.rs stores Relaxed without a justification; clean.rs uses only
    // counter ops or carries `// ordering:`; waived.rs waives with a reason.
    assert_findings("ordering", &["trigger.rs:4: atomic-ordering-audit:"]);
}

#[test]
fn ordering_allowlist_suppresses_counter_files() {
    let mut config = fixture_config("ordering_allowlist");
    let before = check(&config).expect("fixture walk");
    assert_eq!(before.len(), 1, "without the allowlist the store fires");
    assert_eq!(before[0].rule, "atomic-ordering-audit");
    config.counter_allowlist = vec!["counters.rs".to_string()];
    let after = check(&config).expect("fixture walk");
    assert!(after.is_empty(), "allowlisted file is exempt: {after:?}");
}

#[test]
fn no_panic_trigger_fires_clean_waived_and_untagged_do_not() {
    // trigger.rs has `panic!` and `.unwrap()` under the header; clean.rs only
    // panics inside #[cfg(test)]; untagged.rs has no header at all.
    assert_findings(
        "no_panic",
        &[
            "trigger.rs:6: no-panic-in-event-loop:",
            "trigger.rs:11: no-panic-in-event-loop:",
        ],
    );
}

#[test]
fn safety_trigger_fires_clean_and_waived_do_not() {
    assert_findings("safety", &["trigger.rs:2: safety-comment:"]);
}

#[test]
fn guard_trigger_fires_clean_and_waived_do_not() {
    // trigger.rs blocks in `recv` with a live guard; clean.rs scopes or
    // drops the guard first; waived.rs waives the take-turns pattern.
    assert_findings("guard", &["trigger.rs:6: guard-across-send:"]);
}

#[test]
fn vendor_drift_flags_unlisted_items_and_missing_manifests() {
    assert_findings(
        "vendor_trigger",
        &[
            "vendor/shimx/src/lib.rs:3: vendor-drift:",
            "vendor/shimy/src/lib.rs:1: vendor-drift:",
        ],
    );
    assert_findings("vendor_clean", &[]);
    assert_findings("vendor_waived", &[]);
}

#[test]
fn malformed_waivers_are_themselves_findings() {
    assert_findings(
        "waiver",
        &[
            "missing_reason.rs:2: waiver-missing-reason:",
            "unknown_rule.rs:1: waiver-unknown-rule:",
        ],
    );
}

/// The invariant CI gates on: the workspace's own tree has zero findings.
#[test]
fn workspace_self_check_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let found = check(&Config::new(root)).expect("workspace walk");
    assert!(
        found.is_empty(),
        "workspace must be finding-free; fix or waive (with a reason):\n{}",
        found
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
