//! CLI for the holistix invariant analyzer.
//!
//! `check` walks every workspace `.rs` file and exits 1 on findings — the CI
//! gate. `inventory` regenerates `vendor/<shim>/MANIFEST` files from the
//! shims' actual public surface, which is how an *intentional* shim API
//! change is recorded (the diff then goes through review like any other).

use holistix_lint::rules::vendor_drift;
use holistix_lint::{check, Config};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "holistix-lint — workspace invariant analyzer\n\
         \n\
         USAGE:\n\
         \x20 holistix-lint check [--root DIR] [--report FILE]\n\
         \x20     run every rule over the workspace; exit 1 on findings\n\
         \x20 holistix-lint inventory [vendor/<shim> …] [--root DIR]\n\
         \x20     (re)write MANIFEST files for the named shims (default: all)"
    );
    ExitCode::from(2)
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

fn parse_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let at = args.iter().position(|a| a == flag)?;
    if at + 1 >= args.len() {
        return None;
    }
    let value = args.remove(at + 1);
    args.remove(at);
    Some(value)
}

fn run_check(mut args: Vec<String>) -> ExitCode {
    let root = match parse_flag(&mut args, "--root") {
        Some(dir) => PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            find_workspace_root(&cwd).unwrap_or(cwd)
        }
    };
    let report = parse_flag(&mut args, "--report");
    if !args.is_empty() {
        return usage();
    }
    let config = Config::new(&root);
    let findings = match check(&config) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("holistix-lint: failed to analyze {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let mut lines: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    for line in &lines {
        println!("{line}");
    }
    let verdict = if findings.is_empty() {
        format!(
            "holistix-lint: clean ({} rules)",
            holistix_lint::RULE_NAMES.len()
        )
    } else {
        format!("holistix-lint: {} finding(s)", findings.len())
    };
    println!("{verdict}");
    if let Some(path) = report {
        lines.push(verdict);
        if let Err(e) = fs::write(&path, lines.join("\n") + "\n") {
            eprintln!("holistix-lint: failed to write report {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_inventory(mut args: Vec<String>) -> ExitCode {
    let root = match parse_flag(&mut args, "--root") {
        Some(dir) => PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            find_workspace_root(&cwd).unwrap_or(cwd)
        }
    };
    let shims: Vec<PathBuf> = if args.is_empty() {
        // Every vendor/<dir> with a src/ underneath.
        let vendor = root.join("vendor");
        let Ok(entries) = fs::read_dir(&vendor) else {
            eprintln!("holistix-lint: no vendor/ under {}", root.display());
            return ExitCode::from(2);
        };
        let mut shims: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.join("src").is_dir())
            .collect();
        shims.sort();
        shims
    } else {
        args.iter().map(|a| root.join(a)).collect()
    };
    for shim in shims {
        let name = shim
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let items = match vendor_drift::inventory_shim(&shim) {
            Ok(items) => items,
            Err(e) => {
                eprintln!("holistix-lint: cannot inventory {}: {e}", shim.display());
                return ExitCode::from(2);
            }
        };
        let manifest = shim.join("MANIFEST");
        if let Err(e) = fs::write(&manifest, vendor_drift::manifest_content(&name, &items)) {
            eprintln!("holistix-lint: cannot write {}: {e}", manifest.display());
            return ExitCode::from(2);
        }
        println!("{}: {} pub item(s)", manifest.display(), items.len());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let command = args.remove(0);
    match command.as_str() {
        "check" => run_check(args),
        "inventory" => run_inventory(args),
        _ => usage(),
    }
}
