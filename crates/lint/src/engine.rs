//! The rule engine: file walking, per-file token context, waiver handling,
//! and the diagnostic type every rule reports through.
//!
//! ## Waivers
//!
//! Any finding can be waived inline:
//!
//! ```text
//! // lint:allow(guard-across-send): takers queue on the mutex by design
//! ```
//!
//! The waiver must sit on the finding's line or in the contiguous comment
//! block directly above it, must name the rule, and must carry a non-empty
//! reason after the colon — a reasonless waiver is itself a finding
//! (`waiver-missing-reason`), as is a waiver naming a rule that does not
//! exist (`waiver-unknown-rule`). This keeps every suppression auditable:
//! `grep -rn 'lint:allow'` is the complete exception ledger.

use crate::lexer::{lex, Tok};
use crate::rules;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Every rule the engine knows, in reporting order. Waivers must name one.
pub const RULE_NAMES: &[&str] = &[
    rules::ordering::NAME,
    rules::no_panic::NAME,
    rules::safety::NAME,
    rules::guard::NAME,
    rules::vendor_drift::NAME,
];

/// Meta-rule: a waiver that names a rule but gives no reason.
pub const WAIVER_MISSING_REASON: &str = "waiver-missing-reason";
/// Meta-rule: a waiver naming a rule the engine does not have.
pub const WAIVER_UNKNOWN_RULE: &str = "waiver-unknown-rule";

/// One diagnostic: `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the analysis root, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired (one of [`RULE_NAMES`] or a waiver meta-rule).
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Analyzer configuration. [`Config::new`] gives the workspace defaults;
/// tests construct variants to pin allowlist behavior.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directory whose `.rs` files are analyzed (recursively).
    pub root: PathBuf,
    /// Path suffixes of *pure-counter* files: `Ordering::Relaxed` stores and
    /// RMWs there are monotone statistics by construction, so the
    /// atomic-ordering-audit rule skips them wholesale. Empty by default —
    /// the workspace currently justifies every non-counter `Relaxed` site
    /// individually, which is the stronger posture; add a suffix here only
    /// when per-site `// ordering:` comments in a counters-only file become
    /// pure noise.
    pub counter_allowlist: Vec<String>,
    /// Path substrings to skip while walking (fixtures, build output, VCS).
    pub skip_substrings: Vec<String>,
}

impl Config {
    /// Workspace defaults rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Config {
            root: root.into(),
            counter_allowlist: Vec::new(),
            skip_substrings: vec![
                "/target/".to_string(),
                "/.git/".to_string(),
                // The analyzer's own golden fixtures trigger on purpose.
                "crates/lint/tests/fixtures".to_string(),
            ],
        }
    }
}

/// Everything a per-file rule gets to look at: the token stream plus the
/// line-oriented derived views every rule needs (comments for justification
/// markers, test regions to skip, code-token indices).
pub struct FileCtx<'a> {
    /// `/`-separated path relative to the analysis root.
    pub rel_path: &'a str,
    /// The full token stream, comments included.
    pub toks: &'a [Tok],
    /// Indices into `toks` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Comment text per line (all comments on the line, concatenated).
    pub comments: HashMap<u32, String>,
    /// Lines that hold comments and nothing else — the lines a justification
    /// block directly above a statement is made of.
    pub pure_comment_lines: HashSet<u32>,
    /// Lines inside `#[cfg(test)]` items (the braces' span, inclusive).
    pub test_lines: HashSet<u32>,
}

impl<'a> FileCtx<'a> {
    fn build(rel_path: &'a str, toks: &'a [Tok]) -> Self {
        let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        let mut comments: HashMap<u32, String> = HashMap::new();
        let mut code_lines: HashSet<u32> = HashSet::new();
        let mut comment_lines: HashSet<u32> = HashSet::new();
        for tok in toks {
            if tok.is_comment() {
                comments.entry(tok.line).or_default().push_str(&tok.text);
                comment_lines.insert(tok.line);
            } else {
                code_lines.insert(tok.line);
            }
        }
        let pure_comment_lines = comment_lines
            .difference(&code_lines)
            .copied()
            .collect::<HashSet<u32>>();
        let test_lines = find_test_lines(toks, &code);
        FileCtx {
            rel_path,
            toks,
            code,
            comments,
            pure_comment_lines,
            test_lines,
        }
    }

    /// The code token at code-index `i` (not a raw token index).
    pub fn code_tok(&self, i: usize) -> Option<&Tok> {
        self.code.get(i).map(|&raw| &self.toks[raw])
    }

    /// Whether a justification marker (`needle`) appears in a comment on
    /// `line` or in the contiguous pure-comment block directly above it.
    pub fn has_marker_above(&self, line: u32, needle: &str) -> bool {
        self.comment_on_or_above(line, |text| text.contains(needle))
    }

    /// Run `pred` over the comment text on `line` and each line of the
    /// contiguous pure-comment block directly above; true if any matches.
    pub fn comment_on_or_above(&self, line: u32, pred: impl Fn(&str) -> bool) -> bool {
        if self.comments.get(&line).is_some_and(|t| pred(t)) {
            return true;
        }
        let mut cursor = line.saturating_sub(1);
        while cursor > 0 && self.pure_comment_lines.contains(&cursor) {
            if self.comments.get(&cursor).is_some_and(|t| pred(t)) {
                return true;
            }
            cursor -= 1;
        }
        false
    }

    /// True when `line` is inside a `#[cfg(test)]` item.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_lines.contains(&line)
    }
}

/// Find the line spans of `#[cfg(test)]` items: from each attribute, skip any
/// further attributes, then mark everything from the item's opening `{` to
/// its matching `}`. Lexical, like everything here — `cfg(all(test, …))` and
/// out-of-line `mod foo;` test files are out of scope (the workspace uses
/// neither).
fn find_test_lines(toks: &[Tok], code: &[usize]) -> HashSet<u32> {
    let tok_at = |ci: usize| -> Option<&Tok> { code.get(ci).map(|&raw| &toks[raw]) };
    let mut lines = HashSet::new();
    let mut ci = 0;
    while ci < code.len() {
        let is_cfg_test = tok_at(ci).is_some_and(|t| t.is_punct('#'))
            && tok_at(ci + 1).is_some_and(|t| t.is_punct('['))
            && tok_at(ci + 2).is_some_and(|t| t.is_ident("cfg"))
            && tok_at(ci + 3).is_some_and(|t| t.is_punct('('))
            && tok_at(ci + 4).is_some_and(|t| t.is_ident("test"))
            && tok_at(ci + 5).is_some_and(|t| t.is_punct(')'))
            && tok_at(ci + 6).is_some_and(|t| t.is_punct(']'));
        if !is_cfg_test {
            ci += 1;
            continue;
        }
        ci += 7;
        // Find the item's body: the first `{` before a top-level `;`.
        let mut depth_paren = 0i32;
        let mut body_open = None;
        let mut scan = ci;
        while let Some(tok) = tok_at(scan) {
            match tok.text.chars().next() {
                Some('(') | Some('[') => depth_paren += 1,
                Some(')') | Some(']') => depth_paren -= 1,
                Some('{') if depth_paren == 0 => {
                    body_open = Some(scan);
                    break;
                }
                Some(';') if depth_paren == 0 => break, // bodiless item
                _ => {}
            }
            scan += 1;
        }
        let Some(open) = body_open else {
            continue;
        };
        let start_line = tok_at(open).map(|t| t.line).unwrap_or(0);
        let mut depth = 0i32;
        let mut end_line = start_line;
        let mut close = open;
        while let Some(tok) = tok_at(close) {
            if tok.is_punct('{') {
                depth += 1;
            } else if tok.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    end_line = tok.line;
                    break;
                }
            }
            close += 1;
        }
        for line in start_line..=end_line {
            lines.insert(line);
        }
        ci = close + 1;
    }
    lines
}

/// A parsed `lint:allow(safety-comment): reason`-style marker (one or more
/// comma-separated rule names, then a mandatory reason).
#[derive(Debug)]
struct Waiver {
    line: u32,
    rules: Vec<String>,
    reason: String,
}

/// Extract every waiver from a comment's text (there can be several).
fn parse_waivers(line: u32, text: &str) -> Vec<Waiver> {
    const MARKER: &str = "lint:allow(";
    let mut waivers = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find(MARKER) {
        let after = &rest[at + MARKER.len()..];
        let Some(close) = after.find(')') else {
            rest = after;
            continue;
        };
        let rules = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = &after[close + 1..];
        let reason = match tail.trim_start().strip_prefix(':') {
            // The reason ends at the next waiver marker if two share a line.
            Some(r) => match r.find(MARKER) {
                Some(next) => r[..next].trim().to_string(),
                None => r.trim().to_string(),
            },
            None => String::new(),
        };
        waivers.push(Waiver {
            line,
            rules,
            reason,
        });
        rest = tail;
    }
    waivers
}

/// Apply waivers to raw findings and report malformed waivers. Returns the
/// final finding list, sorted and deduplicated.
fn apply_waivers(ctx: &FileCtx<'_>, raw: Vec<Finding>) -> Vec<Finding> {
    let mut all_waivers: Vec<Waiver> = Vec::new();
    let mut lines: Vec<&u32> = ctx.comments.keys().collect();
    lines.sort();
    for &line in lines {
        if let Some(text) = ctx.comments.get(&line) {
            all_waivers.extend(parse_waivers(line, text));
        }
    }

    let mut out: BTreeSet<Finding> = BTreeSet::new();
    for waiver in &all_waivers {
        for rule in &waiver.rules {
            if !RULE_NAMES.contains(&rule.as_str()) {
                out.insert(Finding {
                    path: ctx.rel_path.to_string(),
                    line: waiver.line,
                    rule: WAIVER_UNKNOWN_RULE,
                    message: format!(
                        "waiver names unknown rule `{rule}` (known: {})",
                        RULE_NAMES.join(", ")
                    ),
                });
            }
        }
    }

    'findings: for finding in raw {
        // A waiver covers the finding when it names the rule and sits on the
        // finding's line or in the contiguous comment block directly above.
        let mut covering: Option<&Waiver> = None;
        for waiver in &all_waivers {
            if !waiver.rules.iter().any(|r| r == finding.rule) {
                continue;
            }
            let applies = waiver.line == finding.line || {
                let mut cursor = finding.line.saturating_sub(1);
                let mut hit = false;
                while cursor > 0 && ctx.pure_comment_lines.contains(&cursor) {
                    if waiver.line == cursor {
                        hit = true;
                        break;
                    }
                    cursor -= 1;
                }
                hit
            };
            if applies {
                covering = Some(waiver);
                break;
            }
        }
        if let Some(waiver) = covering {
            if waiver.reason.is_empty() {
                out.insert(Finding {
                    path: finding.path,
                    line: waiver.line,
                    rule: WAIVER_MISSING_REASON,
                    message: format!(
                        "waiver for `{}` has no reason — write `lint:allow({}): <why>`",
                        finding.rule, finding.rule
                    ),
                });
            }
            continue 'findings; // waived (or converted to the meta-finding)
        }
        out.insert(finding);
    }
    out.into_iter().collect()
}

/// Recursively collect the `.rs` files under `root`, honoring the skip list,
/// in a deterministic order.
fn collect_rs_files(config: &Config) -> io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, config: &Config, out: &mut Vec<PathBuf>) -> io::Result<()> {
        let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let text = path.to_string_lossy().replace('\\', "/");
            if config.skip_substrings.iter().any(|s| text.contains(s)) {
                continue;
            }
            if path.is_dir() {
                let name = path.file_name().unwrap_or_default().to_string_lossy();
                if name == "target" || name == ".git" {
                    continue;
                }
                walk(&path, config, out)?;
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk(&config.root, config, &mut out)?;
    Ok(out)
}

/// The path relative to the analysis root, `/`-separated.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Run every rule over every workspace `.rs` file plus the vendor manifests.
/// Returns the final, waiver-filtered findings, sorted by path/line/rule.
pub fn check(config: &Config) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in collect_rs_files(config)? {
        let source = fs::read_to_string(&path)?;
        let rel = rel_path(&config.root, &path);
        let toks = lex(&source);
        let ctx = FileCtx::build(&rel, &toks);
        let mut raw = Vec::new();
        rules::ordering::check_file(&ctx, config, &mut raw);
        rules::no_panic::check_file(&ctx, &mut raw);
        rules::safety::check_file(&ctx, &mut raw);
        rules::guard::check_file(&ctx, &mut raw);
        rules::vendor_drift::check_file(&ctx, config, &mut raw);
        findings.extend(apply_waivers(&ctx, raw));
    }
    findings.sort();
    findings.dedup();
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_parsing_extracts_rules_and_reason() {
        let ws = parse_waivers(
            3,
            " lint:allow(safety-comment, guard-across-send): ffi shim ",
        );
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rules, vec!["safety-comment", "guard-across-send"]);
        assert_eq!(ws[0].reason, "ffi shim");
    }

    #[test]
    fn waiver_without_colon_has_empty_reason() {
        let ws = parse_waivers(1, "lint:allow(safety-comment)");
        assert_eq!(ws.len(), 1);
        assert!(ws[0].reason.is_empty());
    }

    #[test]
    fn test_region_detection_spans_the_braces() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\nfn after() {}\n";
        let toks = lex(src);
        let ctx = FileCtx::build("x.rs", &toks);
        assert!(!ctx.in_test(1));
        assert!(ctx.in_test(3));
        assert!(ctx.in_test(4));
        assert!(ctx.in_test(5));
        assert!(!ctx.in_test(6));
    }

    #[test]
    fn pure_comment_lines_exclude_trailing_comments() {
        let src = "// above\nlet x = 1; // trailing\n";
        let toks = lex(src);
        let ctx = FileCtx::build("x.rs", &toks);
        assert!(ctx.pure_comment_lines.contains(&1));
        assert!(!ctx.pure_comment_lines.contains(&2));
        assert!(ctx.has_marker_above(2, "above"));
    }
}
