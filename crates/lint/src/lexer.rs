//! A hand-rolled Rust lexer: just enough token structure for invariant rules.
//!
//! The analyzer's rules are lexical ("an `unsafe` token without a `SAFETY:`
//! comment above it"), so full parsing is unnecessary — but *naive* text
//! search is wrong: `"unsafe"` inside a string literal, `Ordering::Relaxed`
//! inside a doc comment, or a `// lint:allow` marker inside a raw string must
//! not count. This lexer draws exactly that boundary. It understands:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments,
//! * string literals with escapes, byte strings, C strings,
//! * raw strings (`r"…"`, `r#"…"#`, any hash depth, `br…` too),
//! * char and byte-char literals vs. lifetimes (`'a'` vs `'a`),
//! * raw identifiers (`r#fn`),
//! * identifiers, numbers, and single-character punctuation.
//!
//! Multi-character operators are deliberately left as single punctuation
//! tokens (`::` is `:` `:`); rules match short token sequences, which keeps
//! the lexer total — it can never fail, only mis-bucket pathological input,
//! and the golden fixtures pin the cases the rules rely on.

/// Token classes. Comments are real tokens here (rules read them); everything
/// rules should *ignore* (string contents, char literals) is bucketed so it
/// can never be mistaken for code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `Ordering`, …).
    Ident,
    /// Numeric literal (loosely lexed; rules never inspect the digits).
    Number,
    /// String literal of any flavor (escaped, raw, byte, C).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// `//`-style comment, text includes everything after the slashes.
    LineComment,
    /// `/* … */` comment (possibly nested, possibly multi-line).
    BlockComment,
    /// One punctuation character.
    Punct,
}

/// One token with its 1-based starting line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True when this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// True for a punctuation token equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.starts_with(c)
    }

    /// True for an identifier token equal to `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// The cursor state shared by the helper lexing routines.
struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Advance one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn take_while(&mut self, out: &mut String, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if !pred(c) {
                break;
            }
            out.push(c);
            self.bump();
        }
    }

    fn line_comment(&mut self) -> Tok {
        let line = self.line;
        let mut text = String::new();
        self.take_while(&mut text, |c| c != '\n');
        Tok {
            kind: TokKind::LineComment,
            text,
            line,
        }
    }

    fn block_comment(&mut self) -> Tok {
        let line = self.line;
        let mut text = String::new();
        // Past the opening `/*` (already consumed by the caller); nested
        // comments are counted the way rustc counts them.
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                    text.push_str("/*");
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break, // unterminated: EOF closes it
            }
        }
        Tok {
            kind: TokKind::BlockComment,
            text,
            line,
        }
    }

    /// An escaped (non-raw) string body; the opening quote is consumed.
    fn escaped_string(&mut self) -> Tok {
        let line = self.line;
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump(); // whatever is escaped, skip it
                }
                Some('"') | None => break,
                Some(_) => {}
            }
        }
        Tok {
            kind: TokKind::Str,
            text: String::new(),
            line,
        }
    }

    /// A raw string: `hashes` `#` characters then `"` were consumed; the body
    /// runs until `"` followed by the same number of `#`s.
    fn raw_string(&mut self, hashes: usize) -> Tok {
        let line = self.line;
        loop {
            match self.bump() {
                Some('"') => {
                    if (0..hashes).all(|i| self.peek(i) == Some('#')) {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                }
                None => break,
                Some(_) => {}
            }
        }
        Tok {
            kind: TokKind::Str,
            text: String::new(),
            line,
        }
    }

    /// Try to consume a raw-string opener (`#*"`), returning the hash count.
    /// The cursor sits right after the `r`/`br` prefix.
    fn raw_opener(&mut self) -> Option<usize> {
        let mut hashes = 0;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) == Some('"') {
            for _ in 0..=hashes {
                self.bump();
            }
            Some(hashes)
        } else {
            None
        }
    }

    /// `'` was consumed: decide lifetime vs. char literal.
    fn lifetime_or_char(&mut self) -> Tok {
        let line = self.line;
        match (self.peek(0), self.peek(1)) {
            // `'a'`, `'_'` as a char — ident-start char immediately closed.
            (Some(c), Some('\'')) if is_ident_start(c) => {
                self.bump();
                self.bump();
                Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                }
            }
            // `'a`, `'static`, `'_` — a lifetime: ident run, no closing quote.
            (Some(c), _) if is_ident_start(c) => {
                let mut text = String::from("'");
                self.take_while(&mut text, is_ident_continue);
                Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                }
            }
            // Escaped or punctuation char literal: `'\n'`, `'\u{1F600}'`, `'*'`.
            _ => {
                loop {
                    match self.bump() {
                        Some('\\') => {
                            if self.bump() == Some('u') && self.peek(0) == Some('{') {
                                while let Some(c) = self.bump() {
                                    if c == '}' {
                                        break;
                                    }
                                }
                            }
                        }
                        Some('\'') | None => break,
                        Some(_) => {}
                    }
                }
                Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                }
            }
        }
    }

    /// An identifier starting at the cursor, minding the `r#"…"`/`b"…"`/`b'…'`
    /// literal prefixes that look like identifiers.
    fn ident_or_prefixed_literal(&mut self) -> Tok {
        let line = self.line;
        let first = self.peek(0).unwrap_or('_');
        // Literal prefixes: r"…", r#"…"#, b"…", b'…', br"…", br#"…"#, c"…".
        if first == 'r' {
            if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) {
                // Raw identifier `r#fn`: strip the prefix, keep the name.
                self.bump();
                self.bump();
                let mut text = String::new();
                self.take_while(&mut text, is_ident_continue);
                return Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                };
            }
            self.bump();
            if let Some(hashes) = self.raw_opener() {
                return self.raw_string(hashes);
            }
        } else if first == 'b' || first == 'c' {
            match self.peek(1) {
                Some('"') => {
                    self.bump();
                    self.bump();
                    return self.escaped_string();
                }
                Some('\'') if first == 'b' => {
                    self.bump();
                    self.bump();
                    return self.lifetime_or_char();
                }
                Some('r') if first == 'b' => {
                    // Possible `br"…"` / `br#"…"#`.
                    let mut hashes = 0;
                    while self.peek(2 + hashes) == Some('#') {
                        hashes += 1;
                    }
                    if self.peek(2 + hashes) == Some('"') {
                        self.bump();
                        self.bump();
                        let opened = self.raw_opener();
                        debug_assert_eq!(opened, Some(hashes));
                        return self.raw_string(hashes);
                    }
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        } else {
            self.bump();
        }
        let mut text = String::from(first);
        // `first` was consumed above on every path reaching here.
        self.take_while(&mut text, is_ident_continue);
        Tok {
            kind: TokKind::Ident,
            text,
            line,
        }
    }
}

/// Lex `source` into a token stream. Total: never fails, consumes every byte.
pub fn lex(source: &str) -> Vec<Tok> {
    let mut lx = Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut toks = Vec::new();
    while let Some(c) = lx.peek(0) {
        if c == '\n' || c.is_whitespace() {
            lx.bump();
            continue;
        }
        if c == '/' && lx.peek(1) == Some('/') {
            lx.bump();
            lx.bump();
            toks.push(lx.line_comment());
            continue;
        }
        if c == '/' && lx.peek(1) == Some('*') {
            lx.bump();
            lx.bump();
            toks.push(lx.block_comment());
            continue;
        }
        if c == '"' {
            let line = lx.line;
            lx.bump();
            let mut tok = lx.escaped_string();
            tok.line = line;
            toks.push(tok);
            continue;
        }
        if c == '\'' {
            lx.bump();
            toks.push(lx.lifetime_or_char());
            continue;
        }
        if is_ident_start(c) {
            toks.push(lx.ident_or_prefixed_literal());
            continue;
        }
        if c.is_ascii_digit() {
            let line = lx.line;
            let mut text = String::new();
            lx.take_while(&mut text, is_ident_continue);
            toks.push(Tok {
                kind: TokKind::Number,
                text,
                line,
            });
            continue;
        }
        let line = lx.line;
        lx.bump();
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn code_in_strings_and_comments_is_not_code() {
        let toks = kinds(r##"let s = "unsafe { Ordering::Relaxed }"; // unsafe here too"##);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s"]);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokKind::LineComment)
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_hashes_are_opaque() {
        let toks = kinds(r####"let s = r#"quote " unsafe "#; let t = br##"x"##;"####);
        let strs = toks.iter().filter(|(k, _)| *k == TokKind::Str).count();
        assert_eq!(strs, 2);
        assert!(!toks.iter().any(|(_, t)| t == "unsafe"));
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = kinds("/* outer /* inner */ still comment */ fn live() {}");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "live"));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let toks = lex("fn a() {}\n/* two\nlines */\nfn b() {}");
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("let r#fn = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "fn"));
    }
}
