//! `vendor-drift`: every `pub` item a `vendor/` shim exposes must be listed
//! in that shim's checked-in `MANIFEST`.
//!
//! The shims exist because the build is offline: each mimics the API subset
//! of a real crates.io crate so the workspace can swap in the real crate on a
//! networked build with a one-line `[workspace.dependencies]` change. That
//! swap only works while the shim's public surface stays a *subset* of the
//! real crate's. Without a gate, a convenient helper added to a shim today is
//! an API the real crate lacks tomorrow — and the swap breaks silently, long
//! after anyone remembers why. The MANIFEST is the reviewed inventory; the
//! rule fails on any `pub` item not in it, so growing a shim is always an
//! explicit, diffable act (`holistix-lint inventory vendor/<shim>`).
//!
//! Coverage is item-level: free functions, methods in impls, trait methods,
//! types, consts, statics, re-exports and `#[macro_export]` macros. Struct
//! fields and enum variants are below the granularity the swap risk needs
//! (adding one changes an *existing* listed item, which review sees); the
//! rule documents rather than hides that limit.

use crate::engine::{Config, FileCtx, Finding};
use crate::lexer::{lex, Tok, TokKind};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub const NAME: &str = "vendor-drift";

/// One public item discovered in a shim source file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PubItem {
    /// `fn`, `struct`, `enum`, `trait`, `type`, `const`, `static`, `mod`,
    /// `use`, or `macro`.
    pub kind: &'static str,
    /// Module-qualified path inside the shim, e.g. `thread::Scope::spawn`.
    pub path: String,
    pub line: u32,
}

impl PubItem {
    /// The line format stored in `MANIFEST`.
    pub fn manifest_line(&self) -> String {
        format!("{} {}", self.kind, self.path)
    }
}

/// Brace contexts while scanning (one per `{`).
#[derive(Debug, Clone, PartialEq)]
enum Ctx {
    Mod { name: String, public: bool },
    Impl { type_name: String },
    Trait { name: String, public: bool },
    Fn,
    Other,
}

struct Scanner<'a> {
    toks: &'a [Tok],
    code: Vec<usize>,
}

impl<'a> Scanner<'a> {
    fn tok(&self, ci: usize) -> Option<&'a Tok> {
        self.code.get(ci).map(|&raw| &self.toks[raw])
    }

    /// The type name an `impl` header targets (the last path identifier of
    /// the implemented-on type, after `for` when present) and the code index
    /// of the header's opening `{`.
    fn impl_type_name(&self, mut ci: usize) -> (String, usize) {
        // Skip the impl's own generic parameters: `impl<T: Bound> …`.
        if self.tok(ci).is_some_and(|t| t.is_punct('<')) {
            let mut angle = 0i32;
            while let Some(t) = self.tok(ci) {
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle -= 1;
                    if angle == 0 {
                        ci += 1;
                        break;
                    }
                }
                ci += 1;
            }
        }
        let mut name = String::new();
        let mut angle = 0i32;
        while let Some(t) = self.tok(ci) {
            if angle == 0 {
                if t.is_punct('{') || t.is_ident("where") {
                    break;
                }
                if t.is_ident("for") {
                    name.clear(); // the trait came first; the type follows
                    ci += 1;
                    continue;
                }
                if t.kind == TokKind::Ident {
                    name = t.text.clone(); // last ident wins: `a::b::Type`
                }
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = (angle - 1).max(0);
            }
            ci += 1;
        }
        // Past a possible `where` clause to the body's `{`.
        while let Some(t) = self.tok(ci) {
            if t.is_punct('{') {
                break;
            }
            ci += 1;
        }
        (name, ci)
    }

    /// Expand a `use …;` tail into leaf names (handles `{a, b as c}` groups
    /// and glob imports) and return the index of the terminating `;`.
    fn use_leaves(&self, mut ci: usize) -> (Vec<String>, usize) {
        let mut leaves = Vec::new();
        let mut current: Option<String> = None;
        while let Some(t) = self.tok(ci) {
            if t.is_punct(';') {
                break;
            }
            match t.kind {
                TokKind::Ident if t.is_ident("as") => current = None, // alias replaces leaf
                TokKind::Ident => current = Some(t.text.clone()),
                TokKind::Punct => {
                    let c = t.text.chars().next().unwrap_or(' ');
                    if c == ',' || c == '}' {
                        if let Some(leaf) = current.take() {
                            leaves.push(leaf);
                        }
                    } else if c == '*' {
                        current = Some("*".to_string());
                    }
                }
                _ => {}
            }
            ci += 1;
        }
        if let Some(leaf) = current.take() {
            leaves.push(leaf);
        }
        (leaves, ci)
    }
}

/// Scan a token stream for the public items it declares.
pub fn scan_pub_items_toks(toks: &[Tok]) -> Vec<PubItem> {
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let scanner = Scanner { toks, code };

    let in_fn = |stack: &[Ctx]| stack.iter().any(|c| matches!(c, Ctx::Fn));
    let mods_public = |stack: &[Ctx]| {
        stack
            .iter()
            .all(|c| !matches!(c, Ctx::Mod { public: false, .. }))
    };
    let path_of = |stack: &[Ctx], name: &str| -> String {
        let mut parts: Vec<&str> = Vec::new();
        for c in stack {
            match c {
                Ctx::Mod { name, .. } => parts.push(name),
                Ctx::Impl { type_name } => parts.push(type_name),
                Ctx::Trait { name, .. } => parts.push(name),
                _ => {}
            }
        }
        parts.push(name);
        parts.join("::")
    };

    let mut items: Vec<PubItem> = Vec::new();
    let mut stack: Vec<Ctx> = Vec::new();
    let mut pending: Option<Ctx> = None;
    let mut vis_pub = false;
    let mut macro_export = false;
    let mut ci = 0usize;

    while let Some(tok) = scanner.tok(ci) {
        let line = tok.line;
        let next_name = |offset: usize| -> String {
            scanner
                .tok(ci + offset)
                .map(|t| t.text.clone())
                .unwrap_or_default()
        };
        match tok.text.as_str() {
            // Attribute: note #[macro_export], then skip the bracket group.
            "#" if tok.is_punct('#') && scanner.tok(ci + 1).is_some_and(|t| t.is_punct('[')) => {
                if scanner
                    .tok(ci + 2)
                    .is_some_and(|t| t.is_ident("macro_export"))
                {
                    macro_export = true;
                }
                let mut depth = 0i32;
                ci += 1;
                while let Some(t) = scanner.tok(ci) {
                    if t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ci += 1;
                }
            }
            "{" if tok.is_punct('{') => {
                stack.push(pending.take().unwrap_or(Ctx::Other));
                vis_pub = false;
            }
            "}" if tok.is_punct('}') => {
                stack.pop();
                pending = None;
                vis_pub = false;
            }
            ";" if tok.is_punct(';') => {
                pending = None;
                vis_pub = false;
            }
            "pub" if tok.is_ident("pub") => {
                // `pub(crate)` / `pub(super)` are not public API.
                vis_pub = !scanner.tok(ci + 1).is_some_and(|t| t.is_punct('('));
            }
            "fn" if tok.is_ident("fn") && !in_fn(&stack) => {
                let in_pub_trait = matches!(stack.last(), Some(Ctx::Trait { public: true, .. }));
                if (vis_pub || in_pub_trait) && mods_public(&stack) {
                    items.push(PubItem {
                        kind: "fn",
                        path: path_of(&stack, &next_name(1)),
                        line,
                    });
                }
                pending = Some(Ctx::Fn);
                vis_pub = false;
            }
            "mod" if tok.is_ident("mod") && !in_fn(&stack) => {
                let name = next_name(1);
                let public = vis_pub && mods_public(&stack);
                if public {
                    items.push(PubItem {
                        kind: "mod",
                        path: path_of(&stack, &name),
                        line,
                    });
                }
                pending = Some(Ctx::Mod {
                    name,
                    public: vis_pub,
                });
                vis_pub = false;
            }
            "trait" if tok.is_ident("trait") && !in_fn(&stack) => {
                let name = next_name(1);
                let public = vis_pub && mods_public(&stack);
                if public {
                    items.push(PubItem {
                        kind: "trait",
                        path: path_of(&stack, &name),
                        line,
                    });
                }
                pending = Some(Ctx::Trait { name, public });
                vis_pub = false;
            }
            "impl" if tok.is_ident("impl") && !in_fn(&stack) => {
                let (type_name, open) = scanner.impl_type_name(ci + 1);
                pending = Some(Ctx::Impl { type_name });
                vis_pub = false;
                // Jump to the body's `{` so the header's own tokens (which
                // may contain `for`, `where`, generics) are not re-scanned.
                ci = open;
                continue;
            }
            "struct" | "enum" | "type" | "const" | "static"
                if tok.kind == TokKind::Ident && !in_fn(&stack) =>
            {
                // `const` also appears in `const fn` / `pub const fn`: leave
                // those for the `fn` arm.
                let is_const_fn =
                    tok.is_ident("const") && scanner.tok(ci + 1).is_some_and(|t| t.is_ident("fn"));
                if !is_const_fn {
                    if vis_pub && mods_public(&stack) {
                        let kind = match tok.text.as_str() {
                            "struct" => "struct",
                            "enum" => "enum",
                            "type" => "type",
                            "const" => "const",
                            _ => "static",
                        };
                        items.push(PubItem {
                            kind,
                            path: path_of(&stack, &next_name(1)),
                            line,
                        });
                    }
                    pending = Some(Ctx::Other);
                    vis_pub = false;
                }
            }
            "use" if tok.is_ident("use") && !in_fn(&stack) => {
                if vis_pub && mods_public(&stack) {
                    let (leaves, end) = scanner.use_leaves(ci + 1);
                    for leaf in leaves {
                        items.push(PubItem {
                            kind: "use",
                            path: path_of(&stack, &leaf),
                            line,
                        });
                    }
                    ci = end;
                }
                vis_pub = false;
            }
            "macro_rules" if tok.is_ident("macro_rules") => {
                if macro_export {
                    // `#[macro_export]` hoists the macro to the crate root.
                    items.push(PubItem {
                        kind: "macro",
                        path: next_name(2),
                        line,
                    });
                    macro_export = false;
                }
                pending = Some(Ctx::Other);
            }
            _ => {}
        }
        ci += 1;
    }
    items.sort();
    items.dedup();
    items
}

/// Scan shim source text for its public items.
pub fn scan_pub_items(source: &str) -> Vec<PubItem> {
    scan_pub_items_toks(&lex(source))
}

/// Inventory every `.rs` file under `<shim_dir>/src`.
pub fn inventory_shim(shim_dir: &Path) -> io::Result<Vec<PubItem>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
        let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    walk(&shim_dir.join("src"), &mut files)?;
    let mut items = Vec::new();
    for file in files {
        items.extend(scan_pub_items(&fs::read_to_string(file)?));
    }
    items.sort();
    items.dedup();
    Ok(items)
}

/// Render the MANIFEST file for a shim.
pub fn manifest_content(shim_name: &str, items: &[PubItem]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# Public API inventory of the `{shim_name}` vendor shim.\n\
         # Checked by holistix-lint's vendor-drift rule: every `pub` item the shim\n\
         # exposes must be listed here, so the shim's surface stays a reviewed subset\n\
         # of the real crate's and the offline→crates.io swap cannot break silently.\n\
         # Regenerate: cargo run -p holistix-lint --release -- inventory vendor/{shim_name}\n"
    ));
    for item in items {
        out.push_str(&item.manifest_line());
        out.push('\n');
    }
    out
}

/// Parse a MANIFEST's inventory lines (ignoring comments and blanks).
fn manifest_entries(content: &str) -> BTreeSet<String> {
    content
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Locate the shim a source file belongs to: `…/vendor/<shim>/src/….rs`.
/// Returns the shim's directory path relative to the analysis root.
fn shim_of(rel_path: &str) -> Option<String> {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let vendor_at = parts.iter().position(|p| *p == "vendor")?;
    parts.get(vendor_at + 1)?;
    if parts.get(vendor_at + 2) != Some(&"src") {
        return None;
    }
    Some(parts[..=vendor_at + 1].join("/"))
}

pub fn check_file(ctx: &FileCtx<'_>, config: &Config, out: &mut Vec<Finding>) {
    let Some(shim_rel) = shim_of(ctx.rel_path) else {
        return;
    };
    let shim_name = shim_rel.rsplit('/').next().unwrap_or(&shim_rel);
    let manifest_path = config.root.join(&shim_rel).join("MANIFEST");
    let manifest = match fs::read_to_string(&manifest_path) {
        Ok(content) => manifest_entries(&content),
        Err(_) => {
            out.push(Finding {
                path: ctx.rel_path.to_string(),
                line: 1,
                rule: NAME,
                message: format!(
                    "vendor shim `{shim_name}` has no MANIFEST — run `cargo run -p \
                     holistix-lint --release -- inventory {shim_rel}` and commit it"
                ),
            });
            return;
        }
    };
    for item in scan_pub_items_toks(ctx.toks) {
        let entry = item.manifest_line();
        if !manifest.contains(&entry) {
            out.push(Finding {
                path: ctx.rel_path.to_string(),
                line: item.line,
                rule: NAME,
                message: format!(
                    "pub item `{entry}` is not in {shim_rel}/MANIFEST — shims must not \
                     grow APIs the real crate lacks; if intentional, regenerate the \
                     manifest and justify it in review"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_nested_modules_impls_and_traits() {
        let src = r#"
pub mod thread {
    pub struct Scope<'a> {
        inner: &'a u32,
    }
    impl<'a> Scope<'a> {
        pub fn spawn(&self) -> u32 {
            let helper = 1; // locals are not items
            helper
        }
        fn private_helper(&self) {}
    }
    pub fn scope() -> u32 {
        0
    }
}
pub trait Sampler {
    fn sample(&self) -> f64;
}
mod private {
    pub fn hidden() {}
}
#[macro_export]
macro_rules! shim_assert {
    () => {};
}
"#;
        let lines: Vec<String> = scan_pub_items(src)
            .iter()
            .map(|i| i.manifest_line())
            .collect();
        assert!(lines.contains(&"mod thread".to_string()));
        assert!(lines.contains(&"struct thread::Scope".to_string()));
        assert!(lines.contains(&"fn thread::Scope::spawn".to_string()));
        assert!(lines.contains(&"fn thread::scope".to_string()));
        assert!(lines.contains(&"trait Sampler".to_string()));
        assert!(lines.contains(&"fn Sampler::sample".to_string()));
        assert!(lines.contains(&"macro shim_assert".to_string()));
        assert!(!lines.iter().any(|l| l.contains("private_helper")));
        assert!(!lines.iter().any(|l| l.contains("hidden")));
        assert!(!lines.iter().any(|l| l.contains("helper")));
    }

    #[test]
    fn trait_impl_methods_are_not_separate_api() {
        let src = r#"
pub struct Value;
pub trait Serialize {
    fn serialize(&self) -> String;
}
impl Serialize for Value {
    fn serialize(&self) -> String {
        String::new()
    }
}
"#;
        let lines: Vec<String> = scan_pub_items(src)
            .iter()
            .map(|i| i.manifest_line())
            .collect();
        // Trait-impl methods are not independent API (the trait already
        // lists them); only `pub fn` in inherent impls and trait decls count.
        assert!(lines.contains(&"fn Serialize::serialize".to_string()));
        assert!(!lines.contains(&"fn Value::serialize".to_string()));
    }

    #[test]
    fn pub_crate_and_use_handling() {
        let src = r#"
pub(crate) fn internal() {}
pub use inner::{A, B as Bee};
pub const LIMIT: usize = 4;
"#;
        let lines: Vec<String> = scan_pub_items(src)
            .iter()
            .map(|i| i.manifest_line())
            .collect();
        assert!(!lines.iter().any(|l| l.contains("internal")));
        assert!(lines.contains(&"use A".to_string()));
        assert!(lines.contains(&"use Bee".to_string()));
        assert!(lines.contains(&"const LIMIT".to_string()));
    }
}
