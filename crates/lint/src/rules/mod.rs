//! The five invariant rules. Each is a lexical pass over a [`FileCtx`]
//! (`crate::engine::FileCtx`); waivers and dedup happen in the engine.

pub mod guard;
pub mod no_panic;
pub mod ordering;
pub mod safety;
pub mod vendor_drift;
