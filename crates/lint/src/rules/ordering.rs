//! `atomic-ordering-audit`: every `Ordering::Relaxed` used by a *mutating*
//! atomic operation must carry an `// ordering:` justification.
//!
//! The serve stack leans on relaxed atomics for its lock-free metrics — which
//! is correct exactly as long as every relaxed site is a monotone counter
//! nobody synchronizes *through*. A `Relaxed` store or compare-exchange on a
//! flag that another thread uses to order its own reads is a silent data
//! race: the compiler and CPU may move the protected accesses right past it.
//! Clippy has no opinion here; this rule forces the author to either write
//! down why `Relaxed` is sufficient (an `// ordering:` comment on or directly
//! above the site) or upgrade the ordering.
//!
//! Pure read-modify-write *counter* operations (`fetch_add`, `fetch_max`, …)
//! and plain `load`s are exempt — relaxed is the documented right answer for
//! statistics — as is any file on the configured pure-counter allowlist.

use crate::engine::{Config, FileCtx, Finding};

pub const NAME: &str = "atomic-ordering-audit";

/// Operations where `Relaxed` participates in a write another thread may
/// synchronize on: these need justification.
const MUTATING: &[&str] = &[
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

/// Pure counter/statistic RMWs and reads: relaxed by design.
const COUNTER_OK: &[&str] = &[
    "load",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
];

/// Walk backward from the code token at `at` to the method call whose
/// argument list contains it, returning the callee identifier and its line
/// (a multi-line call is justified — and reported — at the callee's line).
fn enclosing_callee<'a>(ctx: &'a FileCtx<'_>, at: usize) -> Option<(&'a str, u32)> {
    let mut depth = 0i32;
    let mut i = at;
    // Bounded: an argument list longer than this is not something this
    // codebase writes, and the bound keeps the scan linear per site.
    for _ in 0..400 {
        if i == 0 {
            return None;
        }
        i -= 1;
        let tok = ctx.code_tok(i)?;
        match tok.text.chars().next() {
            Some(')') => depth += 1,
            Some('(') => {
                if depth == 0 {
                    // The opener containing our token; the callee precedes it.
                    let callee = ctx.code_tok(i.checked_sub(1)?)?;
                    return Some((&callee.text, callee.line));
                }
                depth -= 1;
            }
            Some(';') | Some('{') | Some('}') if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

pub fn check_file(ctx: &FileCtx<'_>, config: &Config, out: &mut Vec<Finding>) {
    if config
        .counter_allowlist
        .iter()
        .any(|suffix| ctx.rel_path.ends_with(suffix.as_str()))
    {
        return;
    }
    for ci in 0..ctx.code.len() {
        let seq_matches = ctx.code_tok(ci).is_some_and(|t| t.is_ident("Ordering"))
            && ctx.code_tok(ci + 1).is_some_and(|t| t.is_punct(':'))
            && ctx.code_tok(ci + 2).is_some_and(|t| t.is_punct(':'))
            && ctx.code_tok(ci + 3).is_some_and(|t| t.is_ident("Relaxed"));
        if !seq_matches {
            continue;
        }
        let arg_line = ctx.code_tok(ci).map(|t| t.line).unwrap_or(0);
        let callee = enclosing_callee(ctx, ci);
        if callee.is_some_and(|(c, _)| COUNTER_OK.contains(&c)) {
            continue;
        }
        // The call-site line anchors the finding: one `// ordering:` comment
        // above a multi-line `compare_exchange` covers both its orderings.
        let line = callee.map(|(_, l)| l).unwrap_or(arg_line);
        if ctx.has_marker_above(line, "ordering:") || ctx.has_marker_above(arg_line, "ordering:") {
            continue;
        }
        let describe = match callee {
            Some((c, _)) if MUTATING.contains(&c) => format!("`Ordering::Relaxed` in `{c}`"),
            Some((c, _)) => format!("`Ordering::Relaxed` passed to `{c}`"),
            None => "`Ordering::Relaxed` outside a recognized counter op".to_string(),
        };
        out.push(Finding {
            path: ctx.rel_path.to_string(),
            line,
            rule: NAME,
            message: format!(
                "{describe} without an `// ordering:` justification — document why relaxed \
                 cannot be observed as a synchronization edge, or upgrade to Acquire/Release"
            ),
        });
    }
}
