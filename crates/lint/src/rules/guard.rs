//! `guard-across-send`: a `Mutex`/`RwLock` guard that is still live at a
//! channel or thread blocking call in the same lexical block is flagged.
//!
//! The deadlock shape this catches: thread A holds a lock and blocks on
//! `recv()`; the sender that would unblock it needs the same lock. Nothing in
//! the type system prevents it, and it only fires under contention — the
//! worst kind of bug to find at 3am. The rule is a *lexical heuristic*
//! (waivable): it tracks guard bindings (`let g = m.lock()…;`, and guards
//! acquired as temporaries within a statement), drops them at `drop(g)`, at
//! end of statement for temporaries, and at the end of the enclosing block
//! for bindings — and flags any `send`/`recv`/`recv_timeout`, zero-argument
//! `join()`, or `::sleep` call while one is live.
//!
//! Guard acquisition is recognized as `.lock(`, or zero-argument `.read()` /
//! `.write()` (RwLock's signatures; `io::Read`/`io::Write` calls always pass
//! a buffer, which is what disambiguates them). `Condvar::wait` is
//! deliberately *not* a blocking call here: it releases the guard — holding a
//! lock at `wait` is the pattern working as intended.

use crate::engine::{FileCtx, Finding};

pub const NAME: &str = "guard-across-send";

/// Paths that never hold locks across blocking calls by design are expected
/// to be rare; tests and benches intentionally block while holding state all
/// the time, so the rule scopes itself to non-test code.
fn path_is_test_code(rel_path: &str) -> bool {
    rel_path.starts_with("tests/") || rel_path.contains("/tests/") || rel_path.contains("/benches/")
}

#[derive(Debug)]
struct Guard {
    name: String,
    /// Brace depth the guard lives at; popped when depth drops below.
    depth: u32,
    /// Temporary (unnamed) guards die at the statement's `;`.
    temp: bool,
}

#[derive(Debug)]
struct LetState {
    name: String,
    depth: u32,
    acquired: bool,
}

/// Blocking channel/thread operations: method name → needs-empty-parens.
fn blocking_method(name: &str) -> Option<bool> {
    match name {
        "send" | "recv" | "recv_timeout" => Some(false),
        // `join` must be zero-arg: `slice.join(", ")` is string joining.
        "join" => Some(true),
        _ => None,
    }
}

pub fn check_file(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if path_is_test_code(ctx.rel_path) {
        return;
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut current_let: Option<LetState> = None;
    let mut depth: u32 = 0;
    let mut paren_depth: i32 = 0;

    for ci in 0..ctx.code.len() {
        let Some(tok) = ctx.code_tok(ci) else {
            continue;
        };
        if ctx.in_test(tok.line) {
            continue;
        }
        let prev_dot = ci > 0 && ctx.code_tok(ci - 1).is_some_and(|t| t.is_punct('.'));
        let prev_colons = ci > 1
            && ctx.code_tok(ci - 1).is_some_and(|t| t.is_punct(':'))
            && ctx.code_tok(ci - 2).is_some_and(|t| t.is_punct(':'));
        let next_open = ctx.code_tok(ci + 1).is_some_and(|t| t.is_punct('('));
        let next_empty_call = next_open && ctx.code_tok(ci + 2).is_some_and(|t| t.is_punct(')'));

        match tok.text.as_str() {
            "{" if tok.is_punct('{') => {
                depth += 1;
                // `if let Ok(g) = m.lock() { … }`-style bindings: the guard
                // scopes (conservatively) to the block being opened.
                if let Some(ls) = current_let.take() {
                    if ls.acquired {
                        // Re-home the guard pushed at acquisition time to the
                        // new block's depth.
                        if let Some(g) = guards.iter_mut().rev().find(|g| g.name == ls.name) {
                            g.depth = depth;
                            g.temp = false;
                        }
                    } else {
                        current_let = Some(ls);
                    }
                }
            }
            "}" if tok.is_punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                if current_let.as_ref().is_some_and(|ls| ls.depth > depth) {
                    current_let = None;
                }
            }
            "(" if tok.is_punct('(') => paren_depth += 1,
            ")" if tok.is_punct(')') => paren_depth -= 1,
            ";" if tok.is_punct(';') && paren_depth <= 0 => {
                // Statement boundary: temporaries die; a `let` binding that
                // acquired a guard graduates to block scope (it was pushed at
                // acquisition, so just strip its temp flag).
                if let Some(ls) = current_let.take() {
                    if ls.acquired {
                        if let Some(g) = guards.iter_mut().rev().find(|g| g.name == ls.name) {
                            g.temp = false;
                        }
                    }
                }
                guards.retain(|g| !(g.temp && g.depth == depth));
            }
            "let" if tok.is_ident("let") => {
                // Binding name: first identifier after `let`, skipping `mut`
                // and `ref`; tuple/struct patterns get a placeholder name.
                let mut j = ci + 1;
                while ctx
                    .code_tok(j)
                    .is_some_and(|t| t.is_ident("mut") || t.is_ident("ref"))
                {
                    j += 1;
                }
                let name = match ctx.code_tok(j) {
                    Some(t) if t.kind == crate::lexer::TokKind::Ident => t.text.clone(),
                    _ => "<pattern>".to_string(),
                };
                current_let = Some(LetState {
                    name,
                    depth,
                    acquired: false,
                });
            }
            "drop" if tok.is_ident("drop") && next_open => {
                if let (Some(arg), Some(close)) = (ctx.code_tok(ci + 2), ctx.code_tok(ci + 3)) {
                    if close.is_punct(')') {
                        let released = arg.text.clone();
                        guards.retain(|g| g.name != released);
                    }
                }
            }
            "lock" | "read" | "write" if tok.kind == crate::lexer::TokKind::Ident && prev_dot => {
                let acquires = match tok.text.as_str() {
                    "lock" => next_open,
                    // RwLock::read()/write() take no arguments; io traits do.
                    _ => next_empty_call,
                };
                if acquires {
                    let (name, temp) = match current_let.as_mut() {
                        Some(ls) => {
                            ls.acquired = true;
                            (ls.name.clone(), true) // graduates at `;` or `{`
                        }
                        None => ("<temporary>".to_string(), true),
                    };
                    guards.push(Guard { name, depth, temp });
                }
            }
            _ => {
                let is_blocking = match blocking_method(&tok.text) {
                    Some(needs_empty) if prev_dot => {
                        if needs_empty {
                            next_empty_call
                        } else {
                            next_open
                        }
                    }
                    _ => tok.is_ident("sleep") && prev_colons && next_open,
                };
                if is_blocking {
                    if let Some(guard) = guards.last() {
                        out.push(Finding {
                            path: ctx.rel_path.to_string(),
                            line: tok.line,
                            rule: NAME,
                            message: format!(
                                "blocking `{}` while lock guard `{}` may still be held — a \
                                 sender needing that lock deadlocks; move the blocking call \
                                 out of the guard's scope or `drop()` the guard first",
                                tok.text, guard.name
                            ),
                        });
                    }
                }
            }
        }
    }
}
