//! `no-panic-in-event-loop`: panicking constructs are forbidden in files
//! that declare themselves panic-free.
//!
//! A panic on a poller thread does not crash the process — it kills the
//! thread, silently orphaning every connection that poller owned while the
//! rest of the server keeps accepting. That failure mode is worse than a
//! crash: it looks like packet loss. Files carrying a `//! lint: no_panic`
//! header (the event-loop core: `poller.rs`, `conn.rs`) therefore reject
//! `unwrap()`, `expect()`, `panic!`, `unreachable!`, `todo!` and
//! `unimplemented!` outside `#[cfg(test)]` items; hot-path invariants must be
//! handled as errors (drop the connection, not the thread).
//!
//! Lexical honesty: slice indexing and arithmetic overflow can also panic and
//! are *not* caught here — this rule removes the explicit panic surface, the
//! property tests cover the computed one.

use crate::engine::{FileCtx, Finding};

pub const NAME: &str = "no-panic-in-event-loop";

/// The opt-in header, expected in the file's doc comment block.
const HEADER: &str = "lint: no_panic";
/// How far down the header may appear (doc blocks run long in this repo).
const HEADER_WINDOW: u32 = 40;

const PANIC_METHODS: &[&str] = &["unwrap", "unwrap_err", "expect", "expect_err"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn check_file(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let tagged = ctx
        .toks
        .iter()
        .take_while(|t| t.line <= HEADER_WINDOW)
        .any(|t| t.is_comment() && t.text.contains(HEADER));
    if !tagged {
        return;
    }
    for ci in 0..ctx.code.len() {
        let Some(tok) = ctx.code_tok(ci) else {
            continue;
        };
        if ctx.in_test(tok.line) {
            continue;
        }
        let method_call = PANIC_METHODS.contains(&tok.text.as_str())
            && ci > 0
            && ctx.code_tok(ci - 1).is_some_and(|t| t.is_punct('.'))
            && ctx.code_tok(ci + 1).is_some_and(|t| t.is_punct('('));
        let macro_call = PANIC_MACROS.contains(&tok.text.as_str())
            && ctx.code_tok(ci + 1).is_some_and(|t| t.is_punct('!'));
        if !(method_call || macro_call) {
            continue;
        }
        let display = if macro_call {
            format!("{}!", tok.text)
        } else {
            format!(".{}()", tok.text)
        };
        out.push(Finding {
            path: ctx.rel_path.to_string(),
            line: tok.line,
            rule: NAME,
            message: format!(
                "`{display}` in a `lint: no_panic` file — a panic here kills an event-loop \
                 thread and orphans its connections; handle the failure as an error path"
            ),
        });
    }
}
