//! `safety-comment`: every `unsafe` token must be justified by a `// SAFETY:`
//! comment on its line or directly above it.
//!
//! The workspace keeps its unsafe surface to a single FFI call by policy;
//! this rule makes the policy checkable. The same convention rustc itself
//! uses internally (`#![warn(undocumented_unsafe_blocks)]` in std) — the
//! comment must state the invariant the surrounding code upholds, because
//! the compiler has stopped checking at that keyword.

use crate::engine::{FileCtx, Finding};

pub const NAME: &str = "safety-comment";

pub fn check_file(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for ci in 0..ctx.code.len() {
        let Some(tok) = ctx.code_tok(ci) else {
            continue;
        };
        if !tok.is_ident("unsafe") {
            continue;
        }
        if ctx.has_marker_above(tok.line, "SAFETY:") {
            continue;
        }
        // Describe what kind of unsafe this is for a better message.
        let what = match ctx.code_tok(ci + 1) {
            Some(next) if next.is_ident("fn") => "`unsafe fn`",
            Some(next) if next.is_ident("impl") => "`unsafe impl`",
            Some(next) if next.is_punct('{') => "`unsafe` block",
            _ => "`unsafe`",
        };
        out.push(Finding {
            path: ctx.rel_path.to_string(),
            line: tok.line,
            rule: NAME,
            message: format!(
                "{what} without a `// SAFETY:` comment — state the invariant that makes \
                 this sound (the compiler stopped checking here)"
            ),
        });
    }
}
