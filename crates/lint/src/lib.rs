//! # holistix-lint
//!
//! A hand-rolled concurrency/invariant static analyzer for the holistix
//! workspace — the project-specific checks clippy cannot express, built the
//! same way the repo builds everything else: offline, `std`-only, no syn.
//!
//! The serve stack hand-rolls its event loop, its HTTP, and its lock-free
//! metrics. That buys control and costs guardrails: a panic on a poller
//! thread orphans that poller's connections; a `Relaxed` store on a handoff
//! flag is a data race the type system never sees; an `unsafe` block without
//! its invariant written down rots; a vendor shim that quietly grows a `pub`
//! helper breaks the offline→crates.io swap months later. Property tests
//! catch value bugs, clippy catches general Rust smells — neither checks
//! *these* invariants. In the spirit of the exhaustive-checking literature
//! the paper sits in (IC3-style "prove the invariant on every step"), this
//! crate proves them on every commit instead: cheap lexical proofs, CI-gated.
//!
//! ## Rules
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | `atomic-ordering-audit` | relaxed atomic stores/CAS carry an `// ordering:` justification |
//! | `no-panic-in-event-loop` | files tagged `//! lint: no_panic` contain no panicking constructs |
//! | `safety-comment` | every `unsafe` is preceded by `// SAFETY:` stating its invariant |
//! | `guard-across-send` | no lock guard lexically live at a blocking channel/thread call |
//! | `vendor-drift` | every shim `pub` item appears in its `vendor/<shim>/MANIFEST` |
//!
//! Findings print as `file:line: rule: message`. Any finding can be waived in
//! place with `// lint:allow(safety-comment): reason` — the reason is mandatory, so the
//! exception ledger stays greppable and auditable.
//!
//! ## Usage
//!
//! ```text
//! cargo run -p holistix-lint --release -- check              # exit 1 on findings
//! cargo run -p holistix-lint --release -- inventory          # regenerate all MANIFESTs
//! cargo run -p holistix-lint --release -- inventory vendor/rand
//! ```

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{check, Config, Finding, RULE_NAMES};
