//! The unified baseline registry and pipeline adapters.
//!
//! Table IV of the paper compares nine models: three classical (TF-IDF + LR /
//! Linear SVM / Gaussian NB) and six transformers. [`BaselineKind`] enumerates them
//! with the paper's row names, [`FittedBaseline`] is the result of training any of
//! them, and [`BaselinePipeline`] adapts the whole family to the cross-validation
//! driver of `holistix-ml` so one harness produces the entire table.
//!
//! [`FittedBaseline`] also implements the explainability crate's
//! [`ProbabilityModel`] trait, so a fitted model can be handed directly to the LIME
//! explainer for the Table V experiment.

use holistix_explain::ProbabilityModel;
use holistix_linalg::{CsrMatrix, FeatureMatrix, Matrix};
use holistix_ml::{
    Classifier, GaussianNaiveBayes, LinearSvm, LinearSvmConfig, LogisticRegression,
    LogisticRegressionConfig, TextPipeline, TfidfVectorizer, VectorizerOptions,
};
use holistix_transformer::{FineTuneRecipe, ModelKind, Trainer};
use serde::{Deserialize, Serialize};

/// The nine Table IV baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BaselineKind {
    /// TF-IDF + multinomial logistic regression ("LR").
    LogisticRegression,
    /// TF-IDF + one-vs-rest linear SVM ("Linear SVM").
    LinearSvm,
    /// TF-IDF + Gaussian Naive Bayes ("Gaussian NB").
    GaussianNb,
    /// A fine-tuned transformer analogue.
    Transformer(ModelKind),
    /// A fine-tuned transformer analogue served through weight-only i8
    /// quantized inference (see `holistix-transformer`'s `quant` module). Not a
    /// Table IV row — a serving-side sibling of [`BaselineKind::Transformer`].
    QuantizedTransformer(ModelKind),
}

impl BaselineKind {
    /// All nine baselines in the order Table IV lists them.
    pub const ALL: [BaselineKind; 9] = [
        BaselineKind::LogisticRegression,
        BaselineKind::LinearSvm,
        BaselineKind::GaussianNb,
        BaselineKind::Transformer(ModelKind::Bert),
        BaselineKind::Transformer(ModelKind::DistilBert),
        BaselineKind::Transformer(ModelKind::MentalBert),
        BaselineKind::Transformer(ModelKind::FlanT5),
        BaselineKind::Transformer(ModelKind::Xlnet),
        BaselineKind::Transformer(ModelKind::Gpt2),
    ];

    /// The three classical baselines.
    pub const CLASSICAL: [BaselineKind; 3] = [
        BaselineKind::LogisticRegression,
        BaselineKind::LinearSvm,
        BaselineKind::GaussianNb,
    ];

    /// The six quantized serving siblings of the transformer rows. Not part of
    /// [`ALL`](Self::ALL): Table IV sweeps stay f64; these exist for serving
    /// and the inference benches.
    pub const QUANTIZED: [BaselineKind; 6] = [
        BaselineKind::QuantizedTransformer(ModelKind::Bert),
        BaselineKind::QuantizedTransformer(ModelKind::DistilBert),
        BaselineKind::QuantizedTransformer(ModelKind::MentalBert),
        BaselineKind::QuantizedTransformer(ModelKind::FlanT5),
        BaselineKind::QuantizedTransformer(ModelKind::Xlnet),
        BaselineKind::QuantizedTransformer(ModelKind::Gpt2),
    ];

    /// The paper's row label (quantized kinds append `-i8`).
    pub fn name(&self) -> String {
        match self {
            BaselineKind::LogisticRegression => "LR".to_string(),
            BaselineKind::LinearSvm => "Linear SVM".to_string(),
            BaselineKind::GaussianNb => "Gaussian NB".to_string(),
            BaselineKind::Transformer(kind) => kind.name().to_string(),
            BaselineKind::QuantizedTransformer(kind) => format!("{}-i8", kind.name()),
        }
    }

    /// Whether the baseline is a transformer (quantized or not).
    pub fn is_transformer(&self) -> bool {
        matches!(
            self,
            BaselineKind::Transformer(_) | BaselineKind::QuantizedTransformer(_)
        )
    }

    /// Coarse scorer family, the `scorer_kind` label in the serving metrics.
    pub fn scorer_family(&self) -> &'static str {
        match self {
            BaselineKind::LogisticRegression
            | BaselineKind::LinearSvm
            | BaselineKind::GaussianNb => "classical",
            BaselineKind::Transformer(_) => "transformer",
            BaselineKind::QuantizedTransformer(_) => "quantized",
        }
    }
}

/// How much compute to spend on training. The `Paper` profile follows the paper's
/// hyper-parameters; `Fast` shrinks the transformers so full-table sweeps finish in a
/// benchmark run; `Tiny` is for unit and integration tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpeedProfile {
    /// Paper-faithful hyper-parameters (10 epochs, full-size analogues).
    Paper,
    /// Reduced-cost profile preserving relative model ordering.
    Fast,
    /// Minimal profile for tests.
    Tiny,
}

/// A trained classical classifier (the three scikit-learn-style baselines).
#[derive(Debug, Clone)]
pub enum ClassicalClassifier {
    /// Multinomial logistic regression.
    LogisticRegression(LogisticRegression),
    /// One-vs-rest linear SVM.
    LinearSvm(LinearSvm),
    /// Gaussian Naive Bayes.
    GaussianNb(GaussianNaiveBayes),
}

impl ClassicalClassifier {
    fn as_classifier(&self) -> &(dyn Classifier + Sync) {
        match self {
            ClassicalClassifier::LogisticRegression(m) => m,
            ClassicalClassifier::LinearSvm(m) => m,
            ClassicalClassifier::GaussianNb(m) => m,
        }
    }
}

/// Texts per scoring batch: large enough to amortise per-batch overhead, small
/// enough that a LIME perturbation set (200 samples) spreads across threads.
const SCORE_BATCH: usize = 64;

/// Split `texts` into at most `available_parallelism` contiguous chunks of at
/// least [`SCORE_BATCH`] texts, score each chunk on a crossbeam scoped thread
/// (the same pattern `holistix_ml::cv` uses for folds), and return the per-chunk
/// results in order. Each chunk is vectorised to CSR and scored independently;
/// since every row's features and scores depend only on that row's text, the
/// result is bit-for-bit identical to scoring texts one at a time.
fn score_chunked<T, F>(texts: &[&str], score: F) -> Vec<T>
where
    T: Send,
    F: Fn(&[&str]) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if texts.len() <= SCORE_BATCH || threads < 2 {
        return vec![score(texts)];
    }
    let n_chunks = threads.min(texts.len().div_ceil(SCORE_BATCH));
    let chunk_size = texts.len().div_ceil(n_chunks);
    let chunks: Vec<&[&str]> = texts.chunks(chunk_size).collect();
    let mut results: Vec<Option<T>> = chunks.iter().map(|_| None).collect();
    let score = &score;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| scope.spawn(move |_| score(chunk)))
            .collect();
        for (slot, handle) in results.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("batched scoring thread panicked"));
        }
    })
    .expect("batched scoring thread scope failed");
    results
        .into_iter()
        .map(|r| r.expect("missing chunk result"))
        .collect()
}

/// Class probabilities for classical baselines: sparse vectorisation + sparse
/// scoring, parallel across chunks.
fn classical_predict_proba(
    vectorizer: &TfidfVectorizer,
    classifier: &ClassicalClassifier,
    texts: &[&str],
) -> Matrix {
    let blocks = score_chunked(texts, |chunk| {
        let features = FeatureMatrix::Sparse(vectorizer.transform_sparse(chunk));
        classifier.as_classifier().predict_proba_features(&features)
    });
    let refs: Vec<&Matrix> = blocks.iter().collect();
    Matrix::vstack(&refs)
}

/// Hard predictions for classical baselines, batched and parallel like
/// [`classical_predict_proba`].
fn classical_predict(
    vectorizer: &TfidfVectorizer,
    classifier: &ClassicalClassifier,
    texts: &[&str],
) -> Vec<usize> {
    score_chunked(texts, |chunk| {
        let features = FeatureMatrix::Sparse(vectorizer.transform_sparse(chunk));
        classifier.as_classifier().predict_features(&features)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// A fitted baseline: ready to predict and to be explained with LIME.
pub enum FittedBaseline {
    /// TF-IDF features + a classical classifier. The vectoriser is boxed for
    /// the same reason the trainer below is: fitted baselines move through
    /// registries and CV fold vectors by value, so the enum stays pointer-thin.
    Classical {
        /// Which baseline this is.
        kind: BaselineKind,
        /// The vectoriser fitted on the training split.
        vectorizer: Box<TfidfVectorizer>,
        /// The trained classifier.
        classifier: ClassicalClassifier,
    },
    /// A fine-tuned transformer analogue. Boxed: the trainer (model, Adam
    /// state, batch scratch) dwarfs the classical variant, and fitted
    /// baselines move through registries and CV fold vectors by value.
    Transformer {
        /// The trainer holding the fitted model.
        trainer: Box<Trainer>,
    },
}

impl FittedBaseline {
    /// Number of epochs the classical SGD classifiers train for under each profile.
    fn classical_epochs(profile: SpeedProfile) -> usize {
        match profile {
            SpeedProfile::Paper => 200,
            SpeedProfile::Fast => 120,
            SpeedProfile::Tiny => 60,
        }
    }

    /// The transformer recipe for a kind under a profile. `pub(crate)` so the
    /// [`crate::scorer::TransformerScorer`] fit path trains the same analogue
    /// the [`FittedBaseline::Transformer`] arm would.
    pub(crate) fn transformer_recipe(
        kind: ModelKind,
        profile: SpeedProfile,
        seed: u64,
    ) -> FineTuneRecipe {
        match profile {
            SpeedProfile::Paper => FineTuneRecipe::paper(kind, 6, seed),
            SpeedProfile::Fast => FineTuneRecipe::fast(kind, 6, seed),
            SpeedProfile::Tiny => {
                let mut recipe = FineTuneRecipe::fast(kind, 6, seed);
                recipe.model.hidden_dim = 16;
                recipe.model.n_heads = 2;
                recipe.model.ff_dim = 32;
                recipe.model.max_len = 16;
                recipe.model.dropout = 0.0;
                recipe.finetune.epochs = 2;
                recipe.finetune.subword_vocab_size = 400;
                if let Some(pretrain) = &mut recipe.finetune.pretrain {
                    pretrain.epochs = 1;
                    pretrain.max_sequences = Some(40);
                }
                recipe
            }
        }
    }

    /// Train a baseline on raw texts and dense labels (single-shard case of
    /// [`fit_with_threads`](Self::fit_with_threads)).
    pub fn fit(
        kind: BaselineKind,
        profile: SpeedProfile,
        texts: &[&str],
        labels: &[usize],
        seed: u64,
    ) -> Self {
        Self::fit_with_threads(kind, profile, texts, labels, seed, 1)
    }

    /// Train a baseline with the classical feature fit sharded across
    /// `n_threads` threads (the map-reduce fit of
    /// [`TfidfVectorizer::fit_transform_sparse_parallel`], one tokenisation
    /// pass). Fitted models are bit-identical for every `n_threads`.
    /// Transformer baselines ignore the knob — their training loop is
    /// epoch-sequential by construction.
    pub fn fit_with_threads(
        kind: BaselineKind,
        profile: SpeedProfile,
        texts: &[&str],
        labels: &[usize],
        seed: u64,
        n_threads: usize,
    ) -> Self {
        assert_eq!(texts.len(), labels.len(), "texts/labels length mismatch");
        assert!(
            !texts.is_empty(),
            "cannot fit a baseline on an empty training set"
        );
        match kind {
            BaselineKind::Transformer(model_kind)
            | BaselineKind::QuantizedTransformer(model_kind) => {
                // The quantized kind trains the same f64 model; quantization is a
                // serving-time transform (`QuantizedScorer` in `scorer`).
                let mut trainer = Self::transformer_recipe(model_kind, profile, seed).build();
                trainer.fit(texts, labels);
                FittedBaseline::Transformer {
                    trainer: Box::new(trainer),
                }
            }
            classical => {
                // CSR end to end: the dense documents × vocabulary grid is never
                // materialised, for training or for any later prediction — and the
                // fit tokenises the corpus exactly once.
                let (vectorizer, features) = TfidfVectorizer::fit_transform_sparse_parallel(
                    texts,
                    VectorizerOptions::paper_default(),
                    n_threads,
                );
                let features = FeatureMatrix::Sparse(features);
                let epochs = Self::classical_epochs(profile);
                let classifier = match classical {
                    BaselineKind::LogisticRegression => {
                        let mut model = LogisticRegression::new(LogisticRegressionConfig {
                            epochs,
                            seed,
                            ..LogisticRegressionConfig::default()
                        });
                        model.fit_features(&features, labels);
                        ClassicalClassifier::LogisticRegression(model)
                    }
                    BaselineKind::LinearSvm => {
                        let mut model = LinearSvm::new(LinearSvmConfig {
                            epochs,
                            seed,
                            ..LinearSvmConfig::default()
                        });
                        model.fit_features(&features, labels);
                        ClassicalClassifier::LinearSvm(model)
                    }
                    BaselineKind::GaussianNb => {
                        let mut model = GaussianNaiveBayes::default_config();
                        model.fit_features(&features, labels);
                        ClassicalClassifier::GaussianNb(model)
                    }
                    BaselineKind::Transformer(_) | BaselineKind::QuantizedTransformer(_) => {
                        unreachable!("handled above")
                    }
                };
                FittedBaseline::Classical {
                    kind: classical,
                    vectorizer: Box::new(vectorizer),
                    classifier,
                }
            }
        }
    }

    /// The Table IV row label of the fitted model.
    pub fn name(&self) -> String {
        match self {
            FittedBaseline::Classical { kind, .. } => kind.name(),
            FittedBaseline::Transformer { trainer } => trainer.kind().name().to_string(),
        }
    }

    /// Hard class predictions for texts. Classical baselines vectorise to CSR and
    /// score in parallel batches; large inputs (CV test folds, LIME perturbation
    /// sets) fan out across threads with bit-identical results.
    pub fn predict(&self, texts: &[&str]) -> Vec<usize> {
        match self {
            FittedBaseline::Classical {
                vectorizer,
                classifier,
                ..
            } => classical_predict(vectorizer, classifier, texts),
            FittedBaseline::Transformer { trainer } => trainer.predict(texts),
        }
    }

    /// Class-probability vectors for texts (always 6 columns, padded if a training
    /// fold happened to miss a class). Classical baselines use the batched
    /// parallel sparse path of [`predict`](Self::predict).
    pub fn probabilities(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        match self {
            FittedBaseline::Classical {
                vectorizer,
                classifier,
                ..
            } => {
                let proba = classical_predict_proba(vectorizer, classifier, texts);
                (0..proba.rows())
                    .map(|r| {
                        let mut row = proba.row(r).to_vec();
                        row.resize(6, 0.0);
                        row
                    })
                    .collect()
            }
            FittedBaseline::Transformer { trainer } => {
                texts.iter().map(|t| trainer.predict_proba(t)).collect()
            }
        }
    }

    /// Convenience: probability vector for one text.
    pub fn probabilities_one(&self, text: &str) -> Vec<f64> {
        self.probabilities(&[text])
            .into_iter()
            .next()
            .unwrap_or_else(|| vec![0.0; 6])
    }
}

impl ProbabilityModel for FittedBaseline {
    fn predict_proba(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        self.probabilities(texts)
    }

    fn n_classes(&self) -> usize {
        6
    }
}

/// Adapter that lets any [`BaselineKind`] run inside the `holistix-ml`
/// cross-validation driver (one fresh model per fold).
pub struct BaselinePipeline {
    kind: BaselineKind,
    profile: SpeedProfile,
    seed: u64,
    fit_threads: usize,
    fitted: Option<FittedBaseline>,
}

impl BaselinePipeline {
    /// A new, unfitted pipeline.
    pub fn new(kind: BaselineKind, profile: SpeedProfile, seed: u64) -> Self {
        Self {
            kind,
            profile,
            seed,
            fit_threads: 1,
            fitted: None,
        }
    }

    /// Shard the classical feature fit across `n_threads` threads. This is the
    /// experiment-pipeline knob for the sharded fit; the cross-validation
    /// driver also sets it per fold from its [`ThreadBudget`](holistix_ml::ThreadBudget).
    pub fn with_fit_threads(mut self, n_threads: usize) -> Self {
        self.fit_threads = n_threads.max(1);
        self
    }

    /// The fitted baseline, if `fit` has run.
    pub fn fitted(&self) -> Option<&FittedBaseline> {
        self.fitted.as_ref()
    }

    /// The baseline kind.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }
}

impl TextPipeline for BaselinePipeline {
    fn fit(&mut self, texts: &[&str], labels: &[usize]) {
        self.fitted = Some(FittedBaseline::fit_with_threads(
            self.kind,
            self.profile,
            texts,
            labels,
            self.seed,
            self.fit_threads,
        ));
    }

    fn predict(&self, texts: &[&str]) -> Vec<usize> {
        self.fitted
            .as_ref()
            .expect("BaselinePipeline::predict called before fit")
            .predict(texts)
    }

    fn name(&self) -> String {
        self.kind.name()
    }

    fn set_fit_threads(&mut self, n_threads: usize) {
        self.fit_threads = n_threads.max(1);
    }
}

/// Convenience for the LIME explainer when only raw probability closures are handy:
/// wraps a `Fn(&str) -> Vec<f64>`.
pub struct FnProbabilityModel<F: Fn(&str) -> Vec<f64>> {
    function: F,
    n_classes: usize,
}

impl<F: Fn(&str) -> Vec<f64>> FnProbabilityModel<F> {
    /// Wrap a closure.
    pub fn new(function: F, n_classes: usize) -> Self {
        Self {
            function,
            n_classes,
        }
    }
}

impl<F: Fn(&str) -> Vec<f64>> ProbabilityModel for FnProbabilityModel<F> {
    fn predict_proba(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        texts.iter().map(|t| (self.function)(t)).collect()
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// Dense feature matrix helper shared by ablation benches: TF-IDF transform of texts
/// with the paper-default options. Production code paths use
/// [`tfidf_features_sparse`]; this dense variant exists for benches that measure
/// the dense/sparse gap and for ablation studies over raw matrices.
pub fn tfidf_features(texts: &[&str]) -> (TfidfVectorizer, Matrix) {
    let vectorizer = TfidfVectorizer::fit(texts, VectorizerOptions::paper_default());
    let features = vectorizer.transform(texts);
    (vectorizer, features)
}

/// Sparse counterpart of [`tfidf_features`]: CSR TF-IDF of texts with the
/// paper-default options, never allocating the dense grid.
pub fn tfidf_features_sparse(texts: &[&str]) -> (TfidfVectorizer, CsrMatrix) {
    let vectorizer = TfidfVectorizer::fit(texts, VectorizerOptions::paper_default());
    let features = vectorizer.transform_sparse(texts);
    (vectorizer, features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistix_corpus::HolistixCorpus;

    fn training_data(n: usize, seed: u64) -> (Vec<String>, Vec<usize>) {
        let corpus = HolistixCorpus::generate_small(n, seed);
        (
            corpus.posts.iter().map(|p| p.post.text.clone()).collect(),
            corpus.label_indices(),
        )
    }

    #[test]
    fn registry_names_match_table4_rows() {
        let names: Vec<String> = BaselineKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "LR",
                "Linear SVM",
                "Gaussian NB",
                "BERT",
                "DistilBERT",
                "MentalBERT",
                "Flan-T5",
                "XLNet",
                "GPT-2.0"
            ]
        );
        assert!(BaselineKind::Transformer(ModelKind::Bert).is_transformer());
        assert!(!BaselineKind::LogisticRegression.is_transformer());
    }

    #[test]
    fn classical_baselines_fit_and_predict() {
        let (texts, labels) = training_data(120, 3);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        for kind in BaselineKind::CLASSICAL {
            let fitted = FittedBaseline::fit(kind, SpeedProfile::Tiny, &refs, &labels, 1);
            let preds = fitted.predict(&refs[..10]);
            assert_eq!(preds.len(), 10);
            assert!(preds.iter().all(|&p| p < 6));
            let proba = fitted.probabilities(&refs[..3]);
            assert!(proba.iter().all(|p| p.len() == 6));
            assert_eq!(fitted.name(), kind.name());
        }
    }

    #[test]
    fn transformer_baseline_fits_under_tiny_profile() {
        let (texts, labels) = training_data(60, 5);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let fitted = FittedBaseline::fit(
            BaselineKind::Transformer(ModelKind::DistilBert),
            SpeedProfile::Tiny,
            &refs,
            &labels,
            2,
        );
        let proba = fitted.probabilities_one(refs[0]);
        assert_eq!(proba.len(), 6);
        assert!((proba.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert_eq!(fitted.name(), "DistilBERT");
    }

    #[test]
    fn pipeline_adapter_plugs_into_cross_validation() {
        use holistix_corpus::splits::kfold_stratified;
        use holistix_ml::cross_validate;
        let (texts, labels) = training_data(150, 7);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let folds = kfold_stratified(&labels, 6, 3, 1);
        let report = cross_validate(
            &refs,
            &labels,
            6,
            &folds,
            || BaselinePipeline::new(BaselineKind::LogisticRegression, SpeedProfile::Tiny, 1),
            true,
        );
        assert_eq!(report.model_name, "LR");
        assert!(report.averaged.accuracy > 0.35);
    }

    #[test]
    fn fitted_baseline_is_a_probability_model() {
        let (texts, labels) = training_data(80, 9);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let fitted = FittedBaseline::fit(
            BaselineKind::LogisticRegression,
            SpeedProfile::Tiny,
            &refs,
            &labels,
            1,
        );
        let model: &dyn ProbabilityModel = &fitted;
        assert_eq!(model.n_classes(), 6);
        let proba = model.predict_proba(&[refs[0]]);
        assert!((proba[0].iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fn_probability_model_wraps_closures() {
        let model = FnProbabilityModel::new(|_t| vec![0.5, 0.5], 2);
        assert_eq!(model.n_classes(), 2);
        assert_eq!(model.predict_proba(&["x"]).len(), 1);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn pipeline_predict_before_fit_panics() {
        let pipeline = BaselinePipeline::new(BaselineKind::GaussianNb, SpeedProfile::Tiny, 1);
        let _ = pipeline.predict(&["text"]);
    }

    /// The acceptance bar for the batched parallel scorer: a large batch (forcing
    /// the multi-threaded chunked path) must reproduce one-text-at-a-time scoring
    /// bit for bit, for every classical baseline.
    #[test]
    fn batched_parallel_scoring_matches_single_text_bitwise() {
        let (texts, labels) = training_data(420, 17);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        for kind in BaselineKind::CLASSICAL {
            let fitted =
                FittedBaseline::fit(kind, SpeedProfile::Tiny, &refs[..200], &labels[..200], 3);
            let batched = fitted.probabilities(&refs);
            assert_eq!(batched.len(), refs.len());
            for (i, text) in refs.iter().enumerate().step_by(29) {
                let single = fitted.probabilities_one(text);
                assert_eq!(batched[i], single, "{} row {i} diverged", kind.name());
            }
            let batched_preds = fitted.predict(&refs);
            for (i, text) in refs.iter().enumerate().step_by(41) {
                assert_eq!(batched_preds[i], fitted.predict(&[text])[0]);
            }
        }
    }

    #[test]
    fn sharded_fit_produces_bit_identical_baselines() {
        let (texts, labels) = training_data(140, 11);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        for kind in BaselineKind::CLASSICAL {
            let sequential = FittedBaseline::fit(kind, SpeedProfile::Tiny, &refs, &labels, 5);
            let expected = sequential.probabilities(&refs[..12]);
            for n_threads in [2, 4] {
                let sharded = FittedBaseline::fit_with_threads(
                    kind,
                    SpeedProfile::Tiny,
                    &refs,
                    &labels,
                    5,
                    n_threads,
                );
                assert_eq!(
                    sharded.probabilities(&refs[..12]),
                    expected,
                    "{} diverged at {n_threads} fit shards",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn sparse_and_dense_feature_helpers_agree() {
        let (texts, _) = training_data(60, 23);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let (_, dense) = tfidf_features(&refs);
        let (_, sparse) = tfidf_features_sparse(&refs);
        assert_eq!(sparse.to_dense(), dense);
        assert!(
            sparse.density() < 0.2,
            "synthetic posts should be sparse, got {}",
            sparse.density()
        );
    }
}
