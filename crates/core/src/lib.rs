//! # holistix
//!
//! The top-level crate of the Holistix reproduction: a complete, from-scratch Rust
//! implementation of the systems behind *"Holistix: A Dataset for Holistic Wellness
//! Dimensions Analysis in Mental Health Narratives"* (ICDE 2025).
//!
//! The paper introduces a 1,420-post mental-health forum corpus annotated with six
//! wellness dimensions (Intellectual, Vocational, Spiritual, Physical, Social,
//! Emotional) plus explanatory text spans, and evaluates nine classification baselines
//! with 10-fold cross-validation and LIME-based explanation quality. This crate ties
//! the substrate crates together and exposes:
//!
//! * [`pipeline`] — the unified baseline registry ([`BaselineKind`]) covering the
//!   three classical models and six transformer analogues, a single
//!   [`BaselinePipeline`] type that plugs into the cross-validation driver, and the
//!   fitted-model type used for prediction and LIME explanation;
//! * [`scorer`] — the object-safe [`Scorer`] trait every servable model implements
//!   (batched probabilities + kind + cost hint), the seam the `holistix-serve`
//!   registry and per-kind batch queues are built on, with implementations for
//!   [`FittedBaseline`] and the trainer-wrapping [`TransformerScorer`];
//! * [`experiments`] — one runner per table/figure of the paper: dataset statistics
//!   (Table II), frequent span words (Table III), the baseline comparison (Table IV),
//!   LIME explanation quality (Table V), the inter-annotator agreement study (§II-E /
//!   Fig. 2) and the single-post walkthrough of Fig. 1;
//! * re-exports of the substrate crates, so `use holistix::prelude::*` is enough for
//!   most applications.
//!
//! ## Performance architecture
//!
//! The classical-baseline stack is built around two decisions that let it scale far
//! past the paper's 1,420 posts:
//!
//! 1. **Sparse features end to end.** TF-IDF design matrices are >99% zeros at
//!    realistic vocabulary sizes, so `holistix_ml`'s vectorisers build
//!    [`linalg::CsrMatrix`](holistix_linalg::CsrMatrix) rows directly from token
//!    counts (`transform_sparse`) and the three classical classifiers train and
//!    score over [`linalg::FeatureMatrix`](holistix_linalg::FeatureMatrix) without
//!    ever materialising the dense `documents × vocabulary` grid. Within a row,
//!    CSR stores entries in increasing column order, so linear operations are
//!    bit-identical to their dense counterparts — property tests in `holistix-ml`
//!    and `holistix-linalg` assert exact equality.
//!
//! 2. **Batched parallel inference.** [`FittedBaseline::predict`] and
//!    [`FittedBaseline::probabilities`] split large inputs into contiguous batches
//!    and score them on crossbeam scoped threads (the same pattern the
//!    cross-validation driver uses for folds). Each row's features and scores
//!    depend only on that row's text, so batched parallel output is bit-for-bit
//!    identical to one-text-at-a-time scoring. The LIME explainer feeds its
//!    perturbation sets (200 variants per explanation by default) through this
//!    path in chunks, which is the hot loop of the Table V reproduction.
//!
//! The `sparse_vs_dense_inference` bench in `holistix-bench` tracks the speedup of
//! this path over the dense one on a 1k-post corpus with a paper-scale (12k-term)
//! vocabulary. The `holistix-serve` crate builds the online story on top: fitted
//! baselines stay warm in a model registry and concurrent HTTP requests are
//! coalesced into scoring batches by a micro-batching scheduler, which is exactly
//! the workload the batched parallel path exists for.
//!
//! ## Quick start
//!
//! ```
//! use holistix::prelude::*;
//!
//! // A small synthetic Holistix corpus (deterministic for a seed).
//! let corpus = HolistixCorpus::generate_small(120, 42);
//!
//! // Fit the logistic-regression baseline on a stratified split.
//! let labels = corpus.label_indices();
//! let split = holistix::corpus::splits::paper_split(&labels, 6, 42);
//! let texts = corpus.texts();
//! let train_texts: Vec<&str> = split.train.iter().map(|&i| texts[i]).collect();
//! let train_labels: Vec<usize> = split.train.iter().map(|&i| labels[i]).collect();
//! let fitted = FittedBaseline::fit(
//!     BaselineKind::LogisticRegression,
//!     SpeedProfile::Tiny,
//!     &train_texts,
//!     &train_labels,
//!     42,
//! );
//!
//! // Classify one held-out post.
//! let post = &corpus.posts[split.test[0]];
//! let predicted = fitted.predict(&[post.post.text.as_str()])[0];
//! assert!(predicted < 6);
//! ```

pub mod experiments;
pub mod pipeline;
pub mod scorer;

/// Re-export of the dataset substrate.
pub use holistix_corpus as corpus;
/// Re-export of the explainability stack.
pub use holistix_explain as explain;
/// Re-export of the linear-algebra substrate.
pub use holistix_linalg as linalg;
/// Re-export of the classical-ML stack.
pub use holistix_ml as ml;
/// Re-export of the autograd engine.
pub use holistix_tensor as tensor;
/// Re-export of the text substrate.
pub use holistix_text as text;
/// Re-export of the transformer stack.
pub use holistix_transformer as transformer;

pub use experiments::{
    run_annotation_study, run_fig1_walkthrough, run_table2, run_table3, run_table4, run_table5,
    EvaluationConfig, Fig1Walkthrough, Table4Result, Table4Row, Table5Config, Table5Result,
};
pub use pipeline::{BaselineKind, BaselinePipeline, FittedBaseline, SpeedProfile};
pub use scorer::{fit_scorer, QuantizedScorer, Scorer, TransformerScorer};

/// The things most applications need.
pub mod prelude {
    pub use crate::experiments::{
        run_annotation_study, run_fig1_walkthrough, run_table2, run_table3, run_table4, run_table5,
        EvaluationConfig, Table4Result, Table5Config,
    };
    pub use crate::pipeline::{BaselineKind, BaselinePipeline, FittedBaseline, SpeedProfile};
    pub use crate::scorer::{fit_scorer, QuantizedScorer, Scorer, TransformerScorer};
    pub use holistix_corpus::{
        AnnotatedPost, CorpusStatistics, HolistixCorpus, Post, Span, WellnessDimension,
        ALL_DIMENSIONS,
    };
    pub use holistix_explain::{LimeConfig, LimeExplainer, ProbabilityModel};
    pub use holistix_ml::{ClassificationReport, Classifier};
    pub use holistix_transformer::ModelKind;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_types() {
        let corpus = HolistixCorpus::generate_small(30, 1);
        assert_eq!(corpus.class_counts().iter().sum::<usize>(), corpus.len());
        assert_eq!(ALL_DIMENSIONS.len(), 6);
        assert_eq!(BaselineKind::ALL.len(), 9);
    }
}
