//! Experiment runners: one per table and figure of the paper.
//!
//! | Runner | Paper artifact |
//! |---|---|
//! | [`run_table2`] | Table II — dataset statistics |
//! | [`run_table3`] | Table III — frequent words in explanation spans |
//! | [`run_table4`] | Table IV — baseline comparison, per-class P/R/F + accuracy over k folds |
//! | [`run_table5`] | Table V — LIME explanation quality of LR vs MentalBERT |
//! | [`run_annotation_study`] | §II-E / Fig. 2 — two-annotator study and Fleiss' κ |
//! | [`run_fig1_walkthrough`] | Fig. 1 — classify one post and surface its explanation |
//!
//! Every runner is deterministic for a given configuration, so the benchmark harness
//! and EXPERIMENTS.md report reproducible numbers.

use crate::pipeline::{BaselineKind, BaselinePipeline, FittedBaseline, SpeedProfile};
use holistix_corpus::annotation::AnnotationStudy;
use holistix_corpus::splits::{kfold_stratified, paper_split};
use holistix_corpus::{
    frequent_span_words, CorpusStatistics, FrequentWords, HolistixCorpus, WellnessDimension,
    ALL_DIMENSIONS,
};
use holistix_explain::{evaluate_explanations, ExplanationReport, LimeConfig, LimeExplainer};
use holistix_ml::{cross_validate, ClassificationReport};
use holistix_transformer::ModelKind;
use serde::{Deserialize, Serialize};
use std::fmt;

// ---------------------------------------------------------------------------------
// Table II and Table III
// ---------------------------------------------------------------------------------

/// Compute the Table II statistics of a corpus.
pub fn run_table2(corpus: &HolistixCorpus) -> CorpusStatistics {
    CorpusStatistics::compute(&corpus.posts)
}

/// Compute the Table III frequent-word analysis of a corpus.
pub fn run_table3(corpus: &HolistixCorpus) -> FrequentWords {
    frequent_span_words(&corpus.posts)
}

/// Run the §II-E annotation study (two simulated annotators + Fleiss' κ).
pub fn run_annotation_study(corpus: &HolistixCorpus, seed: u64) -> AnnotationStudy {
    AnnotationStudy::run(&corpus.posts, seed)
}

// ---------------------------------------------------------------------------------
// Table IV
// ---------------------------------------------------------------------------------

/// Configuration of the Table IV baseline comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluationConfig {
    /// Corpus size (`None` = the full 1,420 posts).
    pub corpus_size: Option<usize>,
    /// Seed for corpus generation, splits and model initialisation.
    pub seed: u64,
    /// Number of cross-validation folds (the paper uses 10).
    pub n_folds: usize,
    /// Training-cost profile.
    pub speed: SpeedProfile,
    /// Run folds on parallel threads.
    pub parallel: bool,
    /// Which baselines to evaluate (defaults to all nine).
    pub baselines: Vec<BaselineKind>,
}

impl EvaluationConfig {
    /// The paper-faithful configuration: full corpus, 10 folds, all nine baselines.
    pub fn paper() -> Self {
        Self {
            corpus_size: None,
            seed: 42,
            n_folds: 10,
            speed: SpeedProfile::Paper,
            parallel: true,
            baselines: BaselineKind::ALL.to_vec(),
        }
    }

    /// A reduced configuration that preserves the table's shape but finishes in a
    /// benchmark run: 400 posts, 5 folds, fast transformer analogues.
    pub fn fast() -> Self {
        Self {
            corpus_size: Some(400),
            seed: 42,
            n_folds: 5,
            speed: SpeedProfile::Fast,
            parallel: true,
            baselines: BaselineKind::ALL.to_vec(),
        }
    }

    /// A smoke-test configuration used by integration tests.
    pub fn smoke() -> Self {
        Self {
            corpus_size: Some(150),
            seed: 42,
            n_folds: 3,
            speed: SpeedProfile::Tiny,
            parallel: true,
            baselines: vec![
                BaselineKind::LogisticRegression,
                BaselineKind::GaussianNb,
                BaselineKind::Transformer(ModelKind::DistilBert),
            ],
        }
    }

    /// Restrict to the classical baselines only.
    pub fn classical_only(mut self) -> Self {
        self.baselines = BaselineKind::CLASSICAL.to_vec();
        self
    }

    /// Generate the corpus this configuration describes.
    pub fn build_corpus(&self) -> HolistixCorpus {
        match self.corpus_size {
            None => HolistixCorpus::generate(self.seed),
            Some(n) => HolistixCorpus::generate_small(n, self.seed),
        }
    }
}

/// One Table IV row: a model's per-class metrics averaged over folds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Model name (paper row label).
    pub model: String,
    /// Fold-averaged per-class metrics and accuracy.
    pub report: ClassificationReport,
    /// Standard deviation of accuracy across folds.
    pub accuracy_std: f64,
}

/// The full Table IV reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Result {
    /// Rows in the requested baseline order.
    pub rows: Vec<Table4Row>,
    /// Number of folds the metrics are averaged over.
    pub n_folds: usize,
    /// Number of posts in the evaluated corpus.
    pub corpus_size: usize,
}

impl Table4Result {
    /// The row for a model name, if present.
    pub fn row(&self, model: &str) -> Option<&Table4Row> {
        self.rows.iter().find(|r| r.model == model)
    }

    /// Accuracy of a model, if present.
    pub fn accuracy_of(&self, model: &str) -> Option<f64> {
        self.row(model).map(|r| r.report.accuracy)
    }

    /// Per-class F1 of a model for a wellness dimension.
    pub fn f1_of(&self, model: &str, dimension: WellnessDimension) -> Option<f64> {
        self.row(model)
            .map(|r| r.report.class(dimension.index()).f1)
    }

    /// Render the result in the shape of the paper's Table IV
    /// (per-class P, R, F plus accuracy).
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<12}",
            format!("Method ({}-fold)", self.n_folds)
        ));
        for dim in ALL_DIMENSIONS {
            s.push_str(&format!("{:>18}", dim.code()));
        }
        s.push_str(&format!("{:>8}\n", "Acc"));
        s.push_str(&format!("{:<12}", ""));
        for _ in ALL_DIMENSIONS {
            s.push_str(&format!("{:>6}{:>6}{:>6}", "P", "R", "F"));
        }
        s.push('\n');
        for row in &self.rows {
            s.push_str(&format!("{:<12}", row.model));
            for dim in ALL_DIMENSIONS {
                let m = row.report.class(dim.index());
                s.push_str(&format!(
                    "{:>6.2}{:>6.2}{:>6.2}",
                    m.precision, m.recall, m.f1
                ));
            }
            s.push_str(&format!("{:>8.2}\n", row.report.accuracy));
        }
        s
    }
}

impl fmt::Display for Table4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

/// Run the Table IV experiment: every configured baseline through stratified k-fold
/// cross-validation on a generated corpus.
pub fn run_table4(config: &EvaluationConfig) -> Table4Result {
    let corpus = config.build_corpus();
    run_table4_on(&corpus, config)
}

/// Run Table IV on an existing corpus (used when several experiments share one).
pub fn run_table4_on(corpus: &HolistixCorpus, config: &EvaluationConfig) -> Table4Result {
    let texts = corpus.texts();
    let labels = corpus.label_indices();
    let folds = kfold_stratified(&labels, 6, config.n_folds, config.seed);
    let mut rows = Vec::with_capacity(config.baselines.len());
    for &kind in &config.baselines {
        let cv = cross_validate(
            &texts,
            &labels,
            6,
            &folds,
            || BaselinePipeline::new(kind, config.speed, config.seed),
            config.parallel,
        );
        rows.push(Table4Row {
            model: kind.name(),
            accuracy_std: cv.accuracy_std(),
            report: cv.averaged,
        });
    }
    Table4Result {
        rows,
        n_folds: config.n_folds,
        corpus_size: corpus.len(),
    }
}

// ---------------------------------------------------------------------------------
// Table V
// ---------------------------------------------------------------------------------

/// Configuration of the Table V explainability experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Config {
    /// Corpus size (`None` = full 1,420 posts).
    pub corpus_size: Option<usize>,
    /// Seed for corpus, split and LIME sampling.
    pub seed: u64,
    /// Training-cost profile for the two models.
    pub speed: SpeedProfile,
    /// How many held-out posts to explain.
    pub n_explanations: usize,
    /// Number of LIME keywords compared against the gold span.
    pub top_k: usize,
    /// LIME sampling configuration.
    pub lime: LimeConfig,
    /// Which baselines to explain (the paper uses LR and MentalBERT).
    pub models: Vec<BaselineKind>,
}

impl Table5Config {
    /// The paper setup: LR and fine-tuned MentalBERT explained on the test split.
    pub fn paper() -> Self {
        Self {
            corpus_size: None,
            seed: 42,
            speed: SpeedProfile::Paper,
            n_explanations: 100,
            top_k: 5,
            lime: LimeConfig::default(),
            models: vec![
                BaselineKind::LogisticRegression,
                BaselineKind::Transformer(ModelKind::MentalBert),
            ],
        }
    }

    /// Reduced configuration for benches.
    pub fn fast() -> Self {
        Self {
            corpus_size: Some(400),
            speed: SpeedProfile::Fast,
            n_explanations: 40,
            lime: LimeConfig {
                n_samples: 120,
                ..LimeConfig::default()
            },
            ..Self::paper()
        }
    }

    /// Minimal configuration for integration tests.
    pub fn smoke() -> Self {
        Self {
            corpus_size: Some(120),
            speed: SpeedProfile::Tiny,
            n_explanations: 8,
            lime: LimeConfig {
                n_samples: 60,
                ..LimeConfig::default()
            },
            models: vec![BaselineKind::LogisticRegression],
            ..Self::paper()
        }
    }
}

/// The Table V reproduction: one explanation-quality report per explained model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Result {
    /// Reports in the order the models were configured.
    pub reports: Vec<ExplanationReport>,
    /// Number of explanations each report averages over.
    pub n_explanations: usize,
}

impl Table5Result {
    /// The report for a model name, if present.
    pub fn report_for(&self, model: &str) -> Option<&ExplanationReport> {
        self.reports.iter().find(|r| r.model_name == model)
    }

    /// Render in the shape of the paper's Table V.
    pub fn to_table(&self) -> String {
        let mut s = String::from("Method       F1-score  Precision   Recall    ROUGE     BLEU\n");
        for report in &self.reports {
            s.push_str(&report.to_table_row());
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for Table5Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

/// Run the Table V experiment: train the configured models on the paper split, explain
/// held-out posts with LIME, and score the explanations against gold spans.
pub fn run_table5(config: &Table5Config) -> Table5Result {
    let corpus = match config.corpus_size {
        None => HolistixCorpus::generate(config.seed),
        Some(n) => HolistixCorpus::generate_small(n, config.seed),
    };
    run_table5_on(&corpus, config)
}

/// Run Table V on an existing corpus.
pub fn run_table5_on(corpus: &HolistixCorpus, config: &Table5Config) -> Table5Result {
    let labels = corpus.label_indices();
    let texts = corpus.texts();
    let split = paper_split(&labels, 6, config.seed);
    let train_texts: Vec<&str> = split.train.iter().map(|&i| texts[i]).collect();
    let train_labels: Vec<usize> = split.train.iter().map(|&i| labels[i]).collect();
    let explain_indices: Vec<usize> = split
        .test
        .iter()
        .copied()
        .take(config.n_explanations)
        .collect();

    let explainer = LimeExplainer::new(config.lime.clone());
    let mut reports = Vec::with_capacity(config.models.len());
    for &kind in &config.models {
        let fitted =
            FittedBaseline::fit(kind, config.speed, &train_texts, &train_labels, config.seed);
        let items: Vec<(Vec<String>, String)> = explain_indices
            .iter()
            .map(|&i| {
                let post = &corpus.posts[i];
                let explanation = explainer.explain(&fitted, &post.post.text, None);
                (
                    explanation.top_tokens(config.top_k),
                    post.span_text().to_string(),
                )
            })
            .collect();
        reports.push(evaluate_explanations(&kind.name(), &items));
    }
    Table5Result {
        reports,
        n_explanations: explain_indices.len(),
    }
}

// ---------------------------------------------------------------------------------
// Fig. 1
// ---------------------------------------------------------------------------------

/// The single-post walkthrough of Fig. 1: a post is classified into a wellness
/// dimension and its decisive keywords are surfaced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Walkthrough {
    /// The post text.
    pub text: String,
    /// The gold wellness dimension.
    pub gold: WellnessDimension,
    /// The model's predicted dimension.
    pub predicted: WellnessDimension,
    /// The model's class probabilities (table order).
    pub probabilities: Vec<f64>,
    /// LIME's top keywords for the predicted class.
    pub explanation_keywords: Vec<String>,
    /// The gold explanation span.
    pub gold_span: String,
}

impl fmt::Display for Fig1Walkthrough {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Post: {}", self.text)?;
        writeln!(f, "Gold dimension:      {}", self.gold.name())?;
        writeln!(f, "Predicted dimension: {}", self.predicted.name())?;
        writeln!(f, "Gold span:           {}", self.gold_span)?;
        writeln!(
            f,
            "LIME keywords:       {}",
            self.explanation_keywords.join(", ")
        )
    }
}

/// Run the Fig. 1 walkthrough: train a logistic-regression baseline on a small corpus
/// and classify + explain one held-out post.
pub fn run_fig1_walkthrough(seed: u64) -> Fig1Walkthrough {
    let corpus = HolistixCorpus::generate_small(240, seed);
    let labels = corpus.label_indices();
    let texts = corpus.texts();
    let split = paper_split(&labels, 6, seed);
    let train_texts: Vec<&str> = split.train.iter().map(|&i| texts[i]).collect();
    let train_labels: Vec<usize> = split.train.iter().map(|&i| labels[i]).collect();
    let fitted = FittedBaseline::fit(
        BaselineKind::LogisticRegression,
        SpeedProfile::Fast,
        &train_texts,
        &train_labels,
        seed,
    );
    let post = &corpus.posts[split.test[0]];
    let probabilities = fitted.probabilities_one(&post.post.text);
    let predicted =
        WellnessDimension::from_index(holistix_linalg::argmax(&probabilities).unwrap_or(0));
    let explainer = LimeExplainer::default_config();
    let explanation = explainer.explain(&fitted, &post.post.text, None);
    Fig1Walkthrough {
        text: post.post.text.clone(),
        gold: post.label,
        predicted,
        probabilities,
        explanation_keywords: explanation.top_tokens(5),
        gold_span: post.span_text().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_and_table3_run_on_a_small_corpus() {
        let corpus = HolistixCorpus::generate_small(150, 3);
        let stats = run_table2(&corpus);
        assert_eq!(stats.total_posts, corpus.len());
        let words = run_table3(&corpus);
        assert_eq!(words.by_dimension.len(), 6);
    }

    #[test]
    fn annotation_study_reports_reasonable_kappa() {
        let corpus = HolistixCorpus::generate_small(300, 5);
        let study = run_annotation_study(&corpus, 7);
        assert!(study.agreement.fleiss_kappa > 0.5);
        assert!(study.agreement.fleiss_kappa < 1.0);
    }

    #[test]
    fn table4_smoke_configuration_produces_expected_rows() {
        let result = run_table4(&EvaluationConfig::smoke());
        assert_eq!(result.rows.len(), 3);
        assert_eq!(result.n_folds, 3);
        assert!(result.accuracy_of("LR").unwrap() > 0.3);
        assert!(result.to_table().contains("Gaussian NB"));
        assert!(result.f1_of("LR", WellnessDimension::Social).is_some());
    }

    #[test]
    fn table5_smoke_configuration_produces_a_report() {
        let result = run_table5(&Table5Config::smoke());
        assert_eq!(result.reports.len(), 1);
        let report = result.report_for("LR").unwrap();
        assert!(report.n_items > 0);
        assert!(report.f1 >= 0.0 && report.f1 <= 1.0);
        assert!(result.to_table().contains("F1-score"));
    }

    #[test]
    fn fig1_walkthrough_is_complete_and_deterministic() {
        let a = run_fig1_walkthrough(11);
        let b = run_fig1_walkthrough(11);
        assert_eq!(a, b);
        assert!(!a.text.is_empty());
        assert!(!a.gold_span.is_empty());
        assert_eq!(a.probabilities.len(), 6);
        assert!(a.to_string().contains("Predicted dimension"));
    }
}
