//! The unified inference seam: one object-safe trait every servable model
//! implements.
//!
//! The serving layer (`holistix-serve`) used to be hard-wired to
//! [`FittedBaseline`]: its registry, batcher and handlers all named the
//! concrete type, so heterogeneous backends (a classical sparse pipeline next
//! to a transformer analogue) could not share the stack, and there was no seam
//! for per-model batch queues. [`Scorer`] is that seam:
//!
//! * [`probabilities`](Scorer::probabilities) — the one batched entry point;
//!   every row depends only on that row's text, so batched output is
//!   bit-for-bit identical to text-at-a-time scoring (the property the
//!   micro-batcher relies on);
//! * [`labels`](Scorer::labels) — the class labels the probability columns map
//!   to (the six wellness-dimension codes for every paper model);
//! * [`kind`](Scorer::kind) — which Table IV baseline the scorer serves, the
//!   registry key;
//! * [`cost_hint`](Scorer::cost_hint) — expected per-text scoring latency, the
//!   knob per-kind batch queues size their drain windows from (a ~50 ms
//!   transformer batch wants a wider coalescing window than a ~200 µs LR one).
//!
//! Two implementations ship here: [`FittedBaseline`] (classical sparse path
//! *and* the trainer-backed transformer arm) and [`TransformerScorer`], a thin
//! scorer around a fine-tuned [`Trainer`] from `holistix-transformer` for
//! deployments that train transformers outside the baseline pipeline. Any
//! future backend (distilled models, remote scorers, quantised analogues)
//! plugs into serving by implementing this trait — nothing in
//! `holistix-serve` names a concrete model type anymore.

use crate::pipeline::{BaselineKind, FittedBaseline, SpeedProfile};
use holistix_corpus::ALL_DIMENSIONS;
use holistix_explain::ProbabilityModel;
use holistix_transformer::{ModelKind, QuantizedTransformer, Trainer};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An object-safe, thread-shareable scorer: the only interface the serving
/// stack (registry, batch queues, explain handlers) knows about.
pub trait Scorer: Send + Sync {
    /// Class-probability vectors, one row of 6 per text. Rows must depend only
    /// on their own text, so batching never changes answers.
    fn probabilities(&self, texts: &[&str]) -> Vec<Vec<f64>>;

    /// Which Table IV baseline this scorer serves (the registry key).
    fn kind(&self) -> BaselineKind;

    /// Expected per-text scoring latency, used to size the scorer's batch
    /// queue: expensive scorers get wider coalescing windows because waiting
    /// a little longer is cheap relative to their batch service time.
    fn cost_hint(&self) -> Duration;

    /// The class labels the probability columns map to, in column order. Every
    /// paper model scores the six wellness dimensions; a scorer for a
    /// different label space overrides this.
    fn labels(&self) -> Vec<String> {
        ALL_DIMENSIONS
            .iter()
            .map(|d| d.code().to_string())
            .collect()
    }

    /// Convenience: the probability row for one text.
    fn probabilities_one(&self, text: &str) -> Vec<f64> {
        self.probabilities(&[text])
            .into_iter()
            .next()
            .unwrap_or_else(|| vec![0.0; self.labels().len()])
    }
}

/// Any scorer is a LIME-explainable probability model, so `/explain` works
/// against `Arc<dyn Scorer>` without knowing the backend. The class count
/// comes from [`labels`](Scorer::labels), so a scorer with a non-paper label
/// space explains consistently too.
impl ProbabilityModel for dyn Scorer {
    fn predict_proba(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        self.probabilities(texts)
    }

    fn n_classes(&self) -> usize {
        self.labels().len()
    }
}

/// Expected per-text latency of the classical sparse path (vectorise one row,
/// one sparse dot per class): order of a few hundred microseconds.
pub(crate) const CLASSICAL_COST_HINT: Duration = Duration::from_micros(200);

/// Expected per-text latency of a transformer analogue forward pass: order of
/// tens of milliseconds.
pub(crate) const TRANSFORMER_COST_HINT: Duration = Duration::from_millis(50);

impl Scorer for FittedBaseline {
    fn probabilities(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        FittedBaseline::probabilities(self, texts)
    }

    fn kind(&self) -> BaselineKind {
        match self {
            FittedBaseline::Classical { kind, .. } => *kind,
            FittedBaseline::Transformer { trainer } => BaselineKind::Transformer(trainer.kind()),
        }
    }

    fn cost_hint(&self) -> Duration {
        match self {
            FittedBaseline::Classical { .. } => CLASSICAL_COST_HINT,
            FittedBaseline::Transformer { .. } => TRANSFORMER_COST_HINT,
        }
    }
}

/// A scorer around a fine-tuned transformer [`Trainer`] from
/// `holistix-transformer`.
///
/// [`FittedBaseline`] can already hold a trainer, but only by going through
/// the baseline fit pipeline. This wrapper is the seam for transformers
/// trained elsewhere — a zoo checkpoint, a custom fine-tune, an
/// experiment's survivor — to serve behind the same registry and batch
/// queues as everything else.
pub struct TransformerScorer {
    trainer: Trainer,
}

impl TransformerScorer {
    /// Wrap an already fine-tuned trainer. Panics if the trainer has not been
    /// fitted — an unfitted scorer would panic on its first request instead.
    pub fn from_trainer(trainer: Trainer) -> Self {
        assert!(
            trainer.model().is_some(),
            "TransformerScorer requires a fitted Trainer"
        );
        Self { trainer }
    }

    /// Fine-tune a fresh analogue of `model_kind` under `profile` and wrap it.
    /// Uses the same recipe as the [`FittedBaseline`] transformer arm, so the
    /// two paths train bit-identical models for the same inputs.
    pub fn fit(
        model_kind: ModelKind,
        profile: SpeedProfile,
        texts: &[&str],
        labels: &[usize],
        seed: u64,
    ) -> Self {
        let mut trainer = FittedBaseline::transformer_recipe(model_kind, profile, seed).build();
        trainer.fit(texts, labels);
        Self { trainer }
    }

    /// The wrapped trainer.
    pub fn trainer(&self) -> &Trainer {
        &self.trainer
    }
}

impl Scorer for TransformerScorer {
    fn probabilities(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        self.trainer.predict_proba_batch(texts)
    }

    fn kind(&self) -> BaselineKind {
        BaselineKind::Transformer(self.trainer.kind())
    }

    fn cost_hint(&self) -> Duration {
        TRANSFORMER_COST_HINT
    }
}

/// A [`Scorer`] serving a fitted transformer through weight-only i8 quantized
/// inference (`holistix-transformer`'s [`QuantizedTransformer`]).
///
/// Built by quantizing an already-fitted [`TransformerScorer`], so the f64
/// reference and its quantized sibling can serve side by side (kinds differ:
/// [`BaselineKind::QuantizedTransformer`], name `<model>-i8`). Class
/// probabilities drift from the f64 scorer by at most
/// [`holistix_transformer::MAX_PROBABILITY_DRIFT`]; labels agree exactly on
/// the seeded evaluation task (both asserted in tests).
///
/// The `cost_hint` is *measured at construction* — a few warm-up scores of a
/// representative text — rather than assumed, so the serving layer's per-kind
/// batch windows are sized from what this process actually does.
pub struct QuantizedScorer {
    quantized: QuantizedTransformer,
    kind: BaselineKind,
    cost_hint: Duration,
}

/// Text used to measure the construction-time `cost_hint`. Length is
/// representative of the corpus (most sequences fill `max_len` anyway, and
/// padded inference cost is length-independent).
const COST_PROBE_TEXT: &str = "i feel exhausted and alone and the money worries never stop";

impl QuantizedScorer {
    /// Quantize a fitted transformer scorer. The f64 scorer is left untouched
    /// (quantization reads the parameter store; it never mutates it).
    pub fn from_transformer(scorer: &TransformerScorer) -> Self {
        let model = scorer
            .trainer()
            .model()
            .expect("TransformerScorer always holds a fitted trainer");
        let quantized = QuantizedTransformer::from_classifier(model);
        let kind = BaselineKind::QuantizedTransformer(scorer.trainer().kind());
        let cost_hint = measure_cost_hint(|| {
            let _ = quantized.predict_proba_text(COST_PROBE_TEXT);
        });
        Self {
            quantized,
            kind,
            cost_hint,
        }
    }

    /// The quantized model.
    pub fn model(&self) -> &QuantizedTransformer {
        &self.quantized
    }
}

/// Median-of-several wall-clock measurement of one scoring call: one warm-up,
/// five timed runs, median picked to shrug off scheduler noise.
fn measure_cost_hint(score_once: impl Fn()) -> Duration {
    score_once();
    let mut samples: Vec<Duration> = (0..5)
        .map(|_| {
            let start = Instant::now();
            score_once();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2].max(Duration::from_micros(1))
}

impl Scorer for QuantizedScorer {
    fn probabilities(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        self.quantized.predict_proba_texts(texts)
    }

    fn kind(&self) -> BaselineKind {
        self.kind
    }

    fn cost_hint(&self) -> Duration {
        self.cost_hint
    }
}

/// Fit the right scorer for a baseline kind: classical kinds go through the
/// sharded sparse fit of [`FittedBaseline`] (`n_threads` vectoriser shards),
/// transformer kinds through [`TransformerScorer`] (epoch-sequential, the
/// thread knob does not apply), quantized kinds by fitting the f64 transformer
/// and quantizing it. This is the registry's one fit entry point.
pub fn fit_scorer(
    kind: BaselineKind,
    profile: SpeedProfile,
    texts: &[&str],
    labels: &[usize],
    seed: u64,
    n_threads: usize,
) -> Arc<dyn Scorer> {
    match kind {
        BaselineKind::Transformer(model_kind) => Arc::new(TransformerScorer::fit(
            model_kind, profile, texts, labels, seed,
        )),
        BaselineKind::QuantizedTransformer(model_kind) => {
            let f64_scorer = TransformerScorer::fit(model_kind, profile, texts, labels, seed);
            Arc::new(QuantizedScorer::from_transformer(&f64_scorer))
        }
        classical => Arc::new(FittedBaseline::fit_with_threads(
            classical, profile, texts, labels, seed, n_threads,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistix_corpus::HolistixCorpus;

    fn training_data(n: usize, seed: u64) -> (Vec<String>, Vec<usize>) {
        let corpus = HolistixCorpus::generate_small(n, seed);
        (
            corpus.posts.iter().map(|p| p.post.text.clone()).collect(),
            corpus.label_indices(),
        )
    }

    #[test]
    fn fitted_baseline_scores_identically_through_the_trait() {
        let (texts, labels) = training_data(120, 3);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let fitted = FittedBaseline::fit(
            BaselineKind::LogisticRegression,
            SpeedProfile::Tiny,
            &refs,
            &labels,
            1,
        );
        let direct = fitted.probabilities(&refs[..5]);
        let scorer: &dyn Scorer = &fitted;
        assert_eq!(scorer.probabilities(&refs[..5]), direct);
        assert_eq!(scorer.probabilities_one(refs[0]), direct[0]);
        assert_eq!(scorer.kind(), BaselineKind::LogisticRegression);
        assert!(scorer.cost_hint() < Duration::from_millis(1));
        assert_eq!(scorer.labels().len(), 6);
    }

    #[test]
    fn transformer_scorer_matches_the_baseline_transformer_arm() {
        let (texts, labels) = training_data(60, 5);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let baseline = FittedBaseline::fit(
            BaselineKind::Transformer(ModelKind::DistilBert),
            SpeedProfile::Tiny,
            &refs,
            &labels,
            2,
        );
        let scorer =
            TransformerScorer::fit(ModelKind::DistilBert, SpeedProfile::Tiny, &refs, &labels, 2);
        // Same recipe, same seed, same data: the two paths train bit-identical
        // models, so the Scorer seam adds heterogeneity without changing answers.
        assert_eq!(
            scorer.probabilities(&refs[..3]),
            baseline.probabilities(&refs[..3])
        );
        assert_eq!(
            scorer.kind(),
            BaselineKind::Transformer(ModelKind::DistilBert)
        );
        assert!(scorer.cost_hint() >= Duration::from_millis(1));
    }

    #[test]
    fn fit_scorer_dispatches_on_kind() {
        let (texts, labels) = training_data(90, 7);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let classical = fit_scorer(
            BaselineKind::GaussianNb,
            SpeedProfile::Tiny,
            &refs,
            &labels,
            7,
            2,
        );
        assert_eq!(classical.kind(), BaselineKind::GaussianNb);
        assert_eq!(classical.probabilities_one(refs[0]).len(), 6);
    }

    #[test]
    fn dyn_scorer_is_a_probability_model() {
        let (texts, labels) = training_data(80, 9);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let fitted = FittedBaseline::fit(
            BaselineKind::LogisticRegression,
            SpeedProfile::Tiny,
            &refs,
            &labels,
            1,
        );
        let scorer: Arc<dyn Scorer> = Arc::new(fitted);
        let model: &dyn Scorer = &*scorer;
        assert_eq!(ProbabilityModel::n_classes(model), 6);
        let proba = ProbabilityModel::predict_proba(model, &[refs[0]]);
        assert_eq!(proba, scorer.probabilities(&[refs[0]]));
    }

    #[test]
    #[should_panic(expected = "fitted Trainer")]
    fn unfitted_trainer_is_rejected() {
        let recipe =
            FittedBaseline::transformer_recipe(ModelKind::Bert, SpeedProfile::Tiny, 1).build();
        let _ = TransformerScorer::from_trainer(recipe);
    }

    #[test]
    fn quantized_scorer_agrees_with_f64_on_the_seeded_eval_set() {
        // The Table IV task at test scale: fit a transformer on the seeded
        // corpus, quantize it, and hold the i8 path to the documented gates —
        // 100 % label agreement and probability drift within the bound.
        let (texts, labels) = training_data(60, 5);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let f64_scorer =
            TransformerScorer::fit(ModelKind::MentalBert, SpeedProfile::Tiny, &refs, &labels, 2);
        let quant = QuantizedScorer::from_transformer(&f64_scorer);
        assert_eq!(
            quant.kind(),
            BaselineKind::QuantizedTransformer(ModelKind::MentalBert)
        );
        assert_eq!(quant.kind().name(), "MentalBERT-i8");

        let exact = f64_scorer.probabilities(&refs);
        let approx = quant.probabilities(&refs);
        let mut max_drift = 0.0f64;
        for (text, (e, a)) in refs.iter().zip(exact.iter().zip(&approx)) {
            let exact_label = holistix_linalg::argmax(e).unwrap();
            let approx_label = holistix_linalg::argmax(a).unwrap();
            assert_eq!(exact_label, approx_label, "label flipped for {text:?}");
            for (pe, pa) in e.iter().zip(a) {
                max_drift = max_drift.max((pe - pa).abs());
            }
        }
        assert!(
            max_drift <= holistix_transformer::MAX_PROBABILITY_DRIFT,
            "probability drift {max_drift} exceeds the documented bound"
        );
        // Batched scoring equals one-at-a-time scoring through the trait.
        assert_eq!(quant.probabilities_one(refs[0]), approx[0]);
    }

    #[test]
    fn quantized_cost_hint_is_measured_and_sane() {
        let (texts, labels) = training_data(40, 11);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let f64_scorer =
            TransformerScorer::fit(ModelKind::DistilBert, SpeedProfile::Tiny, &refs, &labels, 3);
        let quant = QuantizedScorer::from_transformer(&f64_scorer);
        // Measured, not the 50 ms transformer constant: a tiny quantized model
        // scores in well under a millisecond on any plausible hardware, and the
        // hint must never be zero (the batcher divides by it).
        assert!(quant.cost_hint() > Duration::ZERO);
        assert!(quant.cost_hint() < TRANSFORMER_COST_HINT);
    }

    #[test]
    fn fit_scorer_dispatches_quantized_kinds() {
        let (texts, labels) = training_data(40, 13);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let scorer = fit_scorer(
            BaselineKind::QuantizedTransformer(ModelKind::DistilBert),
            SpeedProfile::Tiny,
            &refs,
            &labels,
            4,
            1,
        );
        assert_eq!(
            scorer.kind(),
            BaselineKind::QuantizedTransformer(ModelKind::DistilBert)
        );
        let proba = scorer.probabilities_one(refs[0]);
        assert_eq!(proba.len(), 6);
        assert!((proba.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }
}
