//! The unified inference seam: one object-safe trait every servable model
//! implements.
//!
//! The serving layer (`holistix-serve`) used to be hard-wired to
//! [`FittedBaseline`]: its registry, batcher and handlers all named the
//! concrete type, so heterogeneous backends (a classical sparse pipeline next
//! to a transformer analogue) could not share the stack, and there was no seam
//! for per-model batch queues. [`Scorer`] is that seam:
//!
//! * [`probabilities`](Scorer::probabilities) — the one batched entry point;
//!   every row depends only on that row's text, so batched output is
//!   bit-for-bit identical to text-at-a-time scoring (the property the
//!   micro-batcher relies on);
//! * [`labels`](Scorer::labels) — the class labels the probability columns map
//!   to (the six wellness-dimension codes for every paper model);
//! * [`kind`](Scorer::kind) — which Table IV baseline the scorer serves, the
//!   registry key;
//! * [`cost_hint`](Scorer::cost_hint) — expected per-text scoring latency, the
//!   knob per-kind batch queues size their drain windows from (a ~50 ms
//!   transformer batch wants a wider coalescing window than a ~200 µs LR one).
//!
//! Two implementations ship here: [`FittedBaseline`] (classical sparse path
//! *and* the trainer-backed transformer arm) and [`TransformerScorer`], a thin
//! scorer around a fine-tuned [`Trainer`] from `holistix-transformer` for
//! deployments that train transformers outside the baseline pipeline. Any
//! future backend (distilled models, remote scorers, quantised analogues)
//! plugs into serving by implementing this trait — nothing in
//! `holistix-serve` names a concrete model type anymore.

use crate::pipeline::{BaselineKind, FittedBaseline, SpeedProfile};
use holistix_corpus::ALL_DIMENSIONS;
use holistix_explain::ProbabilityModel;
use holistix_transformer::{ModelKind, Trainer};
use std::sync::Arc;
use std::time::Duration;

/// An object-safe, thread-shareable scorer: the only interface the serving
/// stack (registry, batch queues, explain handlers) knows about.
pub trait Scorer: Send + Sync {
    /// Class-probability vectors, one row of 6 per text. Rows must depend only
    /// on their own text, so batching never changes answers.
    fn probabilities(&self, texts: &[&str]) -> Vec<Vec<f64>>;

    /// Which Table IV baseline this scorer serves (the registry key).
    fn kind(&self) -> BaselineKind;

    /// Expected per-text scoring latency, used to size the scorer's batch
    /// queue: expensive scorers get wider coalescing windows because waiting
    /// a little longer is cheap relative to their batch service time.
    fn cost_hint(&self) -> Duration;

    /// The class labels the probability columns map to, in column order. Every
    /// paper model scores the six wellness dimensions; a scorer for a
    /// different label space overrides this.
    fn labels(&self) -> Vec<String> {
        ALL_DIMENSIONS
            .iter()
            .map(|d| d.code().to_string())
            .collect()
    }

    /// Convenience: the probability row for one text.
    fn probabilities_one(&self, text: &str) -> Vec<f64> {
        self.probabilities(&[text])
            .into_iter()
            .next()
            .unwrap_or_else(|| vec![0.0; self.labels().len()])
    }
}

/// Any scorer is a LIME-explainable probability model, so `/explain` works
/// against `Arc<dyn Scorer>` without knowing the backend. The class count
/// comes from [`labels`](Scorer::labels), so a scorer with a non-paper label
/// space explains consistently too.
impl ProbabilityModel for dyn Scorer {
    fn predict_proba(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        self.probabilities(texts)
    }

    fn n_classes(&self) -> usize {
        self.labels().len()
    }
}

/// Expected per-text latency of the classical sparse path (vectorise one row,
/// one sparse dot per class): order of a few hundred microseconds.
pub(crate) const CLASSICAL_COST_HINT: Duration = Duration::from_micros(200);

/// Expected per-text latency of a transformer analogue forward pass: order of
/// tens of milliseconds.
pub(crate) const TRANSFORMER_COST_HINT: Duration = Duration::from_millis(50);

impl Scorer for FittedBaseline {
    fn probabilities(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        FittedBaseline::probabilities(self, texts)
    }

    fn kind(&self) -> BaselineKind {
        match self {
            FittedBaseline::Classical { kind, .. } => *kind,
            FittedBaseline::Transformer { trainer } => BaselineKind::Transformer(trainer.kind()),
        }
    }

    fn cost_hint(&self) -> Duration {
        match self {
            FittedBaseline::Classical { .. } => CLASSICAL_COST_HINT,
            FittedBaseline::Transformer { .. } => TRANSFORMER_COST_HINT,
        }
    }
}

/// A scorer around a fine-tuned transformer [`Trainer`] from
/// `holistix-transformer`.
///
/// [`FittedBaseline`] can already hold a trainer, but only by going through
/// the baseline fit pipeline. This wrapper is the seam for transformers
/// trained elsewhere — a zoo checkpoint, a custom fine-tune, an
/// experiment's survivor — to serve behind the same registry and batch
/// queues as everything else.
pub struct TransformerScorer {
    trainer: Trainer,
}

impl TransformerScorer {
    /// Wrap an already fine-tuned trainer. Panics if the trainer has not been
    /// fitted — an unfitted scorer would panic on its first request instead.
    pub fn from_trainer(trainer: Trainer) -> Self {
        assert!(
            trainer.model().is_some(),
            "TransformerScorer requires a fitted Trainer"
        );
        Self { trainer }
    }

    /// Fine-tune a fresh analogue of `model_kind` under `profile` and wrap it.
    /// Uses the same recipe as the [`FittedBaseline`] transformer arm, so the
    /// two paths train bit-identical models for the same inputs.
    pub fn fit(
        model_kind: ModelKind,
        profile: SpeedProfile,
        texts: &[&str],
        labels: &[usize],
        seed: u64,
    ) -> Self {
        let mut trainer = FittedBaseline::transformer_recipe(model_kind, profile, seed).build();
        trainer.fit(texts, labels);
        Self { trainer }
    }

    /// The wrapped trainer.
    pub fn trainer(&self) -> &Trainer {
        &self.trainer
    }
}

impl Scorer for TransformerScorer {
    fn probabilities(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        self.trainer.predict_proba_batch(texts)
    }

    fn kind(&self) -> BaselineKind {
        BaselineKind::Transformer(self.trainer.kind())
    }

    fn cost_hint(&self) -> Duration {
        TRANSFORMER_COST_HINT
    }
}

/// Fit the right scorer for a baseline kind: classical kinds go through the
/// sharded sparse fit of [`FittedBaseline`] (`n_threads` vectoriser shards),
/// transformer kinds through [`TransformerScorer`] (epoch-sequential, the
/// thread knob does not apply). This is the registry's one fit entry point.
pub fn fit_scorer(
    kind: BaselineKind,
    profile: SpeedProfile,
    texts: &[&str],
    labels: &[usize],
    seed: u64,
    n_threads: usize,
) -> Arc<dyn Scorer> {
    match kind {
        BaselineKind::Transformer(model_kind) => Arc::new(TransformerScorer::fit(
            model_kind, profile, texts, labels, seed,
        )),
        classical => Arc::new(FittedBaseline::fit_with_threads(
            classical, profile, texts, labels, seed, n_threads,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistix_corpus::HolistixCorpus;

    fn training_data(n: usize, seed: u64) -> (Vec<String>, Vec<usize>) {
        let corpus = HolistixCorpus::generate_small(n, seed);
        (
            corpus.posts.iter().map(|p| p.post.text.clone()).collect(),
            corpus.label_indices(),
        )
    }

    #[test]
    fn fitted_baseline_scores_identically_through_the_trait() {
        let (texts, labels) = training_data(120, 3);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let fitted = FittedBaseline::fit(
            BaselineKind::LogisticRegression,
            SpeedProfile::Tiny,
            &refs,
            &labels,
            1,
        );
        let direct = fitted.probabilities(&refs[..5]);
        let scorer: &dyn Scorer = &fitted;
        assert_eq!(scorer.probabilities(&refs[..5]), direct);
        assert_eq!(scorer.probabilities_one(refs[0]), direct[0]);
        assert_eq!(scorer.kind(), BaselineKind::LogisticRegression);
        assert!(scorer.cost_hint() < Duration::from_millis(1));
        assert_eq!(scorer.labels().len(), 6);
    }

    #[test]
    fn transformer_scorer_matches_the_baseline_transformer_arm() {
        let (texts, labels) = training_data(60, 5);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let baseline = FittedBaseline::fit(
            BaselineKind::Transformer(ModelKind::DistilBert),
            SpeedProfile::Tiny,
            &refs,
            &labels,
            2,
        );
        let scorer =
            TransformerScorer::fit(ModelKind::DistilBert, SpeedProfile::Tiny, &refs, &labels, 2);
        // Same recipe, same seed, same data: the two paths train bit-identical
        // models, so the Scorer seam adds heterogeneity without changing answers.
        assert_eq!(
            scorer.probabilities(&refs[..3]),
            baseline.probabilities(&refs[..3])
        );
        assert_eq!(
            scorer.kind(),
            BaselineKind::Transformer(ModelKind::DistilBert)
        );
        assert!(scorer.cost_hint() >= Duration::from_millis(1));
    }

    #[test]
    fn fit_scorer_dispatches_on_kind() {
        let (texts, labels) = training_data(90, 7);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let classical = fit_scorer(
            BaselineKind::GaussianNb,
            SpeedProfile::Tiny,
            &refs,
            &labels,
            7,
            2,
        );
        assert_eq!(classical.kind(), BaselineKind::GaussianNb);
        assert_eq!(classical.probabilities_one(refs[0]).len(), 6);
    }

    #[test]
    fn dyn_scorer_is_a_probability_model() {
        let (texts, labels) = training_data(80, 9);
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let fitted = FittedBaseline::fit(
            BaselineKind::LogisticRegression,
            SpeedProfile::Tiny,
            &refs,
            &labels,
            1,
        );
        let scorer: Arc<dyn Scorer> = Arc::new(fitted);
        let model: &dyn Scorer = &*scorer;
        assert_eq!(ProbabilityModel::n_classes(model), 6);
        let proba = ProbabilityModel::predict_proba(model, &[refs[0]]);
        assert_eq!(proba, scorer.probabilities(&[refs[0]]));
    }

    #[test]
    #[should_panic(expected = "fitted Trainer")]
    fn unfitted_trainer_is_rejected() {
        let recipe =
            FittedBaseline::transformer_recipe(ModelKind::Bert, SpeedProfile::Tiny, 1).build();
        let _ = TransformerScorer::from_trainer(recipe);
    }
}
