//! Property-based tests for the text substrate: invariants that must hold for
//! arbitrary input text, not just the fixtures in the unit tests.

use holistix_text::{
    char_ngrams, ngrams, normalize, stem, tokenize_with_spans, NormalizeOptions, StopwordFilter,
    SubwordTokenizer, TokenKind, VocabularyBuilder,
};
use proptest::prelude::*;

proptest! {
    /// Every token's byte span must slice the source text back to exactly the token.
    #[test]
    fn token_spans_round_trip(text in ".{0,200}") {
        for token in tokenize_with_spans(&text) {
            prop_assert_eq!(&text[token.start..token.end], token.text.as_str());
            prop_assert!(token.start <= token.end);
            prop_assert!(token.end <= text.len());
        }
    }

    /// Tokens appear in non-decreasing byte order and never overlap.
    #[test]
    fn token_spans_are_ordered_and_disjoint(text in ".{0,200}") {
        let tokens = tokenize_with_spans(&text);
        for pair in tokens.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start);
        }
    }

    /// Word tokens never contain whitespace and are never empty.
    #[test]
    fn word_tokens_have_no_whitespace(text in "[a-zA-Z ,.!?'\\-]{0,200}") {
        for token in tokenize_with_spans(&text) {
            prop_assert!(!token.text.is_empty());
            if token.kind == TokenKind::Word {
                prop_assert!(!token.text.chars().any(char::is_whitespace));
            }
        }
    }

    /// Default normalisation is idempotent.
    #[test]
    fn normalization_is_idempotent(text in ".{0,200}") {
        let options = NormalizeOptions::default();
        let once = normalize(&text, &options);
        let twice = normalize(&once, &options);
        prop_assert_eq!(once, twice);
    }

    /// Normalised output never contains ASCII upper-case letters or repeated spaces.
    /// (Some Unicode code points, e.g. mathematical capital letters, have no lowercase
    /// mapping and legitimately pass through unchanged.)
    #[test]
    fn normalization_output_is_clean(text in ".{0,200}") {
        let normalized = normalize(&text, &NormalizeOptions::default());
        prop_assert!(!normalized.chars().any(|c| c.is_ascii_uppercase()));
        prop_assert!(!normalized.contains("  "));
        prop_assert_eq!(normalized.trim(), &normalized);
    }

    /// The stemmer never produces a longer word and never panics.
    #[test]
    fn stem_never_grows_ascii_words(word in "[a-z]{1,20}") {
        let stemmed = stem(&word);
        prop_assert!(stemmed.len() <= word.len() + 1, "{} -> {}", word, stemmed);
        prop_assert!(!stemmed.is_empty());
    }

    /// n-gram count equals max(0, len - n + 1), and every n-gram has order n.
    #[test]
    fn ngram_counts_match_formula(words in proptest::collection::vec("[a-z]{1,8}", 0..20), n in 1usize..5) {
        let grams = ngrams(&words, n);
        let expected = if words.len() >= n { words.len() - n + 1 } else { 0 };
        prop_assert_eq!(grams.len(), expected);
        prop_assert!(grams.iter().all(|g| g.order() == n));
    }

    /// Character n-grams of a word cover exactly len - n + 1 windows.
    #[test]
    fn char_ngram_counts(word in "[a-zé]{0,15}", n in 1usize..4) {
        let grams = char_ngrams(&word, n);
        let chars = word.chars().count();
        let expected = if chars >= n { chars - n + 1 } else { 0 };
        prop_assert_eq!(grams.len(), expected);
    }

    /// The stop-word filter never removes non-stop-words and never keeps stop-words.
    #[test]
    fn stopword_filter_partitions(words in proptest::collection::vec("[a-z]{1,10}", 0..30)) {
        let filter = StopwordFilter::english();
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let kept = filter.filter(refs.iter().copied());
        prop_assert!(kept.iter().all(|w| !filter.is_stopword(w)));
        let removed = words.len() - kept.len();
        let stopword_count = words.iter().filter(|w| filter.is_stopword(w)).count();
        prop_assert_eq!(removed, stopword_count);
    }

    /// Vocabulary ids are dense, unique and consistent with term lookup.
    #[test]
    fn vocabulary_ids_are_dense(docs in proptest::collection::vec(
        proptest::collection::vec("[a-f]{1,4}", 1..10), 1..8)) {
        let mut builder = VocabularyBuilder::new();
        for doc in &docs {
            builder.add_document(doc);
        }
        let vocab = builder.build(1, None);
        for (term, id) in vocab.iter() {
            prop_assert_eq!(vocab.id(term), Some(id));
            prop_assert_eq!(vocab.term(id), Some(term));
            prop_assert!(vocab.term_frequency(term) >= 1);
            prop_assert!(vocab.document_frequency(term) as usize <= docs.len());
        }
    }

    /// Sharded counting then merging equals one sequential scan for any corpus
    /// and any split point: same terms in the same order, same term/document
    /// frequencies, same document count.
    #[test]
    fn vocabulary_merge_matches_sequential_scan(
        docs in proptest::collection::vec(proptest::collection::vec("[a-e]{1,4}", 0..8), 0..12),
        split_choice in 0usize..64,
    ) {
        let mut sequential = VocabularyBuilder::new();
        for doc in &docs {
            sequential.add_document(doc);
        }
        let split = split_choice % (docs.len() + 1);
        let mut left = VocabularyBuilder::new();
        for doc in &docs[..split] {
            left.add_document(doc);
        }
        let mut right = VocabularyBuilder::new();
        for doc in &docs[split..] {
            right.add_document(doc);
        }
        left.merge(right);
        prop_assert_eq!(left.n_documents(), sequential.n_documents());
        let merged = left.build(1, None);
        let expected = sequential.build(1, None);
        prop_assert_eq!(merged.terms(), expected.terms());
        for term in expected.terms() {
            prop_assert_eq!(merged.term_frequency(term), expected.term_frequency(term));
            prop_assert_eq!(merged.document_frequency(term), expected.document_frequency(term));
        }
    }

    /// Subword encoding of any lower-case word uses valid piece ids, and the decoded
    /// string reassembles the word when no <unk> was produced.
    #[test]
    fn subword_encode_decode(word in "[a-z]{1,15}") {
        let tokenizer = SubwordTokenizer::from_pieces(
            ["a","b","c","d","e","f","g","h","i","j","k","l","m","n","o","p","q","r","s","t","u","v","w","x","y","z",
             "##a","##b","##c","##d","##e","##f","##g","##h","##i","##j","##k","##l","##m","##n","##o","##p","##q","##r","##s","##t","##u","##v","##w","##x","##y","##z"],
        );
        let ids = tokenizer.encode_word(&word);
        prop_assert!(!ids.is_empty());
        prop_assert!(ids.iter().all(|&id| id < tokenizer.vocab_size()));
        if !ids.contains(&tokenizer.unk_id()) {
            prop_assert_eq!(tokenizer.decode(&ids).replace(' ', ""), word);
        }
    }

    /// Fixed-length classification encoding always has the requested length and starts
    /// with CLS.
    #[test]
    fn classification_encoding_is_fixed_length(
        words in proptest::collection::vec("[a-z]{1,8}", 0..40),
        max_len in 4usize..40,
    ) {
        let tokenizer = SubwordTokenizer::from_pieces(["feel", "##ing", "a", "##b"]);
        let ids = tokenizer.encode_for_classification(&words, max_len);
        prop_assert_eq!(ids.len(), max_len);
        prop_assert_eq!(ids[0], tokenizer.cls_id());
        prop_assert!(ids.contains(&tokenizer.sep_id()));
    }
}
