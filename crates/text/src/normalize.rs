//! Text normalisation.
//!
//! The paper's preprocessing removes "irrelevant, empty, and duplicate posts" and the
//! TF-IDF baselines operate on lower-cased, punctuation-stripped text. This module
//! centralises those rules so the corpus generator, the vectoriser and the LIME
//! perturbation sampler all agree on what the normalised form of a post is.

use serde::{Deserialize, Serialize};

/// Options controlling [`normalize`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NormalizeOptions {
    /// Lower-case the text.
    pub lowercase: bool,
    /// Replace punctuation with spaces.
    pub strip_punctuation: bool,
    /// Collapse consecutive whitespace into a single space and trim.
    pub collapse_whitespace: bool,
    /// Replace digit runs with the placeholder `<num>`.
    pub mask_numbers: bool,
    /// Replace URLs (`http...`, `www...`) with the placeholder `<url>`.
    pub mask_urls: bool,
}

impl Default for NormalizeOptions {
    fn default() -> Self {
        Self {
            lowercase: true,
            strip_punctuation: true,
            collapse_whitespace: true,
            mask_numbers: false,
            mask_urls: true,
        }
    }
}

impl NormalizeOptions {
    /// Options that only clean whitespace — used when the original surface form must
    /// be preserved (e.g. for explanation spans).
    pub fn whitespace_only() -> Self {
        Self {
            lowercase: false,
            strip_punctuation: false,
            collapse_whitespace: true,
            mask_numbers: false,
            mask_urls: false,
        }
    }
}

fn is_url_start(word: &str) -> bool {
    let w = word.to_ascii_lowercase();
    w.starts_with("http://") || w.starts_with("https://") || w.starts_with("www.")
}

/// Normalise `text` according to `options`.
pub fn normalize(text: &str, options: &NormalizeOptions) -> String {
    // URL masking operates on whitespace-delimited chunks before any other step so
    // that punctuation stripping does not destroy the URL shape first.
    let mut working = String::with_capacity(text.len());
    if options.mask_urls {
        let mut first = true;
        for chunk in text.split_whitespace() {
            if !first {
                working.push(' ');
            }
            first = false;
            if is_url_start(chunk) {
                working.push_str("<url>");
            } else {
                working.push_str(chunk);
            }
        }
        if text.is_empty() {
            working.clear();
        }
    } else {
        working.push_str(text);
    }

    let mut out = String::with_capacity(working.len());
    let mut chars = working.chars().peekable();
    while let Some(c) = chars.next() {
        if options.mask_numbers && c.is_ascii_digit() {
            while let Some(&n) = chars.peek() {
                if n.is_ascii_digit() || n == '.' {
                    chars.next();
                } else {
                    break;
                }
            }
            out.push_str("<num>");
            continue;
        }
        if options.strip_punctuation
            && !c.is_alphanumeric()
            && !c.is_whitespace()
            && c != '\''
            && c != '<'
            && c != '>'
        {
            out.push(' ');
            continue;
        }
        if options.lowercase {
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }

    if options.collapse_whitespace {
        let collapsed: Vec<&str> = out.split_whitespace().collect();
        collapsed.join(" ")
    } else {
        out
    }
}

/// Normalise with the default options (lowercase, strip punctuation, collapse
/// whitespace, mask URLs).
pub fn normalize_default(text: &str) -> String {
    normalize(text, &NormalizeOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_normalization_lowercases_and_strips() {
        let n = normalize_default("I HATE my body!!  I feel   disgusting.");
        assert_eq!(n, "i hate my body i feel disgusting");
    }

    #[test]
    fn keeps_apostrophes() {
        let n = normalize_default("I can't sleep");
        assert_eq!(n, "i can't sleep");
    }

    #[test]
    fn masks_urls() {
        let n = normalize_default("see https://beyondblue.org.au for help");
        assert_eq!(n, "see <url> for help");
    }

    #[test]
    fn masks_numbers_when_requested() {
        let opts = NormalizeOptions {
            mask_numbers: true,
            ..NormalizeOptions::default()
        };
        let n = normalize("only 2.5 hours of sleep", &opts);
        assert_eq!(n, "only <num> hours of sleep");
    }

    #[test]
    fn whitespace_only_preserves_case_and_punct() {
        let n = normalize("  Hello,   WORLD! ", &NormalizeOptions::whitespace_only());
        assert_eq!(n, "Hello, WORLD!");
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert_eq!(normalize_default(""), "");
        assert_eq!(normalize("", &NormalizeOptions::whitespace_only()), "");
    }
}
