//! Per-fit token interning.
//!
//! The vectoriser fit path used to allocate one `String` per token
//! *occurrence* — the carried ROADMAP allocation-churn item. An [`Interner`]
//! turns that into one allocation per *distinct* term: each term string is
//! stored once and every later occurrence resolves to a dense `u32` symbol via
//! a hash lookup on the borrowed slice. Symbols are dense (`0..len`), so
//! per-term statistics (term/document frequencies, vocabulary-column lookups)
//! become plain `Vec` indexing instead of `HashMap<String, _>` probes.
//!
//! The interner is deliberately *per fit* (one per shard of the map-reduce
//! fit), not global: symbols from different interners are incomparable, and a
//! fit-scoped lifetime means the arena is freed with the fit instead of
//! growing for the life of the process.

use std::collections::HashMap;

/// A dense symbol for an interned term. Valid only with the [`Interner`] that
/// produced it.
pub type Sym = u32;

/// A string arena with `&str → Sym` lookup. See the module docs.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    ids: HashMap<String, Sym>,
    terms: Vec<String>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty interner with room for `capacity` distinct terms.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            ids: HashMap::with_capacity(capacity),
            terms: Vec::with_capacity(capacity),
        }
    }

    /// The symbol for `term`, interning it on first sight. Only the first
    /// occurrence of a term allocates; every later call is a borrow-keyed
    /// lookup.
    pub fn intern(&mut self, term: &str) -> Sym {
        if let Some(&sym) = self.ids.get(term) {
            return sym;
        }
        let sym = self.terms.len() as Sym;
        self.ids.insert(term.to_string(), sym);
        self.terms.push(term.to_string());
        sym
    }

    /// The symbol for `term` if it is already interned.
    pub fn get(&self, term: &str) -> Option<Sym> {
        self.ids.get(term).copied()
    }

    /// The term behind `sym`.
    ///
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.terms[sym as usize]
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// All interned terms in symbol order.
    pub fn terms(&self) -> &[String] {
        &self.terms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut interner = Interner::new();
        let a = interner.intern("alone");
        let b = interner.intern("tired");
        assert_eq!(interner.intern("alone"), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(a), "alone");
        assert_eq!(interner.resolve(b), "tired");
        assert_eq!(interner.get("alone"), Some(a));
        assert_eq!(interner.get("absent"), None);
    }

    #[test]
    fn symbol_order_is_first_sight_order() {
        let mut interner = Interner::new();
        for term in ["c", "a", "b", "a", "c"] {
            interner.intern(term);
        }
        assert_eq!(interner.terms(), &["c", "a", "b"]);
    }
}
