//! # holistix-text
//!
//! Text-processing substrate for the Holistix reproduction.
//!
//! The Holistix paper classifies free-form mental-health forum posts into six
//! wellness dimensions. Every downstream component — the TF-IDF baselines, the
//! transformer models, LIME perturbation, and the span-overlap metrics — needs a
//! consistent view of what a *token*, a *sentence*, and a *vocabulary* are. This
//! crate provides that view without any third-party NLP dependencies:
//!
//! * [`tokenize`] — Unicode-aware word tokenisation and sentence splitting,
//! * [`normalize`] — case folding, punctuation stripping, whitespace cleanup,
//! * [`stopwords`] — an English stop-word list tuned for social-media text,
//! * [`stem`] — a light Porter-style suffix stripper,
//! * [`vocab`] — frequency-counted vocabularies with id mapping,
//! * [`intern`] — per-fit string interning so hot loops allocate once per
//!   distinct term instead of once per token occurrence,
//! * [`ngrams`] — n-gram extraction used by the BLEU metric and feature ablations,
//! * [`subword`] — a WordPiece-style subword tokeniser used by the transformer
//!   baselines (greedy longest-match with `##` continuation pieces).
//!
//! All functions are deterministic and allocation-conscious; the tokenisers are the
//! inner loop of corpus generation and vectorisation, so they avoid per-token regex
//! work and operate on `char` boundaries directly.

pub mod intern;
pub mod ngrams;
pub mod normalize;
pub mod stem;
pub mod stopwords;
pub mod subword;
pub mod tokenize;
pub mod vocab;

pub use intern::{Interner, Sym};
pub use ngrams::{char_ngrams, ngrams, NGram};
pub use normalize::{normalize, NormalizeOptions};
pub use stem::stem;
pub use stopwords::{is_stopword, StopwordFilter};
pub use subword::{SubwordTokenizer, SubwordVocabBuilder};
pub use tokenize::{sentences, token_spans, tokenize, tokenize_with_spans, Token, TokenKind};
pub use vocab::{Vocabulary, VocabularyBuilder};

/// Convenience: lower-cased word tokens with stop-words removed — the
/// representation used by the Table III frequent-word analysis and by the
/// TF-IDF vectoriser's default analyzer.
pub fn content_words(text: &str) -> Vec<String> {
    let filter = StopwordFilter::english();
    tokenize(text)
        .into_iter()
        .filter(|t| t.kind == TokenKind::Word)
        .map(|t| t.text.to_lowercase())
        .filter(|w| !filter.is_stopword(w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_words_filters_stopwords_and_punctuation() {
        let words = content_words("I feel exhausted, and I can't even sleep properly!");
        assert!(words.contains(&"exhausted".to_string()));
        assert!(words.contains(&"sleep".to_string()));
        assert!(!words.contains(&"and".to_string()));
        assert!(!words.contains(&",".to_string()));
    }

    #[test]
    fn content_words_empty_input() {
        assert!(content_words("").is_empty());
        assert!(content_words("   \n\t ").is_empty());
    }
}
