//! Word and sentence tokenisation.
//!
//! The tokeniser is intentionally simple and deterministic: it segments on Unicode
//! alphanumeric boundaries, keeps intra-word apostrophes and hyphens (so `can't` and
//! `self-harm` stay single tokens — both occur frequently in the Beyond Blue style
//! posts the paper works with), and reports byte offsets so explanation spans can be
//! mapped back onto the original post.

use serde::{Deserialize, Serialize};

/// The coarse class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// Alphabetic / alphanumeric word (possibly with internal `'` or `-`).
    Word,
    /// A run of digits (ages, counts, "2 hours of sleep").
    Number,
    /// A single punctuation character.
    Punctuation,
}

/// A token together with its byte span in the source text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// The token text, exactly as it appears in the source.
    pub text: String,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    /// Coarse token class.
    pub kind: TokenKind,
}

impl Token {
    /// Lower-cased copy of the token text.
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }
}

fn is_word_char(c: char) -> bool {
    c.is_alphabetic()
}

fn is_word_continuation(c: char) -> bool {
    c.is_alphanumeric() || c == '\'' || c == '’' || c == '-'
}

/// Tokenise `text` into `(start, end, kind)` byte spans **without allocating
/// per token**. This is the single tokeniser implementation:
/// [`tokenize_with_spans`] materialises owned [`Token`]s from these spans, and
/// the vectoriser's interned fit path consumes the spans directly (borrowing
/// `&text[start..end]`) so fitting a corpus no longer allocates one `String`
/// per token occurrence.
pub fn token_spans(text: &str) -> Vec<(usize, usize, TokenKind)> {
    let mut spans = Vec::new();
    let mut chars = text.char_indices().peekable();

    while let Some(&(start, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        if is_word_char(c) {
            let mut end = start + c.len_utf8();
            chars.next();
            while let Some(&(i, nc)) = chars.peek() {
                if is_word_continuation(nc) {
                    end = i + nc.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            // Trim trailing apostrophes / hyphens that are really punctuation.
            let mut slice = &text[start..end];
            while slice.ends_with('\'') || slice.ends_with('-') || slice.ends_with('’') {
                let cut = slice
                    .char_indices()
                    .next_back()
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                slice = &slice[..cut];
            }
            let end = start + slice.len();
            if !slice.is_empty() {
                spans.push((start, end, TokenKind::Word));
            }
            continue;
        }
        if c.is_ascii_digit() {
            let mut end = start + c.len_utf8();
            chars.next();
            while let Some(&(i, nc)) = chars.peek() {
                if nc.is_ascii_digit()
                    || nc == '.' && text[i + 1..].starts_with(|d: char| d.is_ascii_digit())
                {
                    end = i + nc.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            spans.push((start, end, TokenKind::Number));
            continue;
        }
        // punctuation / symbol
        let end = start + c.len_utf8();
        chars.next();
        spans.push((start, end, TokenKind::Punctuation));
    }
    spans
}

/// Tokenise `text` into [`Token`]s with byte offsets.
///
/// Words keep internal apostrophes and hyphens; trailing apostrophes/hyphens are
/// trimmed. Digit runs become [`TokenKind::Number`]; any other non-whitespace
/// character becomes a one-character [`TokenKind::Punctuation`] token.
pub fn tokenize_with_spans(text: &str) -> Vec<Token> {
    token_spans(text)
        .into_iter()
        .map(|(start, end, kind)| Token {
            text: text[start..end].to_string(),
            start,
            end,
            kind,
        })
        .collect()
}

/// Tokenise `text`, returning tokens without caring about spans.
pub fn tokenize(text: &str) -> Vec<Token> {
    tokenize_with_spans(text)
}

/// Lower-cased word-only tokens (no numbers, no punctuation).
pub fn words(text: &str) -> Vec<String> {
    tokenize_with_spans(text)
        .into_iter()
        .filter(|t| t.kind == TokenKind::Word)
        .map(|t| t.lower())
        .collect()
}

/// Split `text` into sentences.
///
/// Sentence boundaries are `.`, `!`, `?` and newlines, with the common social-media
/// caveat that ellipses (`...`) and repeated terminators (`!!!`) close a single
/// sentence. Empty sentences are dropped. Used to reproduce the "total sentence
/// count" and "max sentences per post" statistics of Table II.
pub fn sentences(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'.' || b == b'!' || b == b'?' || b == b'\n' {
            // swallow the run of terminators
            let mut j = i + 1;
            while j < bytes.len()
                && (bytes[j] == b'.' || bytes[j] == b'!' || bytes[j] == b'?' || bytes[j] == b'\n')
            {
                j += 1;
            }
            let sent = text[start..i].trim();
            if !sent.is_empty() {
                out.push(text[start..j].trim());
            }
            start = j;
            i = j;
        } else {
            i += 1;
        }
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_basic_sentence() {
        let toks = tokenize("I feel exhausted all the time.");
        let words: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            words,
            vec!["I", "feel", "exhausted", "all", "the", "time", "."]
        );
    }

    #[test]
    fn keeps_contractions_and_hyphens() {
        let toks = words("I can't handle my self-harm urges");
        assert!(toks.contains(&"can't".to_string()));
        assert!(toks.contains(&"self-harm".to_string()));
    }

    #[test]
    fn trims_trailing_apostrophe() {
        let toks = tokenize("friends' support");
        assert_eq!(toks[0].text, "friends");
    }

    #[test]
    fn spans_round_trip_to_source() {
        let text = "My 9-5 job drains me, and I don’t see the point.";
        for t in tokenize_with_spans(text) {
            assert_eq!(&text[t.start..t.end], t.text);
        }
    }

    #[test]
    fn numbers_are_separate_tokens() {
        let toks = tokenize("2 hours of sleep");
        assert_eq!(toks[0].kind, TokenKind::Number);
        assert_eq!(toks[0].text, "2");
    }

    #[test]
    fn unicode_text_does_not_panic() {
        let toks = tokenize("Je me sens épuisé — toujours fatigué…");
        assert!(toks.iter().any(|t| t.text == "épuisé"));
    }

    #[test]
    fn sentence_splitting_counts() {
        let s = sentences("I hate my job. I feel alone... What now?");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn sentence_splitting_handles_no_terminator() {
        let s = sentences("no terminator here");
        assert_eq!(s, vec!["no terminator here"]);
    }

    #[test]
    fn empty_text_yields_nothing() {
        assert!(tokenize("").is_empty());
        assert!(sentences("").is_empty());
        assert!(sentences("...").is_empty());
    }
}
