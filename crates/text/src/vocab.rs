//! Frequency-counted vocabularies.
//!
//! Both feature extraction (TF-IDF column space) and the transformer embedding tables
//! need a stable token → id mapping with document-frequency statistics. The
//! [`VocabularyBuilder`] accumulates counts over a corpus; [`Vocabulary`] freezes them
//! into contiguous ids (sorted by descending frequency, ties broken lexicographically
//! so builds are reproducible across runs and platforms).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Reserved id for the unknown token in vocabularies built with `with_unk`.
pub const UNK_TOKEN: &str = "<unk>";
/// Reserved padding token used by the transformer batching code.
pub const PAD_TOKEN: &str = "<pad>";
/// Reserved classification token prepended to transformer inputs.
pub const CLS_TOKEN: &str = "<cls>";
/// Reserved mask token used by the masked-LM pre-initialisation stage.
pub const MASK_TOKEN: &str = "<mask>";
/// Reserved separator/end-of-sequence token.
pub const SEP_TOKEN: &str = "<sep>";

/// Accumulates term and document frequencies before freezing a [`Vocabulary`].
#[derive(Debug, Clone, Default)]
pub struct VocabularyBuilder {
    term_counts: HashMap<String, u64>,
    doc_counts: HashMap<String, u64>,
    n_docs: u64,
}

impl VocabularyBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one document's tokens. Document frequency counts each term once per doc.
    pub fn add_document<S: AsRef<str>>(&mut self, tokens: &[S]) {
        self.n_docs += 1;
        let mut seen: HashMap<&str, ()> = HashMap::new();
        for t in tokens {
            let t = t.as_ref();
            *self.term_counts.entry(t.to_string()).or_insert(0) += 1;
            if seen.insert(t, ()).is_none() {
                *self.doc_counts.entry(t.to_string()).or_insert(0) += 1;
            }
        }
    }

    /// Record pre-aggregated counts for one term: `term_count` total
    /// occurrences and `doc_count` containing documents. This is how the
    /// interned fit path (which counts by dense symbol into plain vectors)
    /// folds its totals into a builder; the result is exactly what
    /// [`add_document`](Self::add_document)-ing the same corpus would have
    /// produced, because both are the same integer sums.
    pub fn record_term(&mut self, term: &str, term_count: u64, doc_count: u64) {
        if term_count == 0 && doc_count == 0 {
            return;
        }
        *self.term_counts.entry(term.to_string()).or_insert(0) += term_count;
        if doc_count > 0 {
            *self.doc_counts.entry(term.to_string()).or_insert(0) += doc_count;
        }
    }

    /// Record `n` documents counted externally (the companion of
    /// [`record_term`](Self::record_term)).
    pub fn record_documents(&mut self, n: u64) {
        self.n_docs += n;
    }

    /// Merge another builder into this one, summing term frequencies, document
    /// frequencies and document counts.
    ///
    /// This is the reduce step of the sharded fit pipeline: independent shards
    /// count disjoint document chunks in parallel, then merge. Because every
    /// count is an exact integer sum and [`build`](Self::build) orders terms by
    /// a total order (frequency descending, then lexicographic), the merged
    /// builder freezes into a [`Vocabulary`] bit-identical to one built by a
    /// single sequential scan — regardless of how the corpus was split or in
    /// which order shards merge.
    pub fn merge(&mut self, other: VocabularyBuilder) {
        self.n_docs += other.n_docs;
        for (term, count) in other.term_counts {
            *self.term_counts.entry(term).or_insert(0) += count;
        }
        for (term, count) in other.doc_counts {
            *self.doc_counts.entry(term).or_insert(0) += count;
        }
    }

    /// Number of documents added so far.
    pub fn n_documents(&self) -> u64 {
        self.n_docs
    }

    /// Number of distinct terms seen so far.
    pub fn n_terms(&self) -> usize {
        self.term_counts.len()
    }

    /// Freeze into a [`Vocabulary`], keeping terms with at least `min_count` total
    /// occurrences and at most `max_size` terms (most frequent first; `None` = no cap).
    pub fn build(&self, min_count: u64, max_size: Option<usize>) -> Vocabulary {
        self.build_filtered(|_, term_count, _| term_count >= min_count, max_size)
    }

    /// Freeze into a [`Vocabulary`], keeping terms that occur in at least
    /// `min_document_frequency` documents (the `min_df` semantics of scikit-learn
    /// vectorisers, which filter on document frequency, not total occurrences) and
    /// at most `max_size` terms.
    pub fn build_with_min_df(
        &self,
        min_document_frequency: usize,
        max_size: Option<usize>,
    ) -> Vocabulary {
        self.build_filtered(
            |_, _, doc_count| doc_count as usize >= min_document_frequency,
            max_size,
        )
    }

    fn build_filtered<F>(&self, keep: F, max_size: Option<usize>) -> Vocabulary
    where
        F: Fn(&str, u64, u64) -> bool,
    {
        let mut entries: Vec<(&String, u64)> = self
            .term_counts
            .iter()
            .filter(|(t, &c)| keep(t, c, *self.doc_counts.get(*t).unwrap_or(&0)))
            .map(|(t, &c)| (t, c))
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        if let Some(cap) = max_size {
            entries.truncate(cap);
        }
        let mut terms = Vec::with_capacity(entries.len());
        let mut ids = HashMap::with_capacity(entries.len());
        let mut term_freqs = Vec::with_capacity(entries.len());
        let mut doc_freqs = Vec::with_capacity(entries.len());
        for (term, count) in entries {
            ids.insert(term.clone(), terms.len());
            term_freqs.push(count);
            doc_freqs.push(*self.doc_counts.get(term).unwrap_or(&0));
            terms.push(term.clone());
        }
        Vocabulary {
            terms,
            ids,
            term_freqs,
            doc_freqs,
            n_docs: self.n_docs,
            special: Vec::new(),
        }
    }

    /// Like [`build`](Self::build) but prepends the reserved special tokens
    /// (`<pad>`, `<unk>`, `<cls>`, `<sep>`, `<mask>`) at ids 0..5, as the transformer
    /// stack expects.
    pub fn build_with_specials(&self, min_count: u64, max_size: Option<usize>) -> Vocabulary {
        let base = self.build(min_count, max_size);
        let specials = [PAD_TOKEN, UNK_TOKEN, CLS_TOKEN, SEP_TOKEN, MASK_TOKEN];
        let mut terms: Vec<String> = specials.iter().map(|s| s.to_string()).collect();
        let mut term_freqs = vec![0; specials.len()];
        let mut doc_freqs = vec![0; specials.len()];
        for (i, t) in base.terms.iter().enumerate() {
            if specials.contains(&t.as_str()) {
                continue;
            }
            terms.push(t.clone());
            term_freqs.push(base.term_freqs[i]);
            doc_freqs.push(base.doc_freqs[i]);
        }
        let ids = terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        Vocabulary {
            terms,
            ids,
            term_freqs,
            doc_freqs,
            n_docs: self.n_docs,
            special: specials.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// A frozen token → id mapping with term/document frequencies.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Vocabulary {
    terms: Vec<String>,
    ids: HashMap<String, usize>,
    term_freqs: Vec<u64>,
    doc_freqs: Vec<u64>,
    n_docs: u64,
    special: Vec<String>,
}

impl Vocabulary {
    /// Build directly from an iterator of terms (each distinct term gets frequency of
    /// its number of occurrences; document frequency is not tracked). Mostly for tests.
    pub fn from_terms<I, S>(terms: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut b = VocabularyBuilder::new();
        let collected: Vec<String> = terms.into_iter().map(|s| s.as_ref().to_string()).collect();
        b.add_document(&collected);
        b.build(1, None)
    }

    /// Number of terms (including specials if present).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Id of `term`, if present.
    pub fn id(&self, term: &str) -> Option<usize> {
        self.ids.get(term).copied()
    }

    /// Id of `term`, falling back to the `<unk>` id when absent.
    ///
    /// Panics if the vocabulary was not built with specials and the term is missing.
    pub fn id_or_unk(&self, term: &str) -> usize {
        self.id(term)
            .or_else(|| self.id(UNK_TOKEN))
            .expect("term missing and vocabulary has no <unk> token")
    }

    /// Term for `id`, if in range.
    pub fn term(&self, id: usize) -> Option<&str> {
        self.terms.get(id).map(|s| s.as_str())
    }

    /// Total occurrences of `term` in the corpus the vocabulary was built from.
    pub fn term_frequency(&self, term: &str) -> u64 {
        self.id(term).map(|i| self.term_freqs[i]).unwrap_or(0)
    }

    /// Number of documents containing `term`.
    pub fn document_frequency(&self, term: &str) -> u64 {
        self.id(term).map(|i| self.doc_freqs[i]).unwrap_or(0)
    }

    /// Number of documents the vocabulary was built from.
    pub fn n_documents(&self) -> u64 {
        self.n_docs
    }

    /// Iterate over `(term, id)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> {
        self.terms.iter().enumerate().map(|(i, t)| (t.as_str(), i))
    }

    /// All terms in id order.
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// Smoothed inverse document frequency of `term`:
    /// `ln((1 + N) / (1 + df)) + 1`, the same smoothing scikit-learn uses, so that the
    /// TF-IDF baseline matches the paper's experimental setup.
    pub fn idf(&self, term: &str) -> f64 {
        let df = self.document_frequency(term) as f64;
        let n = self.n_docs as f64;
        ((1.0 + n) / (1.0 + df)).ln() + 1.0
    }

    /// Whether `term` is one of the reserved special tokens.
    pub fn is_special(&self, term: &str) -> bool {
        self.special.iter().any(|s| s == term)
    }

    /// The top `k` most frequent terms (id order is frequency order for non-special
    /// vocabularies).
    pub fn top_k(&self, k: usize) -> Vec<(&str, u64)> {
        let mut entries: Vec<(&str, u64)> = self
            .terms
            .iter()
            .enumerate()
            .filter(|(_, t)| !self.is_special(t))
            .map(|(i, t)| (t.as_str(), self.term_freqs[i]))
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        entries.truncate(k);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_builder() -> VocabularyBuilder {
        let mut b = VocabularyBuilder::new();
        b.add_document(&["i", "feel", "alone", "feel"]);
        b.add_document(&["work", "drains", "me"]);
        b.add_document(&["i", "feel", "exhausted"]);
        b
    }

    #[test]
    fn ids_are_frequency_ordered() {
        let v = sample_builder().build(1, None);
        // "feel" occurs 3 times -> id 0; "i" occurs twice -> id 1
        assert_eq!(v.id("feel"), Some(0));
        assert_eq!(v.id("i"), Some(1));
        assert_eq!(v.term(0), Some("feel"));
    }

    #[test]
    fn min_count_filters_rare_terms() {
        let v = sample_builder().build(2, None);
        assert!(v.id("feel").is_some());
        assert!(v.id("exhausted").is_none());
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn min_df_filters_on_document_frequency() {
        // "feel" occurs 3 times but in only 2 documents; "i" occurs 2 times in
        // 2 documents. A doc-frequency threshold of 2 keeps both and drops every
        // single-document term, unlike the total-occurrence filter of `build`.
        let v = sample_builder().build_with_min_df(2, None);
        assert!(v.id("feel").is_some());
        assert!(v.id("i").is_some());
        assert!(v.id("work").is_none());
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn max_size_caps_vocabulary() {
        let v = sample_builder().build(1, Some(3));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn document_frequency_counts_once_per_doc() {
        let v = sample_builder().build(1, None);
        assert_eq!(v.term_frequency("feel"), 3);
        assert_eq!(v.document_frequency("feel"), 2);
        assert_eq!(v.n_documents(), 3);
    }

    #[test]
    fn idf_is_monotone_in_rarity() {
        let v = sample_builder().build(1, None);
        assert!(v.idf("exhausted") > v.idf("feel"));
        assert!(v.idf("feel") >= 1.0);
    }

    #[test]
    fn unknown_term_behaviour() {
        let v = sample_builder().build(1, None);
        assert_eq!(v.id("zzz"), None);
        assert_eq!(v.term_frequency("zzz"), 0);
        // idf of an unseen term equals the max possible idf
        assert!(v.idf("zzz") >= v.idf("exhausted"));
    }

    #[test]
    fn specials_occupy_low_ids() {
        let v = sample_builder().build_with_specials(1, None);
        assert_eq!(v.id(PAD_TOKEN), Some(0));
        assert_eq!(v.id(UNK_TOKEN), Some(1));
        assert_eq!(v.id(CLS_TOKEN), Some(2));
        assert!(v.is_special(MASK_TOKEN));
        assert_eq!(v.id_or_unk("not-in-vocab"), 1);
    }

    #[test]
    fn top_k_excludes_specials() {
        let v = sample_builder().build_with_specials(1, None);
        let top = v.top_k(2);
        assert_eq!(top[0].0, "feel");
        assert!(top.iter().all(|(t, _)| !t.starts_with('<')));
    }

    #[test]
    fn merge_equals_sequential_counting() {
        // Shard the sample corpus two ways; both merges must equal the
        // sequential build exactly.
        let sequential = sample_builder();

        let mut left = VocabularyBuilder::new();
        left.add_document(&["i", "feel", "alone", "feel"]);
        let mut right = VocabularyBuilder::new();
        right.add_document(&["work", "drains", "me"]);
        right.add_document(&["i", "feel", "exhausted"]);
        left.merge(right);

        assert_eq!(left.n_documents(), sequential.n_documents());
        assert_eq!(left.n_terms(), sequential.n_terms());
        let merged = left.build(1, None);
        let expected = sequential.build(1, None);
        assert_eq!(merged.terms(), expected.terms());
        for term in expected.terms() {
            assert_eq!(merged.term_frequency(term), expected.term_frequency(term));
            assert_eq!(
                merged.document_frequency(term),
                expected.document_frequency(term)
            );
        }
    }

    #[test]
    fn merge_with_empty_builder_is_identity() {
        let mut b = sample_builder();
        b.merge(VocabularyBuilder::new());
        let v = b.build(1, None);
        let expected = sample_builder().build(1, None);
        assert_eq!(v.terms(), expected.terms());
        assert_eq!(v.n_documents(), expected.n_documents());

        let mut empty = VocabularyBuilder::new();
        empty.merge(sample_builder());
        assert_eq!(empty.build(1, None).terms(), expected.terms());
    }

    #[test]
    fn from_terms_convenience() {
        let v = Vocabulary::from_terms(["a", "b", "a"]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.term_frequency("a"), 2);
    }
}
