//! WordPiece-style subword tokenisation.
//!
//! The paper fine-tunes BERT-family models, which operate on subword pieces rather
//! than whole words. Our transformer analogues do the same: a subword vocabulary is
//! learned from the corpus with a frequency-driven pair-merging procedure (a small
//! BPE/WordPiece hybrid), and encoding uses greedy longest-match-first with `##`
//! continuation pieces, exactly like the original WordPiece tokeniser. Unknown
//! characters fall back to `<unk>`.

use crate::vocab::{CLS_TOKEN, MASK_TOKEN, PAD_TOKEN, SEP_TOKEN, UNK_TOKEN};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Builds a subword vocabulary from word frequency counts.
#[derive(Debug, Clone)]
pub struct SubwordVocabBuilder {
    word_counts: HashMap<String, u64>,
    target_size: usize,
    min_pair_count: u64,
}

impl SubwordVocabBuilder {
    /// New builder targeting a vocabulary of roughly `target_size` pieces.
    pub fn new(target_size: usize) -> Self {
        Self {
            word_counts: HashMap::new(),
            target_size,
            min_pair_count: 2,
        }
    }

    /// Add a document's words (lower-cased by the caller or not — counts are exact).
    pub fn add_words<S: AsRef<str>>(&mut self, words: &[S]) {
        for w in words {
            *self.word_counts.entry(w.as_ref().to_string()).or_insert(0) += 1;
        }
    }

    /// Learn merges and freeze the tokeniser.
    pub fn build(&self) -> SubwordTokenizer {
        // Start from characters; first piece of a word is the bare char, continuation
        // pieces carry the "##" prefix.
        let mut pieces: HashMap<String, u64> = HashMap::new();
        // word -> current segmentation
        let mut segmentations: HashMap<String, Vec<String>> = HashMap::new();
        for (word, &count) in &self.word_counts {
            let segs: Vec<String> = word
                .chars()
                .enumerate()
                .map(|(i, c)| {
                    if i == 0 {
                        c.to_string()
                    } else {
                        format!("##{c}")
                    }
                })
                .collect();
            for s in &segs {
                *pieces.entry(s.clone()).or_insert(0) += count;
            }
            segmentations.insert(word.clone(), segs);
        }

        // Iteratively merge the most frequent adjacent pair until the target size is
        // reached or no pair is frequent enough.
        while pieces.len() < self.target_size {
            let mut pair_counts: HashMap<(String, String), u64> = HashMap::new();
            for (word, segs) in &segmentations {
                let count = self.word_counts[word];
                for pair in segs.windows(2) {
                    *pair_counts
                        .entry((pair[0].clone(), pair[1].clone()))
                        .or_insert(0) += count;
                }
            }
            let best = pair_counts
                .into_iter()
                .filter(|(_, c)| *c >= self.min_pair_count)
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            let Some(((left, right), _)) = best else {
                break;
            };
            let merged = format!("{}{}", left, right.trim_start_matches("##"));
            pieces.entry(merged.clone()).or_insert(0);
            for segs in segmentations.values_mut() {
                let mut i = 0;
                while i + 1 < segs.len() {
                    if segs[i] == left && segs[i + 1] == right {
                        segs[i] = merged.clone();
                        segs.remove(i + 1);
                    } else {
                        i += 1;
                    }
                }
            }
            // Recompute piece counts cheaply: only existence matters for encoding, but
            // keep counts roughly updated for the size check.
            if pieces.len() >= self.target_size {
                break;
            }
        }

        let mut vocab: Vec<String> = vec![
            PAD_TOKEN.to_string(),
            UNK_TOKEN.to_string(),
            CLS_TOKEN.to_string(),
            SEP_TOKEN.to_string(),
            MASK_TOKEN.to_string(),
        ];
        let mut learned: Vec<String> = pieces.keys().cloned().collect();
        learned.sort();
        vocab.extend(learned);
        let ids = vocab
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();
        SubwordTokenizer { vocab, ids }
    }
}

/// Greedy longest-match WordPiece tokeniser.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubwordTokenizer {
    vocab: Vec<String>,
    ids: HashMap<String, usize>,
}

impl SubwordTokenizer {
    /// Build directly from a list of pieces (specials are prepended automatically if
    /// missing). Intended for tests and for the character-level fallback tokeniser.
    pub fn from_pieces<I, S>(pieces: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut vocab: Vec<String> = vec![
            PAD_TOKEN.to_string(),
            UNK_TOKEN.to_string(),
            CLS_TOKEN.to_string(),
            SEP_TOKEN.to_string(),
            MASK_TOKEN.to_string(),
        ];
        for p in pieces {
            let p = p.as_ref().to_string();
            if !vocab.contains(&p) {
                vocab.push(p);
            }
        }
        let ids = vocab
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();
        Self { vocab, ids }
    }

    /// Vocabulary size including special tokens.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Id of a piece.
    pub fn piece_id(&self, piece: &str) -> Option<usize> {
        self.ids.get(piece).copied()
    }

    /// Piece string for an id.
    pub fn piece(&self, id: usize) -> Option<&str> {
        self.vocab.get(id).map(|s| s.as_str())
    }

    /// Id of the padding token.
    pub fn pad_id(&self) -> usize {
        self.ids[PAD_TOKEN]
    }

    /// Id of the unknown token.
    pub fn unk_id(&self) -> usize {
        self.ids[UNK_TOKEN]
    }

    /// Id of the classification token.
    pub fn cls_id(&self) -> usize {
        self.ids[CLS_TOKEN]
    }

    /// Id of the separator token.
    pub fn sep_id(&self) -> usize {
        self.ids[SEP_TOKEN]
    }

    /// Id of the mask token.
    pub fn mask_id(&self) -> usize {
        self.ids[MASK_TOKEN]
    }

    /// Segment a single word into pieces with greedy longest-match-first.
    pub fn encode_word(&self, word: &str) -> Vec<usize> {
        if word.is_empty() {
            return Vec::new();
        }
        if let Some(&id) = self.ids.get(word) {
            return vec![id];
        }
        let chars: Vec<char> = word.chars().collect();
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < chars.len() {
            let mut end = chars.len();
            let mut found: Option<usize> = None;
            while end > start {
                let mut candidate: String = chars[start..end].iter().collect();
                if start > 0 {
                    candidate = format!("##{candidate}");
                }
                if let Some(&id) = self.ids.get(&candidate) {
                    found = Some(id);
                    break;
                }
                end -= 1;
            }
            match found {
                Some(id) => {
                    out.push(id);
                    start = end;
                }
                None => {
                    // Character unknown to the vocabulary: emit <unk> for the whole
                    // remaining word, matching WordPiece behaviour.
                    return vec![self.unk_id()];
                }
            }
        }
        out
    }

    /// Encode a sequence of words into piece ids (no special tokens added).
    pub fn encode_words<S: AsRef<str>>(&self, words: &[S]) -> Vec<usize> {
        words
            .iter()
            .flat_map(|w| self.encode_word(w.as_ref()))
            .collect()
    }

    /// Encode a sequence of words for classification: `[CLS] pieces... [SEP]`,
    /// truncated/padded to exactly `max_len` ids.
    pub fn encode_for_classification<S: AsRef<str>>(
        &self,
        words: &[S],
        max_len: usize,
    ) -> Vec<usize> {
        let mut ids = vec![self.cls_id()];
        ids.extend(self.encode_words(words));
        ids.truncate(max_len.saturating_sub(1));
        ids.push(self.sep_id());
        while ids.len() < max_len {
            ids.push(self.pad_id());
        }
        ids
    }

    /// Decode piece ids back to a readable string (continuation pieces are glued).
    pub fn decode(&self, ids: &[usize]) -> String {
        let mut out = String::new();
        for &id in ids {
            let Some(p) = self.piece(id) else { continue };
            if p == PAD_TOKEN || p == CLS_TOKEN || p == SEP_TOKEN {
                continue;
            }
            if let Some(cont) = p.strip_prefix("##") {
                out.push_str(cont);
            } else {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_tokenizer() -> SubwordTokenizer {
        let mut b = SubwordVocabBuilder::new(200);
        let corpus = [
            "i feel exhausted and alone",
            "i feel anxious about my job",
            "my job drains me and i feel exhausted",
            "sleeping is hard and i feel anxious",
            "feeling alone and exhausted again",
        ];
        for doc in corpus {
            let words: Vec<&str> = doc.split_whitespace().collect();
            b.add_words(&words);
        }
        b.build()
    }

    #[test]
    fn frequent_words_become_single_pieces_or_few_pieces() {
        let t = trained_tokenizer();
        let ids = t.encode_word("feel");
        assert!(!ids.is_empty());
        assert!(ids.len() <= 4);
        assert!(ids.iter().all(|&i| i != t.unk_id()));
    }

    #[test]
    fn unknown_characters_map_to_unk() {
        let t = trained_tokenizer();
        assert_eq!(t.encode_word("数"), vec![t.unk_id()]);
    }

    #[test]
    fn decode_round_trips_known_words() {
        let t = trained_tokenizer();
        let ids = t.encode_words(&["i", "feel", "alone"]);
        let decoded = t.decode(&ids);
        assert_eq!(decoded.replace(' ', ""), "ifeelalone");
    }

    #[test]
    fn classification_encoding_has_fixed_length() {
        let t = trained_tokenizer();
        let ids = t.encode_for_classification(&["i", "feel", "exhausted"], 16);
        assert_eq!(ids.len(), 16);
        assert_eq!(ids[0], t.cls_id());
        assert!(ids.contains(&t.sep_id()));
        assert_eq!(*ids.last().unwrap(), t.pad_id());
    }

    #[test]
    fn classification_encoding_truncates_long_input() {
        let t = trained_tokenizer();
        let many: Vec<String> = (0..200).map(|_| "exhausted".to_string()).collect();
        let ids = t.encode_for_classification(&many, 32);
        assert_eq!(ids.len(), 32);
        assert_eq!(*ids.last().unwrap(), t.sep_id());
    }

    #[test]
    fn from_pieces_respects_specials() {
        let t = SubwordTokenizer::from_pieces(["feel", "##ing"]);
        assert_eq!(t.pad_id(), 0);
        assert_eq!(t.unk_id(), 1);
        let ids = t.encode_word("feeling");
        assert_eq!(ids.len(), 2);
        assert_eq!(t.decode(&ids), "feeling");
    }

    #[test]
    fn empty_word_is_empty_encoding() {
        let t = trained_tokenizer();
        assert!(t.encode_word("").is_empty());
    }
}
