//! Light Porter-style suffix stripping.
//!
//! The classical baselines in the paper use TF-IDF over word forms; stemming is an
//! optional analyzer step (exercised by the feature-ablation benches) that conflates
//! `struggling` / `struggles` / `struggled`, which Table III shows occur across several
//! dimensions. This is a pragmatic subset of the Porter algorithm: steps 1a/1b/1c plus
//! a handful of common derivational suffixes — enough to normalise the inflectional
//! variation in forum text without a full rule table.

/// Measure (number of VC sequences) of a word, per Porter's definition.
fn measure(word: &str) -> usize {
    let mut m = 0;
    let mut prev_vowel = false;
    for (i, c) in word.chars().enumerate() {
        let v = is_vowel(word, i, c);
        if prev_vowel && !v {
            m += 1;
        }
        prev_vowel = v;
    }
    m
}

fn is_vowel(word: &str, idx: usize, c: char) -> bool {
    match c {
        'a' | 'e' | 'i' | 'o' | 'u' => true,
        'y' => {
            // 'y' is a vowel if preceded by a consonant
            if idx == 0 {
                false
            } else {
                let prev = word.chars().nth(idx - 1).unwrap_or('a');
                !matches!(prev, 'a' | 'e' | 'i' | 'o' | 'u')
            }
        }
        _ => false,
    }
}

fn contains_vowel(word: &str) -> bool {
    word.chars().enumerate().any(|(i, c)| is_vowel(word, i, c))
}

fn ends_double_consonant(word: &str) -> bool {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 2 {
        return false;
    }
    let last = chars[chars.len() - 1];
    let prev = chars[chars.len() - 2];
    last == prev && !matches!(last, 'a' | 'e' | 'i' | 'o' | 'u')
}

/// Stem a lower-cased English word.
///
/// Words of three characters or fewer are returned unchanged.
pub fn stem(word: &str) -> String {
    let word = word.to_lowercase();
    if word.len() <= 3 || !word.chars().all(|c| c.is_ascii_alphabetic()) {
        return word;
    }
    let mut w = word;

    // Step 1a: plurals
    if let Some(base) = w.strip_suffix("sses") {
        w = format!("{base}ss");
    } else if let Some(base) = w.strip_suffix("ies") {
        w = format!("{base}i");
    } else if w.ends_with("ss") {
        // keep
    } else if let Some(base) = w.strip_suffix('s') {
        if base.len() > 2 {
            w = base.to_string();
        }
    }

    // Step 1b: -ed / -ing
    let mut cleanup = false;
    if let Some(base) = w.strip_suffix("eed") {
        if measure(base) > 0 {
            w = format!("{base}ee");
        }
    } else if let Some(base) = w.strip_suffix("ing") {
        if contains_vowel(base) && base.len() >= 2 {
            w = base.to_string();
            cleanup = true;
        }
    } else if let Some(base) = w.strip_suffix("ed") {
        if contains_vowel(base) && base.len() >= 2 {
            w = base.to_string();
            cleanup = true;
        }
    }
    if cleanup {
        if w.ends_with("at") || w.ends_with("bl") || w.ends_with("iz") {
            w.push('e');
        } else if ends_double_consonant(&w)
            && !w.ends_with('l')
            && !w.ends_with('s')
            && !w.ends_with('z')
        {
            w.pop();
        } else if measure(&w) == 1 && ends_cvc(&w) {
            w.push('e');
        }
    }

    // Step 1c: -y -> -i when a vowel precedes
    if w.ends_with('y') {
        let base = &w[..w.len() - 1];
        if contains_vowel(base) {
            w = format!("{base}i");
        }
    }

    // A few high-value derivational suffixes (subset of Porter steps 2-4).
    for (suffix, replacement, min_measure) in [
        ("ational", "ate", 0),
        ("fulness", "ful", 0),
        ("ousness", "ous", 0),
        ("iveness", "ive", 0),
        ("ization", "ize", 0),
        ("ousli", "ous", 0),
        ("entli", "ent", 0),
        ("fulli", "ful", 0),
        ("lessli", "less", 0),
        ("alli", "al", 0),
        ("ness", "", 1),
        ("ment", "", 1),
        ("tion", "t", 1),
    ] {
        if let Some(base) = w.strip_suffix(suffix) {
            if measure(base) > min_measure && !base.is_empty() {
                w = format!("{base}{replacement}");
                break;
            }
        }
    }

    w
}

fn ends_cvc(word: &str) -> bool {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 3 {
        return false;
    }
    let n = chars.len();
    let c2 = chars[n - 1];
    let v = chars[n - 2];
    let c1 = chars[n - 3];
    let is_v = |c: char| matches!(c, 'a' | 'e' | 'i' | 'o' | 'u');
    !is_v(c1) && is_v(v) && !is_v(c2) && !matches!(c2, 'w' | 'x' | 'y')
}

/// Stem every word in a token sequence.
pub fn stem_all<I, S>(words: I) -> Vec<String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    words.into_iter().map(|w| stem(w.as_ref())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflections_conflate() {
        assert_eq!(stem("struggling"), stem("struggled"));
        assert_eq!(stem("feelings"), stem("feeling"));
        assert_eq!(stem("crying"), "cry");
    }

    #[test]
    fn plural_stripping() {
        assert_eq!(stem("friends"), "friend");
        assert_eq!(stem("deadlines"), "deadline");
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(stem("me"), "me");
        assert_eq!(stem("job"), "job");
        assert_eq!(stem("sad"), "sad");
    }

    #[test]
    fn y_to_i() {
        assert_eq!(stem("anxiety"), "anxieti");
        assert_eq!(stem("lonely"), "loneli");
    }

    #[test]
    fn double_ss_kept() {
        assert_eq!(stem("stress"), "stress");
        assert_eq!(stem("hopelessness"), "hopeless");
    }

    #[test]
    fn non_alphabetic_passthrough() {
        assert_eq!(stem("self-harm"), "self-harm");
        assert_eq!(stem("<url>"), "<url>");
    }

    #[test]
    fn stem_all_maps_each() {
        let out = stem_all(["friends", "working"]);
        assert_eq!(out, vec!["friend", "work"]);
    }
}
