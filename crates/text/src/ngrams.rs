//! N-gram extraction.
//!
//! Word n-grams drive the BLEU metric used in Table V (explanation quality) and the
//! optional bigram features in the TF-IDF ablation benches; character n-grams are used
//! by the subword vocabulary builder as a fallback segmentation for rare words.

/// A word n-gram: an owned window of `n` tokens joined for hashing convenience.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NGram(pub Vec<String>);

impl NGram {
    /// The n-gram order.
    pub fn order(&self) -> usize {
        self.0.len()
    }

    /// Space-joined display form.
    pub fn joined(&self) -> String {
        self.0.join(" ")
    }
}

impl std::fmt::Display for NGram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.joined())
    }
}

/// Extract all word n-grams of order `n` from `tokens`.
///
/// Returns an empty vector if `n == 0` or `tokens.len() < n`.
pub fn ngrams<S: AsRef<str>>(tokens: &[S], n: usize) -> Vec<NGram> {
    if n == 0 || tokens.len() < n {
        return Vec::new();
    }
    tokens
        .windows(n)
        .map(|w| NGram(w.iter().map(|s| s.as_ref().to_string()).collect()))
        .collect()
}

/// Extract all n-grams of orders `1..=max_n`.
pub fn ngrams_up_to<S: AsRef<str>>(tokens: &[S], max_n: usize) -> Vec<NGram> {
    let mut out = Vec::new();
    for n in 1..=max_n {
        out.extend(ngrams(tokens, n));
    }
    out
}

/// Extract character n-grams of order `n` from a word (no padding).
pub fn char_ngrams(word: &str, n: usize) -> Vec<String> {
    let chars: Vec<char> = word.chars().collect();
    if n == 0 || chars.len() < n {
        return Vec::new();
    }
    chars
        .windows(n)
        .map(|w| w.iter().collect::<String>())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigrams_of_sentence() {
        let toks = ["i", "feel", "so", "alone"];
        let grams = ngrams(&toks, 2);
        assert_eq!(grams.len(), 3);
        assert_eq!(grams[0].joined(), "i feel");
        assert_eq!(grams[2].joined(), "so alone");
    }

    #[test]
    fn unigrams_equal_tokens() {
        let toks = ["a", "b", "c"];
        let grams = ngrams(&toks, 1);
        assert_eq!(grams.len(), 3);
        assert!(grams.iter().all(|g| g.order() == 1));
    }

    #[test]
    fn order_larger_than_input_is_empty() {
        let toks = ["one", "two"];
        assert!(ngrams(&toks, 3).is_empty());
        assert!(ngrams(&toks, 0).is_empty());
    }

    #[test]
    fn up_to_counts() {
        let toks = ["a", "b", "c", "d"];
        // 4 unigrams + 3 bigrams + 2 trigrams = 9
        assert_eq!(ngrams_up_to(&toks, 3).len(), 9);
    }

    #[test]
    fn char_ngrams_of_word() {
        let grams = char_ngrams("sleep", 3);
        assert_eq!(grams, vec!["sle", "lee", "eep"]);
        assert!(char_ngrams("ab", 3).is_empty());
    }

    #[test]
    fn char_ngrams_unicode_safe() {
        let grams = char_ngrams("épuisé", 2);
        assert_eq!(grams.len(), 5);
    }
}
