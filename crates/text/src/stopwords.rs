//! English stop-word handling.
//!
//! The Table III analysis ("most frequent words in explanatory text spans") only makes
//! sense after function words are removed; the TF-IDF baselines likewise benefit from
//! dropping them. The list below is a compact English stop-word list extended with
//! contractions and informal forms that dominate forum text (`im`, `ive`, `dont`, …).
//!
//! Note that the paper's own frequent-word lists keep the pronoun `me` (SA and EA rows
//! of Table III), so first-person object pronouns are deliberately *not* stop-words
//! here — in mental-health text they carry signal about self-focus.

use std::collections::HashSet;

/// Core English stop-word list (function words, auxiliaries, frequent fillers).
pub const ENGLISH_STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren't",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "couldn't",
    "did",
    "didn't",
    "do",
    "does",
    "doesn't",
    "doing",
    "don't",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadn't",
    "has",
    "hasn't",
    "have",
    "haven't",
    "having",
    "he",
    "he'd",
    "he'll",
    "he's",
    "her",
    "here",
    "here's",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "how's",
    "i'd",
    "i'll",
    "i'm",
    "i've",
    "if",
    "in",
    "into",
    "is",
    "isn't",
    "it",
    "it's",
    "its",
    "itself",
    "let's",
    "more",
    "most",
    "mustn't",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "shan't",
    "she",
    "she'd",
    "she'll",
    "she's",
    "should",
    "shouldn't",
    "so",
    "some",
    "such",
    "than",
    "that",
    "that's",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "there's",
    "these",
    "they",
    "they'd",
    "they'll",
    "they're",
    "they've",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "wasn't",
    "we",
    "we'd",
    "we'll",
    "we're",
    "we've",
    "were",
    "weren't",
    "what",
    "what's",
    "when",
    "when's",
    "where",
    "where's",
    "which",
    "while",
    "who",
    "who's",
    "whom",
    "why",
    "why's",
    "with",
    "won't",
    "would",
    "wouldn't",
    "you",
    "you'd",
    "you'll",
    "you're",
    "you've",
    "your",
    "yours",
    "yourself",
    "yourselves",
    // informal / forum-specific variants without apostrophes
    "im",
    "ive",
    "id",
    "ill",
    "dont",
    "doesnt",
    "didnt",
    "cant",
    "wont",
    "isnt",
    "arent",
    "wasnt",
    "werent",
    "havent",
    "hasnt",
    "hadnt",
    "wouldnt",
    "couldnt",
    "shouldnt",
    "thats",
    "theres",
    "youre",
    "youve",
    "theyre",
    "gonna",
    "wanna",
    "u",
    "ur",
    "just",
    "really",
    "also",
    "even",
    "still",
    "much",
    "will",
    "get",
    "got",
    "like",
    "know",
    "one",
    "it'd",
    "i",
];

/// Returns `true` if `word` (already lower-cased) is an English stop-word.
pub fn is_stopword(word: &str) -> bool {
    StopwordFilter::english().is_stopword(word)
}

/// A reusable stop-word filter backed by a hash set.
#[derive(Debug, Clone)]
pub struct StopwordFilter {
    words: HashSet<&'static str>,
    extra: HashSet<String>,
}

impl StopwordFilter {
    /// The built-in English list.
    pub fn english() -> Self {
        Self {
            words: ENGLISH_STOPWORDS.iter().copied().collect(),
            extra: HashSet::new(),
        }
    }

    /// A process-wide shared English filter. Building the stop-word hash set is
    /// the dominant cost of [`english`](Self::english), so callers that filter
    /// one document at a time (analyzers, explainers) should borrow this instead
    /// of constructing their own.
    pub fn english_shared() -> &'static StopwordFilter {
        static SHARED: std::sync::OnceLock<StopwordFilter> = std::sync::OnceLock::new();
        SHARED.get_or_init(StopwordFilter::english)
    }

    /// An empty filter (nothing is a stop-word).
    pub fn empty() -> Self {
        Self {
            words: HashSet::new(),
            extra: HashSet::new(),
        }
    }

    /// Add extra stop-words (lower-cased automatically).
    pub fn with_extra<I, S>(mut self, extra: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for w in extra {
            self.extra.insert(w.as_ref().to_lowercase());
        }
        self
    }

    /// Is `word` a stop-word? Case-insensitive.
    pub fn is_stopword(&self, word: &str) -> bool {
        if self.words.contains(word) || self.extra.contains(word) {
            return true;
        }
        let lower = word.to_lowercase();
        self.words.contains(lower.as_str()) || self.extra.contains(&lower)
    }

    /// Remove stop-words from a token sequence.
    pub fn filter<'a, I>(&self, tokens: I) -> Vec<String>
    where
        I: IntoIterator<Item = &'a str>,
    {
        tokens
            .into_iter()
            .filter(|t| !self.is_stopword(t))
            .map(|t| t.to_string())
            .collect()
    }

    /// Number of words in the filter.
    pub fn len(&self) -> usize {
        self.words.len() + self.extra.len()
    }

    /// Whether the filter is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty() && self.extra.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "and", "is", "i'm", "dont"] {
            assert!(is_stopword(w), "{w} should be a stop-word");
        }
    }

    #[test]
    fn me_is_not_a_stopword() {
        // Table III lists "me" among the most frequent SA/EA span words.
        assert!(!is_stopword("me"));
    }

    #[test]
    fn content_words_are_not_stopwords() {
        for w in ["anxiety", "sleep", "job", "friends", "suicide", "feel"] {
            assert!(!is_stopword(w), "{w} should not be a stop-word");
        }
    }

    #[test]
    fn case_insensitive() {
        assert!(StopwordFilter::english().is_stopword("The"));
    }

    #[test]
    fn extra_words_extend_filter() {
        let f = StopwordFilter::english().with_extra(["foo"]);
        assert!(f.is_stopword("FOO"));
        assert!(!StopwordFilter::english().is_stopword("foo"));
    }

    #[test]
    fn filter_removes_stopwords() {
        let f = StopwordFilter::english();
        let kept = f.filter(["i", "feel", "so", "alone"]);
        assert_eq!(kept, vec!["feel", "alone"]);
    }

    #[test]
    fn empty_filter_keeps_everything() {
        let f = StopwordFilter::empty();
        assert!(!f.is_stopword("the"));
        assert!(f.is_empty());
    }
}
