//! Multi-head self-attention.
//!
//! Each head owns its own projection matrices (`hidden → head_dim`), and head outputs
//! are projected back to `hidden` and summed — algebraically identical to the usual
//! concat-then-project formulation but expressible with the 2-D ops of the autograd
//! graph. Three attention patterns are supported, matching the model zoo:
//!
//! * **bidirectional** (BERT/DistilBERT/MentalBERT/Flan-T5): padding mask only,
//! * **causal** (GPT-2): upper-triangular mask added to the padding mask,
//! * **relative** (XLNet stand-in): a learned `max_len × max_len` additive position
//!   bias on the attention scores.
//!
//! All sequences are padded/truncated to `max_len`, so the masks and the relative bias
//! are fixed-size and can be passed as constants / single parameters.

use crate::config::{AttentionKind, ModelConfig};
use holistix_linalg::{Matrix, Rng64};
use holistix_tensor::{Graph, NodeId, ParamId, ParamStore};

/// Additive value used to mask out attention logits.
const MASK_VALUE: f64 = -1e9;

/// Parameters of one attention head.
#[derive(Debug, Clone)]
struct HeadParams {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
    wo: ParamId,
}

/// A multi-head self-attention block.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    heads: Vec<HeadParams>,
    output_bias: ParamId,
    relative_bias: Option<ParamId>,
    kind: AttentionKind,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Register the block's parameters in `store`.
    pub fn new(
        config: &ModelConfig,
        layer_index: usize,
        store: &mut ParamStore,
        rng: &mut Rng64,
    ) -> Self {
        let mut heads = Vec::with_capacity(config.n_heads);
        for h in 0..config.n_heads {
            let prefix = format!("layer{layer_index}.attn.head{h}");
            heads.push(HeadParams {
                wq: store.add_xavier(
                    &format!("{prefix}.wq"),
                    config.hidden_dim,
                    config.head_dim(),
                    rng,
                ),
                wk: store.add_xavier(
                    &format!("{prefix}.wk"),
                    config.hidden_dim,
                    config.head_dim(),
                    rng,
                ),
                wv: store.add_xavier(
                    &format!("{prefix}.wv"),
                    config.hidden_dim,
                    config.head_dim(),
                    rng,
                ),
                wo: store.add_xavier(
                    &format!("{prefix}.wo"),
                    config.head_dim(),
                    config.hidden_dim,
                    rng,
                ),
            });
        }
        let output_bias = store.add_zeros(
            &format!("layer{layer_index}.attn.bias"),
            1,
            config.hidden_dim,
        );
        let relative_bias = if config.attention == AttentionKind::Relative {
            Some(store.add_zeros(
                &format!("layer{layer_index}.attn.rel_bias"),
                config.max_len,
                config.max_len,
            ))
        } else {
            None
        };
        Self {
            heads,
            output_bias,
            relative_bias,
            kind: config.attention,
            head_dim: config.head_dim(),
        }
    }

    /// The additive attention mask for a padded sequence of `max_len` positions where
    /// `is_padding[j]` marks padding columns. Causal masking is folded in when the
    /// block is causal.
    pub fn build_mask(&self, is_padding: &[bool]) -> Matrix {
        let n = is_padding.len();
        let mut mask = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let blocked = is_padding[j] || (self.kind == AttentionKind::Causal && j > i);
                if blocked {
                    mask[(i, j)] = MASK_VALUE;
                }
            }
        }
        mask
    }

    /// Forward pass: `x` is a `max_len × hidden` node; returns a `max_len × hidden`
    /// node. `mask` must come from [`build_mask`](Self::build_mask) for the same
    /// sequence.
    pub fn forward(
        &self,
        graph: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        mask: &Matrix,
    ) -> NodeId {
        let scale = 1.0 / (self.head_dim as f64).sqrt();
        let mut combined: Option<NodeId> = None;
        for head in &self.heads {
            let wq = graph.param(store, head.wq);
            let wk = graph.param(store, head.wk);
            let wv = graph.param(store, head.wv);
            let wo = graph.param(store, head.wo);
            let q = graph.matmul(x, wq);
            let k = graph.matmul(x, wk);
            let v = graph.matmul(x, wv);
            let kt = graph.transpose(k);
            let scores = graph.matmul(q, kt);
            let mut scores = graph.scale(scores, scale);
            if let Some(rel) = self.relative_bias {
                let rel_node = graph.param(store, rel);
                scores = graph.add(scores, rel_node);
            }
            let masked = graph.add_const(scores, mask);
            let attn = graph.softmax_rows(masked);
            let context = graph.matmul(attn, v);
            let projected = graph.matmul(context, wo);
            combined = Some(match combined {
                None => projected,
                Some(acc) => graph.add(acc, projected),
            });
        }
        let summed = combined.expect("attention block must have at least one head");
        let bias = graph.param(store, self.output_bias);
        graph.add_row_broadcast(summed, bias)
    }

    /// Batched forward pass: `x` stacks `masks.len()` sequences of `seq_len` rows
    /// each (`(B·seq_len) × hidden`), `masks[b]` is the per-sequence mask from
    /// [`build_mask`](Self::build_mask).
    ///
    /// The Q/K/V/O projections run as single stacked matmuls (row-independent, so
    /// each row is bit-identical to the per-sequence product); only the softmax
    /// attention mixing is done per sequence, on row slices. Row block `b` of the
    /// output is therefore bit-identical to [`forward`](Self::forward) on sequence
    /// `b` alone.
    pub fn forward_batch(
        &self,
        graph: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        masks: &[Matrix],
        seq_len: usize,
    ) -> NodeId {
        let scale = 1.0 / (self.head_dim as f64).sqrt();
        let mut per_seq: Vec<Option<NodeId>> = vec![None; masks.len()];
        for head in &self.heads {
            let wq = graph.param(store, head.wq);
            let wk = graph.param(store, head.wk);
            let wv = graph.param(store, head.wv);
            let wo = graph.param(store, head.wo);
            let q = graph.matmul(x, wq);
            let k = graph.matmul(x, wk);
            let v = graph.matmul(x, wv);
            let rel = self.relative_bias.map(|r| graph.param(store, r));
            for (b, mask) in masks.iter().enumerate() {
                let rows: Vec<usize> = (b * seq_len..(b + 1) * seq_len).collect();
                let qb = graph.gather(q, &rows);
                let kb = graph.gather(k, &rows);
                let vb = graph.gather(v, &rows);
                let kt = graph.transpose(kb);
                let scores = graph.matmul(qb, kt);
                let mut scores = graph.scale(scores, scale);
                if let Some(rel_node) = rel {
                    scores = graph.add(scores, rel_node);
                }
                let masked = graph.add_const(scores, mask);
                let attn = graph.softmax_rows(masked);
                let context = graph.matmul(attn, vb);
                let projected = graph.matmul(context, wo);
                per_seq[b] = Some(match per_seq[b] {
                    None => projected,
                    Some(acc) => graph.add(acc, projected),
                });
            }
        }
        let blocks: Vec<NodeId> = per_seq
            .into_iter()
            .map(|n| n.expect("attention block must have at least one head"))
            .collect();
        let stacked = graph.concat_rows(&blocks);
        let bias = graph.param(store, self.output_bias);
        graph.add_row_broadcast(stacked, bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelKind;
    use holistix_tensor::Optimizer;

    fn tiny_config(kind: ModelKind) -> ModelConfig {
        let mut c = ModelConfig::for_kind(kind, 6);
        c.hidden_dim = 8;
        c.n_heads = 2;
        c.ff_dim = 16;
        c.max_len = 6;
        c
    }

    fn random_input(max_len: usize, hidden: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::new(seed);
        let mut m = Matrix::zeros(max_len, hidden);
        for v in m.data_mut() {
            *v = rng.uniform(-1.0, 1.0);
        }
        m
    }

    #[test]
    fn forward_shape_is_preserved() {
        let config = tiny_config(ModelKind::Bert);
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(1);
        let attn = MultiHeadAttention::new(&config, 0, &mut store, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(random_input(6, 8, 2));
        let mask = attn.build_mask(&[false; 6]);
        let out = attn.forward(&mut g, &store, x, &mask);
        assert_eq!(g.value(out).shape(), (6, 8));
        assert!(!g.value(out).has_non_finite());
    }

    #[test]
    fn padding_mask_blocks_padded_positions() {
        // With position 5 marked as padding, changing its input must not change the
        // output at non-padding positions.
        let config = tiny_config(ModelKind::Bert);
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(3);
        let attn = MultiHeadAttention::new(&config, 0, &mut store, &mut rng);
        let mask = attn.build_mask(&[false, false, false, false, false, true]);

        let base = random_input(6, 8, 4);
        let mut altered = base.clone();
        for c in 0..8 {
            altered[(5, c)] = 9.0;
        }
        let run = |input: Matrix| {
            let mut g = Graph::new();
            let x = g.constant(input);
            let out = attn.forward(&mut g, &store, x, &mask);
            g.value(out).clone()
        };
        let out_base = run(base);
        let out_altered = run(altered);
        for r in 0..5 {
            for c in 0..8 {
                assert!(
                    (out_base[(r, c)] - out_altered[(r, c)]).abs() < 1e-9,
                    "padding leaked into position {r}"
                );
            }
        }
    }

    #[test]
    fn causal_mask_prevents_looking_ahead() {
        let config = tiny_config(ModelKind::Gpt2);
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(5);
        let attn = MultiHeadAttention::new(&config, 0, &mut store, &mut rng);
        let mask = attn.build_mask(&[false; 6]);
        // Changing the last token must not affect the first position's output.
        let base = random_input(6, 8, 6);
        let mut altered = base.clone();
        for c in 0..8 {
            altered[(5, c)] = -7.0;
        }
        let run = |input: Matrix| {
            let mut g = Graph::new();
            let x = g.constant(input);
            let out = attn.forward(&mut g, &store, x, &mask);
            g.value(out).clone()
        };
        let a = run(base);
        let b = run(altered);
        for c in 0..8 {
            assert!(
                (a[(0, c)] - b[(0, c)]).abs() < 1e-9,
                "causal mask leaked future info"
            );
        }
        // ...but it must affect the last position itself.
        assert!((0..8).any(|c| (a[(5, c)] - b[(5, c)]).abs() > 1e-9));
    }

    #[test]
    fn relative_variant_registers_a_bias_parameter() {
        let config = tiny_config(ModelKind::Xlnet);
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(7);
        let before = store.len();
        let attn = MultiHeadAttention::new(&config, 0, &mut store, &mut rng);
        assert!(attn.relative_bias.is_some());
        assert!(store.len() > before);
        // Bidirectional variant does not.
        let mut store2 = ParamStore::new();
        let attn2 =
            MultiHeadAttention::new(&tiny_config(ModelKind::Bert), 0, &mut store2, &mut rng);
        assert!(attn2.relative_bias.is_none());
    }

    #[test]
    fn gradients_flow_to_attention_parameters() {
        let config = tiny_config(ModelKind::Bert);
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(9);
        let attn = MultiHeadAttention::new(&config, 0, &mut store, &mut rng);
        let mask = attn.build_mask(&[false; 6]);
        let mut g = Graph::new();
        let x = g.constant(random_input(6, 8, 10));
        let out = attn.forward(&mut g, &store, x, &mask);
        let sq = g.mul(out, out);
        let loss = g.sum(sq);
        g.backward(loss, &mut store);
        assert!(store.grad_norm() > 0.0);
        // A training step should reduce this simple loss.
        let before = g.scalar(loss);
        let mut opt = holistix_tensor::Sgd::new(0.01, 0.0);
        opt.step(&mut store);
        store.zero_grads();
        let mut g2 = Graph::new();
        let x2 = g2.constant(random_input(6, 8, 10));
        let out2 = attn.forward(&mut g2, &store, x2, &mask);
        let sq2 = g2.mul(out2, out2);
        let loss2 = g2.sum(sq2);
        assert!(
            g2.scalar(loss2) < before,
            "loss should decrease after a step"
        );
    }
}
