//! Architectural configuration for the transformer analogues.

use serde::{Deserialize, Serialize};

/// The attention pattern a model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttentionKind {
    /// Full bidirectional self-attention (BERT family, Flan-T5 encoder).
    Bidirectional,
    /// Causal (left-to-right) attention (GPT-2).
    Causal,
    /// Bidirectional attention with learned relative-position biases, standing in for
    /// XLNet's Transformer-XL style relative encoding.
    Relative,
}

/// How the sequence representation is pooled into a single vector for classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pooling {
    /// Use the representation of the leading `<cls>` token (BERT family).
    Cls,
    /// Mean over all non-padding positions (T5-style encoder pooling).
    Mean,
    /// Use the last non-padding position (GPT-2-style).
    LastToken,
}

/// The named baselines of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// BERT analogue.
    Bert,
    /// DistilBERT analogue (half depth).
    DistilBert,
    /// MentalBERT analogue (in-domain pre-initialisation).
    MentalBert,
    /// Flan-T5 analogue (mean pooling, GELU bottleneck head).
    FlanT5,
    /// XLNet analogue (relative-position attention).
    Xlnet,
    /// GPT-2 analogue (causal attention, last-token pooling).
    Gpt2,
}

impl ModelKind {
    /// All six kinds in the order Table IV lists them.
    pub const ALL: [ModelKind; 6] = [
        ModelKind::Bert,
        ModelKind::DistilBert,
        ModelKind::MentalBert,
        ModelKind::FlanT5,
        ModelKind::Xlnet,
        ModelKind::Gpt2,
    ];

    /// Display name matching the paper's table rows.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Bert => "BERT",
            ModelKind::DistilBert => "DistilBERT",
            ModelKind::MentalBert => "MentalBERT",
            ModelKind::FlanT5 => "Flan-T5",
            ModelKind::Xlnet => "XLNet",
            ModelKind::Gpt2 => "GPT-2.0",
        }
    }
}

/// Architecture hyper-parameters of one transformer classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Hidden (embedding) dimension.
    pub hidden_dim: usize,
    /// Number of encoder layers.
    pub n_layers: usize,
    /// Number of attention heads (`hidden_dim` must be divisible by this).
    pub n_heads: usize,
    /// Feed-forward inner dimension.
    pub ff_dim: usize,
    /// Maximum sequence length in subword pieces (including `<cls>`/`<sep>`).
    pub max_len: usize,
    /// Dropout keep probability complement (0.1 = drop 10 %); 0 disables dropout.
    pub dropout: f64,
    /// Attention pattern.
    pub attention: AttentionKind,
    /// Pooling strategy.
    pub pooling: Pooling,
    /// Number of output classes.
    pub n_classes: usize,
    /// Target subword vocabulary size.
    pub vocab_size: usize,
    /// Layer-norm epsilon.
    pub layer_norm_eps: f64,
    /// Insert a GELU bottleneck between pooling and the classification head (the
    /// Flan-T5 analogue's stand-in for its decoder).
    pub bottleneck_head: bool,
}

impl ModelConfig {
    /// The shared small-analogue base configuration (hidden 48, 2 layers, 4 heads).
    pub fn base(n_classes: usize) -> Self {
        Self {
            hidden_dim: 48,
            n_layers: 2,
            n_heads: 4,
            ff_dim: 96,
            max_len: 64,
            dropout: 0.1,
            attention: AttentionKind::Bidirectional,
            pooling: Pooling::Cls,
            n_classes,
            vocab_size: 1200,
            layer_norm_eps: 1e-5,
            bottleneck_head: false,
        }
    }

    /// The configuration for a named model kind.
    pub fn for_kind(kind: ModelKind, n_classes: usize) -> Self {
        let base = Self::base(n_classes);
        match kind {
            ModelKind::Bert | ModelKind::MentalBert => base,
            ModelKind::DistilBert => Self {
                n_layers: 1,
                ..base
            },
            ModelKind::FlanT5 => Self {
                pooling: Pooling::Mean,
                bottleneck_head: true,
                ..base
            },
            ModelKind::Xlnet => Self {
                attention: AttentionKind::Relative,
                ..base
            },
            ModelKind::Gpt2 => Self {
                attention: AttentionKind::Causal,
                pooling: Pooling::LastToken,
                ..base
            },
        }
    }

    /// Dimension of one attention head.
    pub fn head_dim(&self) -> usize {
        self.hidden_dim / self.n_heads
    }

    /// Validate internal consistency; panics with a descriptive message when invalid.
    pub fn validate(&self) {
        assert!(
            self.hidden_dim > 0 && self.n_layers > 0 && self.n_heads > 0,
            "zero-sized model"
        );
        assert_eq!(
            self.hidden_dim % self.n_heads,
            0,
            "hidden_dim {} not divisible by n_heads {}",
            self.hidden_dim,
            self.n_heads
        );
        assert!(self.max_len >= 4, "max_len must be at least 4");
        assert!(self.n_classes >= 2, "need at least two classes");
        assert!(
            (0.0..1.0).contains(&self.dropout),
            "dropout must be in [0,1)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_config_is_valid() {
        let c = ModelConfig::base(6);
        c.validate();
        assert_eq!(c.head_dim() * c.n_heads, c.hidden_dim);
    }

    #[test]
    fn kind_configs_differ_architecturally() {
        let bert = ModelConfig::for_kind(ModelKind::Bert, 6);
        let distil = ModelConfig::for_kind(ModelKind::DistilBert, 6);
        let gpt2 = ModelConfig::for_kind(ModelKind::Gpt2, 6);
        let xlnet = ModelConfig::for_kind(ModelKind::Xlnet, 6);
        let t5 = ModelConfig::for_kind(ModelKind::FlanT5, 6);
        assert!(distil.n_layers < bert.n_layers);
        assert_eq!(gpt2.attention, AttentionKind::Causal);
        assert_eq!(gpt2.pooling, Pooling::LastToken);
        assert_eq!(xlnet.attention, AttentionKind::Relative);
        assert_eq!(t5.pooling, Pooling::Mean);
        for kind in ModelKind::ALL {
            ModelConfig::for_kind(kind, 6).validate();
        }
    }

    #[test]
    fn names_match_paper_rows() {
        assert_eq!(ModelKind::MentalBert.name(), "MentalBERT");
        assert_eq!(ModelKind::Gpt2.name(), "GPT-2.0");
        assert_eq!(ModelKind::ALL.len(), 6);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn invalid_head_count_panics() {
        let mut c = ModelConfig::base(6);
        c.n_heads = 5;
        c.validate();
    }
}
