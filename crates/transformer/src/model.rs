//! The end-to-end transformer classifier.
//!
//! Pipeline: subword ids → token + position embeddings → embedding layer-norm (and
//! dropout during training) → a stack of [`EncoderLayer`]s → pooling (CLS / mean /
//! last-token, per model kind) → an optional GELU bottleneck → a linear head over the
//! six wellness dimensions.
//!
//! The same hidden states also feed the masked-LM head used by the pre-initialisation
//! stage ([`crate::pretrain`]), with the language-model logits tied to the token
//! embedding matrix (weight tying), exactly as the original BERT does.

use crate::config::{ModelConfig, Pooling};
use crate::layers::{EncoderLayer, LayerNormParams};
use holistix_linalg::{softmax, Matrix, Rng64};
use holistix_tensor::{Graph, NodeId, ParamId, ParamStore};
use holistix_text::SubwordTokenizer;

/// A trainable transformer classifier over subword token sequences.
#[derive(Debug, Clone)]
pub struct TransformerClassifier {
    config: ModelConfig,
    name: String,
    store: ParamStore,
    tokenizer: SubwordTokenizer,
    token_embedding: ParamId,
    position_embedding: ParamId,
    embedding_norm: LayerNormParams,
    layers: Vec<EncoderLayer>,
    bottleneck: Option<(ParamId, ParamId)>,
    head_weight: ParamId,
    head_bias: ParamId,
    sparse_embedding_grad: bool,
}

impl TransformerClassifier {
    /// Build a model with freshly initialised parameters.
    ///
    /// `tokenizer` must already be fitted on the training corpus (the trainer does
    /// this); its vocabulary size overrides `config.vocab_size`.
    pub fn new(
        mut config: ModelConfig,
        name: &str,
        tokenizer: SubwordTokenizer,
        seed: u64,
    ) -> Self {
        config.vocab_size = tokenizer.vocab_size();
        config.validate();
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(seed);
        let token_embedding = store.add_xavier(
            "embeddings.token",
            config.vocab_size,
            config.hidden_dim,
            &mut rng,
        );
        let position_embedding = store.add_xavier(
            "embeddings.position",
            config.max_len,
            config.hidden_dim,
            &mut rng,
        );
        let embedding_norm = LayerNormParams::new(
            "embeddings.ln",
            config.hidden_dim,
            config.layer_norm_eps,
            &mut store,
        );
        let layers = (0..config.n_layers)
            .map(|i| EncoderLayer::new(&config, i, &mut store, &mut rng))
            .collect();
        let bottleneck = if config.bottleneck_head {
            Some((
                store.add_xavier(
                    "head.bottleneck.w",
                    config.hidden_dim,
                    config.hidden_dim,
                    &mut rng,
                ),
                store.add_zeros("head.bottleneck.b", 1, config.hidden_dim),
            ))
        } else {
            None
        };
        let head_weight = store.add_xavier("head.w", config.hidden_dim, config.n_classes, &mut rng);
        let head_bias = store.add_zeros("head.b", 1, config.n_classes);
        Self {
            config,
            name: name.to_string(),
            store,
            tokenizer,
            token_embedding,
            position_embedding,
            embedding_norm,
            layers,
            bottleneck,
            head_weight,
            head_bias,
            sparse_embedding_grad: true,
        }
    }

    /// Whether fine-tuning accumulates embedding gradients sparsely (the default).
    pub fn sparse_embedding_grad(&self) -> bool {
        self.sparse_embedding_grad
    }

    /// Switch the embedding-gradient path. Sparse (the default) folds one gradient
    /// row per *distinct* token through a CSR accumulator; dense materialises the
    /// whole `vocab × hidden` table per sequence. Both are bit-identical — the dense
    /// path survives as the benchmark/property-test reference.
    pub fn set_sparse_embedding_grad(&mut self, enabled: bool) {
        self.sparse_embedding_grad = enabled;
    }

    /// The model's display name (Table IV row label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The parameter store (read access).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter store (used by the trainer and the pre-initialisation stage).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// The fitted subword tokenizer.
    pub fn tokenizer(&self) -> &SubwordTokenizer {
        &self.tokenizer
    }

    /// The id of the token-embedding parameter (weight-tied LM head).
    pub fn token_embedding_param(&self) -> ParamId {
        self.token_embedding
    }

    /// Total number of scalar weights.
    pub fn n_parameters(&self) -> usize {
        self.store.n_weights()
    }

    /// Encode a text into a fixed-length (`max_len`) subword id sequence.
    pub fn encode(&self, text: &str) -> Vec<usize> {
        let words = holistix_text::tokenize(text)
            .into_iter()
            .filter(|t| t.kind != holistix_text::TokenKind::Punctuation)
            .map(|t| t.lower())
            .collect::<Vec<_>>();
        self.tokenizer
            .encode_for_classification(&words, self.config.max_len)
    }

    /// Which positions of an encoded sequence are padding.
    pub fn padding_mask(&self, tokens: &[usize]) -> Vec<bool> {
        tokens
            .iter()
            .map(|&t| t == self.tokenizer.pad_id())
            .collect()
    }

    /// Run the encoder stack on a token sequence, returning the `max_len × hidden`
    /// hidden-state node. When `train` is true, dropout is applied to the embeddings
    /// using noise drawn from `rng`.
    pub fn encode_hidden(
        &self,
        graph: &mut Graph,
        tokens: &[usize],
        train: bool,
        rng: &mut Rng64,
    ) -> NodeId {
        assert_eq!(
            tokens.len(),
            self.config.max_len,
            "token sequence must be padded to max_len"
        );
        let is_padding = self.padding_mask(tokens);
        let position_indices: Vec<usize> = (0..tokens.len()).collect();
        let (token_emb, position_emb) = if self.sparse_embedding_grad {
            (
                graph.gather_param(&self.store, self.token_embedding, tokens),
                graph.gather_param(&self.store, self.position_embedding, &position_indices),
            )
        } else {
            let token_table = graph.param(&self.store, self.token_embedding);
            let position_table = graph.param(&self.store, self.position_embedding);
            (
                graph.gather(token_table, tokens),
                graph.gather(position_table, &position_indices),
            )
        };
        let summed = graph.add(token_emb, position_emb);
        let mut hidden = self.embedding_norm.forward(graph, &self.store, summed);
        if train && self.config.dropout > 0.0 {
            let keep = 1.0 - self.config.dropout;
            let mut noise = Matrix::zeros(tokens.len(), self.config.hidden_dim);
            for v in noise.data_mut() {
                *v = rng.next_f64();
            }
            hidden = graph.dropout(hidden, &noise, keep);
        }
        for layer in &self.layers {
            let mask = layer.build_mask(&is_padding);
            hidden = layer.forward(graph, &self.store, hidden, &mask);
        }
        hidden
    }

    /// Pool hidden states into a single `1 × hidden` vector per the configured strategy.
    fn pool(&self, graph: &mut Graph, hidden: NodeId, tokens: &[usize]) -> NodeId {
        let is_padding = self.padding_mask(tokens);
        match self.config.pooling {
            Pooling::Cls => graph.row_select(hidden, 0),
            Pooling::Mean => {
                let non_pad: Vec<usize> = (0..tokens.len()).filter(|&i| !is_padding[i]).collect();
                let selected = graph.gather(hidden, &non_pad);
                graph.mean_rows(selected)
            }
            Pooling::LastToken => {
                let last = (0..tokens.len())
                    .rev()
                    .find(|&i| !is_padding[i])
                    .unwrap_or(0);
                graph.row_select(hidden, last)
            }
        }
    }

    /// Forward pass producing the `1 × n_classes` logits node for one sequence.
    pub fn forward_logits(
        &self,
        graph: &mut Graph,
        tokens: &[usize],
        train: bool,
        rng: &mut Rng64,
    ) -> NodeId {
        let hidden = self.encode_hidden(graph, tokens, train, rng);
        let mut pooled = self.pool(graph, hidden, tokens);
        if let Some((w, b)) = self.bottleneck {
            let wn = graph.param(&self.store, w);
            let bn = graph.param(&self.store, b);
            let h = graph.matmul(pooled, wn);
            let h = graph.add_row_broadcast(h, bn);
            pooled = graph.gelu(h);
        }
        let w = graph.param(&self.store, self.head_weight);
        let b = graph.param(&self.store, self.head_bias);
        let logits = graph.matmul(pooled, w);
        graph.add_row_broadcast(logits, b)
    }

    /// Mean classification loss over a batch of `(tokens, label)` pairs.
    /// Returns the scalar loss node; the caller runs `backward` and the optimiser.
    pub fn batch_loss(
        &self,
        graph: &mut Graph,
        batch: &[(Vec<usize>, usize)],
        rng: &mut Rng64,
    ) -> NodeId {
        assert!(!batch.is_empty(), "batch_loss on an empty batch");
        let mut total: Option<NodeId> = None;
        for (tokens, label) in batch {
            let logits = self.forward_logits(graph, tokens, true, rng);
            let loss = graph.cross_entropy(logits, &[*label]);
            total = Some(match total {
                None => loss,
                Some(acc) => graph.add(acc, loss),
            });
        }
        let summed = total.expect("non-empty batch");
        graph.scale(summed, 1.0 / batch.len() as f64)
    }

    /// Class-probability vector for a raw text.
    pub fn predict_proba_text(&self, text: &str) -> Vec<f64> {
        let tokens = self.encode(text);
        let mut rng = Rng64::new(0);
        let mut graph = Graph::new();
        let logits = self.forward_logits(&mut graph, &tokens, false, &mut rng);
        softmax(graph.value(logits).row(0))
    }

    /// Hard prediction for a raw text.
    pub fn predict_text(&self, text: &str) -> usize {
        holistix_linalg::argmax(&self.predict_proba_text(text)).unwrap_or(0)
    }

    /// Run the encoder stack on several padded sequences stacked into one
    /// `(B·max_len) × hidden` node. Inference-only (no dropout). Row block `b` is
    /// bit-identical to [`encode_hidden`](Self::encode_hidden) on `sequences[b]`:
    /// every op outside attention is row-wise, and the batched attention mixes rows
    /// per sequence only.
    fn encode_hidden_batch(&self, graph: &mut Graph, sequences: &[&[usize]]) -> NodeId {
        let seq_len = self.config.max_len;
        let mut all_tokens = Vec::with_capacity(sequences.len() * seq_len);
        let mut all_positions = Vec::with_capacity(sequences.len() * seq_len);
        for seq in sequences {
            assert_eq!(
                seq.len(),
                seq_len,
                "token sequence must be padded to max_len"
            );
            all_tokens.extend_from_slice(seq);
            all_positions.extend(0..seq_len);
        }
        let token_emb = graph.gather_param(&self.store, self.token_embedding, &all_tokens);
        let position_emb = graph.gather_param(&self.store, self.position_embedding, &all_positions);
        let summed = graph.add(token_emb, position_emb);
        let mut hidden = self.embedding_norm.forward(graph, &self.store, summed);
        for layer in &self.layers {
            let masks: Vec<Matrix> = sequences
                .iter()
                .map(|seq| layer.build_mask(&self.padding_mask(seq)))
                .collect();
            hidden = layer.forward_batch(graph, &self.store, hidden, &masks, seq_len);
        }
        hidden
    }

    /// Class-probability vectors for a batch of raw texts, one row per text. One
    /// padded batch goes through the model; each row is bit-identical to
    /// [`predict_proba_text`](Self::predict_proba_text) on that text.
    pub fn predict_proba_texts(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        if texts.is_empty() {
            return Vec::new();
        }
        let encoded: Vec<Vec<usize>> = texts.iter().map(|t| self.encode(t)).collect();
        let sequences: Vec<&[usize]> = encoded.iter().map(|v| v.as_slice()).collect();
        let mut graph = Graph::new();
        let hidden = self.encode_hidden_batch(&mut graph, &sequences);
        let seq_len = self.config.max_len;
        let pooled_rows: Vec<NodeId> = sequences
            .iter()
            .enumerate()
            .map(|(b, seq)| {
                let base = b * seq_len;
                let is_padding = self.padding_mask(seq);
                match self.config.pooling {
                    Pooling::Cls => graph.row_select(hidden, base),
                    Pooling::Mean => {
                        let non_pad: Vec<usize> = (0..seq_len)
                            .filter(|&i| !is_padding[i])
                            .map(|i| base + i)
                            .collect();
                        let selected = graph.gather(hidden, &non_pad);
                        graph.mean_rows(selected)
                    }
                    Pooling::LastToken => {
                        let last = (0..seq_len).rev().find(|&i| !is_padding[i]).unwrap_or(0);
                        graph.row_select(hidden, base + last)
                    }
                }
            })
            .collect();
        let mut pooled = graph.concat_rows(&pooled_rows);
        if let Some((w, b)) = self.bottleneck {
            let wn = graph.param(&self.store, w);
            let bn = graph.param(&self.store, b);
            let h = graph.matmul(pooled, wn);
            let h = graph.add_row_broadcast(h, bn);
            pooled = graph.gelu(h);
        }
        let w = graph.param(&self.store, self.head_weight);
        let b = graph.param(&self.store, self.head_bias);
        let logits = graph.matmul(pooled, w);
        let logits = graph.add_row_broadcast(logits, b);
        (0..texts.len())
            .map(|r| softmax(graph.value(logits).row(r)))
            .collect()
    }

    /// Masked-LM logits for the given positions of a hidden-state node
    /// (`positions.len() × vocab` via the weight-tied embedding matrix).
    pub fn lm_logits(&self, graph: &mut Graph, hidden: NodeId, positions: &[usize]) -> NodeId {
        let selected = graph.gather(hidden, positions);
        let table = graph.param(&self.store, self.token_embedding);
        let table_t = graph.transpose(table);
        graph.matmul(selected, table_t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelKind;
    use holistix_tensor::{Adam, Optimizer};
    use holistix_text::SubwordVocabBuilder;

    fn tiny_model(kind: ModelKind) -> TransformerClassifier {
        let mut config = ModelConfig::for_kind(kind, 6);
        config.hidden_dim = 16;
        config.n_heads = 2;
        config.ff_dim = 32;
        config.max_len = 12;
        config.dropout = 0.1;
        let mut builder = SubwordVocabBuilder::new(300);
        for text in [
            "i feel exhausted and cannot sleep",
            "my job drains me and money is tight",
            "i feel alone without my friends",
            "life feels meaningless and empty",
            "i cannot concentrate on my exams",
            "i cry all the time and feel overwhelmed",
        ] {
            let words: Vec<&str> = text.split_whitespace().collect();
            builder.add_words(&words);
        }
        TransformerClassifier::new(config, kind.name(), builder.build(), 7)
    }

    #[test]
    fn encode_produces_fixed_length_sequences() {
        let model = tiny_model(ModelKind::Bert);
        let tokens = model.encode("I feel exhausted and cannot sleep at all lately");
        assert_eq!(tokens.len(), 12);
        let padding = model.padding_mask(&tokens);
        assert!(!padding[0], "CLS position must not be padding");
    }

    #[test]
    fn forward_logits_shape_and_probabilities() {
        for kind in [
            ModelKind::Bert,
            ModelKind::FlanT5,
            ModelKind::Gpt2,
            ModelKind::Xlnet,
        ] {
            let model = tiny_model(kind);
            let proba = model.predict_proba_text("i feel exhausted and cannot sleep");
            assert_eq!(proba.len(), 6);
            assert!((proba.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(proba.iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn prediction_is_deterministic_at_inference() {
        let model = tiny_model(ModelKind::MentalBert);
        let a = model.predict_proba_text("my job drains me");
        let b = model.predict_proba_text("my job drains me");
        assert_eq!(a, b);
    }

    #[test]
    fn a_few_training_steps_reduce_loss() {
        let model = tiny_model(ModelKind::DistilBert);
        let mut model = model;
        let examples = [
            ("i feel exhausted and cannot sleep", 3usize),
            ("my job drains me and money is tight", 1),
            ("i feel alone without my friends", 4),
            ("life feels meaningless and empty", 2),
        ];
        let batch: Vec<(Vec<usize>, usize)> = examples
            .iter()
            .map(|(t, l)| (model.encode(t), *l))
            .collect();
        let mut rng = Rng64::new(3);
        let mut optimizer = Adam::with_lr(5e-3);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..15 {
            model.store_mut().zero_grads();
            let mut graph = Graph::new();
            let loss = model.batch_loss(&mut graph, &batch, &mut rng);
            last_loss = graph.scalar(loss);
            if first_loss.is_none() {
                first_loss = Some(last_loss);
            }
            graph.backward(loss, model.store_mut());
            optimizer.step(model.store_mut());
        }
        assert!(
            last_loss < first_loss.unwrap(),
            "loss did not decrease: {} -> {last_loss}",
            first_loss.unwrap()
        );
        assert!(!model.store().has_non_finite());
    }

    #[test]
    fn lm_logits_have_vocab_width() {
        let model = tiny_model(ModelKind::MentalBert);
        let tokens = model.encode("i feel alone");
        let mut rng = Rng64::new(1);
        let mut graph = Graph::new();
        let hidden = model.encode_hidden(&mut graph, &tokens, false, &mut rng);
        let logits = model.lm_logits(&mut graph, hidden, &[1, 2]);
        assert_eq!(
            graph.value(logits).shape(),
            (2, model.tokenizer().vocab_size())
        );
    }

    #[test]
    fn parameter_counts_differ_between_architectures() {
        let bert = tiny_model(ModelKind::Bert);
        let distil = tiny_model(ModelKind::DistilBert);
        let t5 = tiny_model(ModelKind::FlanT5);
        assert!(distil.n_parameters() < bert.n_parameters());
        assert!(t5.n_parameters() > bert.n_parameters()); // bottleneck head adds weights
    }

    #[test]
    #[should_panic(expected = "padded to max_len")]
    fn unpadded_sequence_panics() {
        let model = tiny_model(ModelKind::Bert);
        let mut rng = Rng64::new(1);
        let mut graph = Graph::new();
        let _ = model.encode_hidden(&mut graph, &[1, 2, 3], false, &mut rng);
    }

    #[test]
    fn batched_prediction_is_bit_identical_to_per_text() {
        // Every pooling strategy and attention pattern must survive batching.
        for kind in [
            ModelKind::Bert,   // CLS pooling, bidirectional
            ModelKind::FlanT5, // mean pooling, bottleneck head
            ModelKind::Gpt2,   // last-token pooling, causal
            ModelKind::Xlnet,  // relative position bias
        ] {
            let model = tiny_model(kind);
            let texts = [
                "i feel exhausted and cannot sleep",
                "my job drains me and money is tight and everything keeps piling up",
                "alone",
            ];
            let batched = model.predict_proba_texts(&texts);
            assert_eq!(batched.len(), texts.len());
            for (text, row) in texts.iter().zip(&batched) {
                let single = model.predict_proba_text(text);
                assert_eq!(&single, row, "{kind:?} batched row diverged for {text:?}");
            }
        }
    }

    #[test]
    fn batched_prediction_of_empty_input_is_empty() {
        let model = tiny_model(ModelKind::Bert);
        assert!(model.predict_proba_texts(&[]).is_empty());
    }

    #[test]
    fn sparse_and_dense_embedding_grads_are_bit_identical() {
        // One training step with each embedding-gradient path must leave bitwise
        // identical gradients in the store.
        let examples = [
            ("i feel exhausted and cannot sleep", 3usize),
            ("my job drains me and money is tight", 1),
        ];
        let run = |sparse: bool| {
            let mut model = tiny_model(ModelKind::MentalBert);
            model.set_sparse_embedding_grad(sparse);
            let batch: Vec<(Vec<usize>, usize)> = examples
                .iter()
                .map(|(t, l)| (model.encode(t), *l))
                .collect();
            let mut rng = Rng64::new(11);
            model.store_mut().zero_grads();
            let mut graph = Graph::new();
            let loss = model.batch_loss(&mut graph, &batch, &mut rng);
            graph.backward(loss, model.store_mut());
            let grads: Vec<Vec<f64>> = model
                .store()
                .ids()
                .into_iter()
                .map(|id| model.store().grad(id).data().to_vec())
                .collect();
            (graph.scalar(loss), grads)
        };
        let (dense_loss, dense_grads) = run(false);
        let (sparse_loss, sparse_grads) = run(true);
        assert_eq!(dense_loss, sparse_loss);
        assert_eq!(dense_grads, sparse_grads);
    }
}
