//! Encoder building blocks: feed-forward networks, layer-norm parameter bundles and
//! the full encoder layer (attention + FFN with post-layer-norm residuals).

use crate::attention::MultiHeadAttention;
use crate::config::ModelConfig;
use holistix_linalg::{Matrix, Rng64};
use holistix_tensor::{Graph, NodeId, ParamId, ParamStore};

/// Position-wise feed-forward block: `GELU(x W1 + b1) W2 + b2`.
#[derive(Debug, Clone)]
pub struct FeedForward {
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
}

impl FeedForward {
    /// Register the block's parameters.
    pub fn new(
        config: &ModelConfig,
        layer_index: usize,
        store: &mut ParamStore,
        rng: &mut Rng64,
    ) -> Self {
        let prefix = format!("layer{layer_index}.ffn");
        Self {
            w1: store.add_xavier(
                &format!("{prefix}.w1"),
                config.hidden_dim,
                config.ff_dim,
                rng,
            ),
            b1: store.add_zeros(&format!("{prefix}.b1"), 1, config.ff_dim),
            w2: store.add_xavier(
                &format!("{prefix}.w2"),
                config.ff_dim,
                config.hidden_dim,
                rng,
            ),
            b2: store.add_zeros(&format!("{prefix}.b2"), 1, config.hidden_dim),
        }
    }

    /// Forward pass on a `seq × hidden` node.
    pub fn forward(&self, graph: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let w1 = graph.param(store, self.w1);
        let b1 = graph.param(store, self.b1);
        let w2 = graph.param(store, self.w2);
        let b2 = graph.param(store, self.b2);
        let h = graph.matmul(x, w1);
        let h = graph.add_row_broadcast(h, b1);
        let h = graph.gelu(h);
        let h = graph.matmul(h, w2);
        graph.add_row_broadcast(h, b2)
    }
}

/// Learnable layer-norm gain and bias.
#[derive(Debug, Clone)]
pub struct LayerNormParams {
    gamma: ParamId,
    beta: ParamId,
    eps: f64,
}

impl LayerNormParams {
    /// Register gain (initialised to 1) and bias (initialised to 0).
    pub fn new(name: &str, dim: usize, eps: f64, store: &mut ParamStore) -> Self {
        Self {
            gamma: store.add_filled(&format!("{name}.gamma"), 1, dim, 1.0),
            beta: store.add_zeros(&format!("{name}.beta"), 1, dim),
            eps,
        }
    }

    /// Apply layer normalisation to a `seq × hidden` node.
    pub fn forward(&self, graph: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let gamma = graph.param(store, self.gamma);
        let beta = graph.param(store, self.beta);
        graph.layer_norm(x, gamma, beta, self.eps)
    }
}

/// One transformer encoder layer with post-layer-norm residual connections:
/// `x ← LN(x + Attn(x)); x ← LN(x + FFN(x))`.
#[derive(Debug, Clone)]
pub struct EncoderLayer {
    attention: MultiHeadAttention,
    ln_attention: LayerNormParams,
    feed_forward: FeedForward,
    ln_feed_forward: LayerNormParams,
}

impl EncoderLayer {
    /// Register all of the layer's parameters.
    pub fn new(
        config: &ModelConfig,
        layer_index: usize,
        store: &mut ParamStore,
        rng: &mut Rng64,
    ) -> Self {
        Self {
            attention: MultiHeadAttention::new(config, layer_index, store, rng),
            ln_attention: LayerNormParams::new(
                &format!("layer{layer_index}.ln_attn"),
                config.hidden_dim,
                config.layer_norm_eps,
                store,
            ),
            feed_forward: FeedForward::new(config, layer_index, store, rng),
            ln_feed_forward: LayerNormParams::new(
                &format!("layer{layer_index}.ln_ffn"),
                config.hidden_dim,
                config.layer_norm_eps,
                store,
            ),
        }
    }

    /// The attention mask builder for this layer (delegates to the attention block).
    pub fn build_mask(&self, is_padding: &[bool]) -> Matrix {
        self.attention.build_mask(is_padding)
    }

    /// Forward pass on a `seq × hidden` node.
    pub fn forward(
        &self,
        graph: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        mask: &Matrix,
    ) -> NodeId {
        let attended = self.attention.forward(graph, store, x, mask);
        let residual = graph.add(x, attended);
        let normed = self.ln_attention.forward(graph, store, residual);
        let ff = self.feed_forward.forward(graph, store, normed);
        let residual2 = graph.add(normed, ff);
        self.ln_feed_forward.forward(graph, store, residual2)
    }

    /// Batched forward pass on stacked sequences (`(B·seq_len) × hidden`), with one
    /// mask per sequence. Everything outside attention is row-wise, so row block `b`
    /// equals [`forward`](Self::forward) on sequence `b` alone, bitwise.
    pub fn forward_batch(
        &self,
        graph: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        masks: &[Matrix],
        seq_len: usize,
    ) -> NodeId {
        let attended = self
            .attention
            .forward_batch(graph, store, x, masks, seq_len);
        let residual = graph.add(x, attended);
        let normed = self.ln_attention.forward(graph, store, residual);
        let ff = self.feed_forward.forward(graph, store, normed);
        let residual2 = graph.add(normed, ff);
        self.ln_feed_forward.forward(graph, store, residual2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelKind;

    fn tiny_config() -> ModelConfig {
        let mut c = ModelConfig::for_kind(ModelKind::Bert, 6);
        c.hidden_dim = 8;
        c.n_heads = 2;
        c.ff_dim = 16;
        c.max_len = 5;
        c
    }

    fn random_input(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::new(seed);
        let mut m = Matrix::zeros(rows, cols);
        for v in m.data_mut() {
            *v = rng.uniform(-1.0, 1.0);
        }
        m
    }

    #[test]
    fn feed_forward_preserves_shape() {
        let config = tiny_config();
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(1);
        let ffn = FeedForward::new(&config, 0, &mut store, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(random_input(5, 8, 2));
        let y = ffn.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (5, 8));
    }

    #[test]
    fn layer_norm_output_is_normalised_before_affine() {
        let mut store = ParamStore::new();
        let ln = LayerNormParams::new("ln", 8, 1e-5, &mut store);
        let mut g = Graph::new();
        let x = g.constant(random_input(3, 8, 3));
        let y = ln.forward(&mut g, &store, x);
        // With gamma=1, beta=0 each output row has ~zero mean and ~unit variance.
        for r in 0..3 {
            let row = g.value(y).row(r);
            let mean: f64 = row.iter().sum::<f64>() / 8.0;
            let var: f64 = row.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 8.0;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn encoder_layer_forward_and_backward() {
        let config = tiny_config();
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(5);
        let layer = EncoderLayer::new(&config, 0, &mut store, &mut rng);
        let mask = layer.build_mask(&[false, false, false, true, true]);
        let mut g = Graph::new();
        let x = g.constant(random_input(5, 8, 6));
        let y = layer.forward(&mut g, &store, x, &mask);
        assert_eq!(g.value(y).shape(), (5, 8));
        assert!(!g.value(y).has_non_finite());
        let sq = g.mul(y, y);
        let loss = g.sum(sq);
        g.backward(loss, &mut store);
        assert!(store.grad_norm() > 0.0);
        assert!(!store.has_non_finite());
    }

    #[test]
    fn parameter_count_scales_with_layers() {
        let config = tiny_config();
        let mut rng = Rng64::new(7);
        let mut store1 = ParamStore::new();
        let _ = EncoderLayer::new(&config, 0, &mut store1, &mut rng);
        let one_layer = store1.n_weights();
        let mut store2 = ParamStore::new();
        let _ = EncoderLayer::new(&config, 0, &mut store2, &mut rng);
        let _ = EncoderLayer::new(&config, 1, &mut store2, &mut rng);
        assert_eq!(store2.n_weights(), 2 * one_layer);
    }
}
