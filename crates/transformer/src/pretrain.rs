//! Masked-language-model domain-adaptive pre-initialisation.
//!
//! The paper's transformer baselines start from *pretrained* checkpoints; MentalBERT's
//! advantage over BERT is precisely that its pretraining corpus is mental-health text.
//! With no checkpoints available offline, this module reproduces the *mechanism*: a
//! short masked-token prediction phase over the unlabeled corpus that initialises the
//! embeddings and encoder before fine-tuning.
//!
//! Provenance is controlled by [`PretrainConfig::degrade_domain`]:
//!
//! * the **MentalBERT analogue** pretrains on the in-domain posts as-is;
//! * the **BERT / DistilBERT / Flan-T5 / XLNet / GPT-2 analogues** pretrain on a
//!   *domain-degraded* copy (word order shuffled within each post), which preserves
//!   unigram statistics but destroys the collocational structure — a stand-in for
//!   "generic web pretraining transfers less".
//!
//! The causal GPT-2 analogue keeps its causal mask during this phase, making the
//! objective effectively next-token-ish; that mirrors its autoregressive pretraining.

use crate::model::TransformerClassifier;
use holistix_linalg::Rng64;
use holistix_tensor::{clip_gradients, Adam, Graph, Optimizer};
use serde::{Deserialize, Serialize};

/// Configuration of the masked-LM pre-initialisation stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PretrainConfig {
    /// Number of passes over the unlabeled corpus.
    pub epochs: usize,
    /// Fraction of non-special positions to mask per sequence.
    pub mask_probability: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Sequences per optimiser step.
    pub batch_size: usize,
    /// Shuffle word order within each text before encoding (domain degradation).
    pub degrade_domain: bool,
    /// RNG seed.
    pub seed: u64,
    /// Cap on the number of sequences used per epoch (keeps the stage cheap); `None`
    /// uses the full corpus.
    pub max_sequences: Option<usize>,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        Self {
            epochs: 2,
            mask_probability: 0.15,
            learning_rate: 1e-3,
            batch_size: 16,
            degrade_domain: false,
            seed: 42,
            max_sequences: Some(400),
        }
    }
}

impl PretrainConfig {
    /// The in-domain recipe (MentalBERT analogue).
    pub fn in_domain() -> Self {
        Self::default()
    }

    /// The domain-degraded recipe (generic-pretraining analogues).
    pub fn generic() -> Self {
        Self {
            degrade_domain: true,
            epochs: 1,
            ..Self::default()
        }
    }
}

/// Summary statistics of a pre-initialisation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PretrainSummary {
    /// Mean masked-LM loss of the first epoch.
    pub first_epoch_loss: f64,
    /// Mean masked-LM loss of the last epoch.
    pub last_epoch_loss: f64,
    /// Number of sequences used per epoch.
    pub sequences_per_epoch: usize,
}

/// Run masked-LM pre-initialisation of `model` on unlabeled `texts`.
pub fn pretrain_masked_lm(
    model: &mut TransformerClassifier,
    texts: &[&str],
    config: &PretrainConfig,
) -> PretrainSummary {
    assert!(
        config.mask_probability > 0.0 && config.mask_probability < 1.0,
        "mask probability must be in (0,1)"
    );
    let mut rng = Rng64::new(config.seed);
    let mut optimizer = Adam::with_lr(config.learning_rate);

    // Encode (and optionally degrade) the corpus once.
    let mut sequences: Vec<Vec<usize>> = texts
        .iter()
        .map(|t| {
            if config.degrade_domain {
                let mut words: Vec<String> = t.split_whitespace().map(|w| w.to_string()).collect();
                rng.shuffle(&mut words);
                model.encode(&words.join(" "))
            } else {
                model.encode(t)
            }
        })
        .collect();
    if let Some(cap) = config.max_sequences {
        rng.shuffle(&mut sequences);
        sequences.truncate(cap);
    }
    let sequences_per_epoch = sequences.len();
    if sequences.is_empty() {
        return PretrainSummary {
            first_epoch_loss: 0.0,
            last_epoch_loss: 0.0,
            sequences_per_epoch: 0,
        };
    }

    let pad = model.tokenizer().pad_id();
    let cls = model.tokenizer().cls_id();
    let sep = model.tokenizer().sep_id();
    let mask_id = model.tokenizer().mask_id();

    let mut first_epoch_loss = 0.0;
    let mut last_epoch_loss = 0.0;
    for epoch in 0..config.epochs.max(1) {
        let mut order: Vec<usize> = (0..sequences.len()).collect();
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size.max(1)) {
            model.store_mut().zero_grads();
            let mut graph = Graph::new();
            let mut batch_loss = None;
            let mut contributing = 0usize;
            for &seq_idx in chunk {
                let original = &sequences[seq_idx];
                // Choose maskable positions (real content tokens only).
                let candidates: Vec<usize> = original
                    .iter()
                    .enumerate()
                    .filter(|(_, &t)| t != pad && t != cls && t != sep)
                    .map(|(i, _)| i)
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let n_mask = ((candidates.len() as f64 * config.mask_probability).round() as usize)
                    .clamp(1, candidates.len());
                let mut positions = candidates.clone();
                rng.shuffle(&mut positions);
                positions.truncate(n_mask);
                let targets: Vec<usize> = positions.iter().map(|&p| original[p]).collect();
                let mut masked = original.clone();
                for &p in &positions {
                    masked[p] = mask_id;
                }
                let hidden = model.encode_hidden(&mut graph, &masked, true, &mut rng);
                let logits = model.lm_logits(&mut graph, hidden, &positions);
                let loss = graph.cross_entropy(logits, &targets);
                batch_loss = Some(match batch_loss {
                    None => loss,
                    Some(acc) => graph.add(acc, loss),
                });
                contributing += 1;
            }
            let Some(total) = batch_loss else { continue };
            let mean = graph.scale(total, 1.0 / contributing.max(1) as f64);
            epoch_loss += graph.scalar(mean);
            batches += 1;
            graph.backward(mean, model.store_mut());
            clip_gradients(model.store_mut(), 5.0);
            optimizer.step(model.store_mut());
        }
        let mean_epoch = if batches == 0 {
            0.0
        } else {
            epoch_loss / batches as f64
        };
        if epoch == 0 {
            first_epoch_loss = mean_epoch;
        }
        last_epoch_loss = mean_epoch;
    }

    PretrainSummary {
        first_epoch_loss,
        last_epoch_loss,
        sequences_per_epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, ModelKind};
    use holistix_text::SubwordVocabBuilder;

    fn tiny_model() -> TransformerClassifier {
        let mut config = ModelConfig::for_kind(ModelKind::MentalBert, 6);
        config.hidden_dim = 16;
        config.n_heads = 2;
        config.ff_dim = 32;
        config.max_len = 12;
        let mut builder = SubwordVocabBuilder::new(200);
        for text in corpus_texts() {
            let words: Vec<&str> = text.split_whitespace().collect();
            builder.add_words(&words);
        }
        TransformerClassifier::new(config, "MentalBERT", builder.build(), 11)
    }

    fn corpus_texts() -> Vec<&'static str> {
        vec![
            "i feel exhausted and cannot sleep at night",
            "my job drains me and the money worries never stop",
            "i feel so alone without my friends around me",
            "life feels meaningless and i have no purpose",
            "i cannot concentrate on my exams and feel stupid",
            "i cry all the time and feel completely overwhelmed",
            "my anxiety keeps me awake and my sleep is ruined",
            "work stress and deadlines are crushing me every day",
        ]
    }

    #[test]
    fn masked_lm_loss_decreases() {
        let mut model = tiny_model();
        // Repeat the corpus so each epoch sees enough masked positions for the
        // epoch-mean loss to be a stable signal.
        let texts: Vec<&str> = corpus_texts().into_iter().cycle().take(40).collect();
        let config = PretrainConfig {
            epochs: 10,
            learning_rate: 3e-3,
            max_sequences: None,
            ..PretrainConfig::in_domain()
        };
        let summary = pretrain_masked_lm(&mut model, &texts, &config);
        assert_eq!(summary.sequences_per_epoch, texts.len());
        assert!(
            summary.last_epoch_loss < summary.first_epoch_loss * 0.95,
            "MLM loss did not drop: {} -> {}",
            summary.first_epoch_loss,
            summary.last_epoch_loss
        );
        assert!(!model.store().has_non_finite());
    }

    #[test]
    fn degraded_domain_differs_from_in_domain() {
        let texts = corpus_texts();
        let mut in_domain = tiny_model();
        let mut generic = tiny_model();
        let a = pretrain_masked_lm(
            &mut in_domain,
            &texts,
            &PretrainConfig {
                epochs: 2,
                max_sequences: None,
                ..PretrainConfig::in_domain()
            },
        );
        let b = pretrain_masked_lm(
            &mut generic,
            &texts,
            &PretrainConfig {
                epochs: 2,
                max_sequences: None,
                ..PretrainConfig::generic()
            },
        );
        // Both run, and the resulting embedding matrices are not identical.
        assert!(a.sequences_per_epoch > 0 && b.sequences_per_epoch > 0);
        let emb_a = in_domain
            .store()
            .value(in_domain.token_embedding_param())
            .clone();
        let emb_b = generic
            .store()
            .value(generic.token_embedding_param())
            .clone();
        assert_ne!(emb_a, emb_b);
    }

    #[test]
    fn empty_corpus_is_a_noop() {
        let mut model = tiny_model();
        let summary = pretrain_masked_lm(&mut model, &[], &PretrainConfig::in_domain());
        assert_eq!(summary.sequences_per_epoch, 0);
        assert_eq!(summary.first_epoch_loss, 0.0);
    }

    #[test]
    #[should_panic(expected = "mask probability")]
    fn invalid_mask_probability_panics() {
        let mut model = tiny_model();
        let config = PretrainConfig {
            mask_probability: 0.0,
            ..PretrainConfig::default()
        };
        let _ = pretrain_masked_lm(&mut model, &["hello world"], &config);
    }
}
