//! Fine-tuning loop for the transformer classifiers.
//!
//! Mirrors the paper's procedure: build the tokenizer on the training split, (pre-)
//! initialise the model, then fine-tune for a fixed number of epochs with the
//! per-model batch size and learning rate. Optimisation is Adam with global-norm
//! gradient clipping; mini-batch order is reshuffled every epoch from the seed, so a
//! `(texts, labels, seed)` triple always produces the same fitted model.

use crate::config::{ModelConfig, ModelKind};
use crate::model::TransformerClassifier;
use crate::pretrain::{pretrain_masked_lm, PretrainConfig, PretrainSummary};
use holistix_linalg::Rng64;
use holistix_tensor::{clip_gradients, Adam, Graph, Optimizer};
use holistix_text::SubwordVocabBuilder;
use serde::{Deserialize, Serialize};

/// Fine-tuning hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FineTuneConfig {
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size (sequences per optimiser step).
    pub batch_size: usize,
    /// Number of fine-tuning epochs.
    pub epochs: usize,
    /// Target subword vocabulary size for the tokenizer built on the training split.
    pub subword_vocab_size: usize,
    /// Global gradient-norm clip.
    pub gradient_clip: f64,
    /// Optional masked-LM pre-initialisation stage.
    pub pretrain: Option<PretrainConfig>,
    /// RNG seed (weight init, batch order, dropout, masking).
    pub seed: u64,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        Self {
            learning_rate: 1e-3,
            batch_size: 16,
            epochs: 10,
            subword_vocab_size: 1200,
            gradient_clip: 5.0,
            pretrain: None,
            seed: 42,
        }
    }
}

/// What happened during training — useful for the experiment logs and the benches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSummary {
    /// Mean training loss per epoch, in epoch order.
    pub epoch_losses: Vec<f64>,
    /// Pre-initialisation summary, if the stage ran.
    pub pretrain: Option<PretrainSummary>,
    /// Number of trainable parameters.
    pub n_parameters: usize,
}

/// Builds, (pre)trains and serves one transformer classifier.
#[derive(Debug, Clone)]
pub struct Trainer {
    kind: ModelKind,
    model_config: ModelConfig,
    finetune: FineTuneConfig,
    model: Option<TransformerClassifier>,
    summary: Option<TrainingSummary>,
    sparse_embedding_grad: bool,
}

impl Trainer {
    /// A trainer with explicit architecture and fine-tuning configurations.
    pub fn new(kind: ModelKind, model_config: ModelConfig, finetune: FineTuneConfig) -> Self {
        model_config.validate();
        Self {
            kind,
            model_config,
            finetune,
            model: None,
            summary: None,
            sparse_embedding_grad: true,
        }
    }

    /// Switch the embedding-gradient path for the next `fit` (sparse by default;
    /// bit-identical either way — see
    /// [`TransformerClassifier::set_sparse_embedding_grad`]).
    pub fn set_sparse_embedding_grad(&mut self, enabled: bool) {
        self.sparse_embedding_grad = enabled;
        if let Some(model) = self.model.as_mut() {
            model.set_sparse_embedding_grad(enabled);
        }
    }

    /// The model kind being trained.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The fitted model, if `fit` has run.
    pub fn model(&self) -> Option<&TransformerClassifier> {
        self.model.as_ref()
    }

    /// The training summary, if `fit` has run.
    pub fn summary(&self) -> Option<&TrainingSummary> {
        self.summary.as_ref()
    }

    /// The fine-tuning configuration.
    pub fn finetune_config(&self) -> &FineTuneConfig {
        &self.finetune
    }

    /// Fit on raw training texts and dense labels.
    pub fn fit(&mut self, texts: &[&str], labels: &[usize]) {
        assert_eq!(texts.len(), labels.len(), "texts/labels length mismatch");
        assert!(
            !texts.is_empty(),
            "cannot fine-tune on an empty training set"
        );

        // 1. Tokenizer from the training split.
        let mut vocab_builder = SubwordVocabBuilder::new(self.finetune.subword_vocab_size);
        for text in texts {
            let words: Vec<String> = holistix_text::tokenize(text)
                .into_iter()
                .filter(|t| t.kind != holistix_text::TokenKind::Punctuation)
                .map(|t| t.lower())
                .collect();
            vocab_builder.add_words(&words);
        }
        let tokenizer = vocab_builder.build();

        // 2. Fresh model.
        let mut model = TransformerClassifier::new(
            self.model_config.clone(),
            self.kind.name(),
            tokenizer,
            self.finetune.seed,
        );
        model.set_sparse_embedding_grad(self.sparse_embedding_grad);

        // 3. Optional masked-LM pre-initialisation on the (unlabeled) training texts.
        let pretrain_summary = self
            .finetune
            .pretrain
            .as_ref()
            .map(|config| pretrain_masked_lm(&mut model, texts, config));

        // 4. Fine-tune.
        let encoded: Vec<(Vec<usize>, usize)> = texts
            .iter()
            .zip(labels)
            .map(|(t, &l)| (model.encode(t), l))
            .collect();
        let mut rng = Rng64::new(self.finetune.seed ^ 0xF1E2_D3C4);
        let mut optimizer = Adam::with_lr(self.finetune.learning_rate);
        let mut epoch_losses = Vec::with_capacity(self.finetune.epochs);
        let mut order: Vec<usize> = (0..encoded.len()).collect();
        for _epoch in 0..self.finetune.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(self.finetune.batch_size.max(1)) {
                let batch: Vec<(Vec<usize>, usize)> =
                    chunk.iter().map(|&i| encoded[i].clone()).collect();
                model.store_mut().zero_grads();
                let mut graph = Graph::new();
                let loss = model.batch_loss(&mut graph, &batch, &mut rng);
                epoch_loss += graph.scalar(loss);
                batches += 1;
                graph.backward(loss, model.store_mut());
                clip_gradients(model.store_mut(), self.finetune.gradient_clip);
                optimizer.step(model.store_mut());
            }
            epoch_losses.push(if batches == 0 {
                0.0
            } else {
                epoch_loss / batches as f64
            });
        }

        self.summary = Some(TrainingSummary {
            epoch_losses,
            pretrain: pretrain_summary,
            n_parameters: model.n_parameters(),
        });
        self.model = Some(model);
    }

    /// Predict dense class indices for texts. Panics if `fit` has not run.
    pub fn predict(&self, texts: &[&str]) -> Vec<usize> {
        let model = self
            .model
            .as_ref()
            .expect("Trainer::predict called before fit");
        texts.iter().map(|t| model.predict_text(t)).collect()
    }

    /// Class-probability vector for one text. Panics if `fit` has not run.
    pub fn predict_proba(&self, text: &str) -> Vec<f64> {
        let model = self
            .model
            .as_ref()
            .expect("Trainer::predict_proba called before fit");
        model.predict_proba_text(text)
    }

    /// Class-probability vectors for a batch of texts, one row per text.
    /// The batch entry point the serving layer's `Scorer` seam calls; the whole
    /// batch goes through the model as one padded stack, and each row equals
    /// [`predict_proba`](Self::predict_proba) on that text exactly (every op
    /// outside attention is row-wise, and batched attention mixes rows per
    /// sequence only). Panics if `fit` has not run.
    pub fn predict_proba_batch(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        let model = self
            .model
            .as_ref()
            .expect("Trainer::predict_proba_batch called before fit");
        model.predict_proba_texts(texts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny, lexically separable two-ish-class task drawn from the paper's domain.
    fn tiny_task() -> (Vec<&'static str>, Vec<usize>) {
        let texts = vec![
            "my job drains me and the money is gone",
            "work deadlines and my boss are crushing me",
            "i lost my job and cannot pay rent",
            "unemployed again and the career feels over",
            "my salary is tiny and the bills keep coming",
            "work is exhausting and the money never lasts",
            "i feel alone and my friends ignore me",
            "nobody talks to me and i feel invisible",
            "my relationship ended and i am so lonely",
            "i have no friends and feel excluded",
            "everyone left me and i feel isolated",
            "my family ignores me and i feel alone",
        ];
        let labels = vec![1, 1, 1, 1, 1, 1, 4, 4, 4, 4, 4, 4];
        (texts, labels)
    }

    fn fast_config(seed: u64, pretrain: Option<PretrainConfig>) -> (ModelConfig, FineTuneConfig) {
        let mut model = ModelConfig::for_kind(ModelKind::MentalBert, 6);
        model.hidden_dim = 16;
        model.n_heads = 2;
        model.ff_dim = 32;
        model.max_len = 12;
        model.dropout = 0.0;
        let finetune = FineTuneConfig {
            learning_rate: 3e-3,
            batch_size: 4,
            epochs: 12,
            subword_vocab_size: 300,
            pretrain,
            seed,
            ..FineTuneConfig::default()
        };
        (model, finetune)
    }

    #[test]
    fn fine_tuning_learns_a_separable_task() {
        let (texts, labels) = tiny_task();
        let (model_config, finetune) = fast_config(3, None);
        let mut trainer = Trainer::new(ModelKind::MentalBert, model_config, finetune);
        trainer.fit(&texts, &labels);
        let preds = trainer.predict(&texts);
        let acc =
            preds.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / labels.len() as f64;
        assert!(acc >= 0.75, "training-set accuracy {acc}");
        let summary = trainer.summary().unwrap();
        assert_eq!(summary.epoch_losses.len(), 12);
        assert!(summary.epoch_losses.last().unwrap() < summary.epoch_losses.first().unwrap());
    }

    #[test]
    fn pretraining_stage_runs_when_configured() {
        let (texts, labels) = tiny_task();
        let (model_config, finetune) = fast_config(
            5,
            Some(PretrainConfig {
                epochs: 1,
                max_sequences: Some(8),
                ..PretrainConfig::in_domain()
            }),
        );
        let mut trainer = Trainer::new(ModelKind::MentalBert, model_config, finetune);
        trainer.fit(&texts, &labels);
        assert!(trainer.summary().unwrap().pretrain.is_some());
        assert!(trainer.model().unwrap().n_parameters() > 0);
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let (texts, labels) = tiny_task();
        let run = |seed| {
            let (model_config, finetune) = fast_config(seed, None);
            let mut trainer = Trainer::new(ModelKind::MentalBert, model_config, finetune);
            trainer.fit(&texts, &labels);
            trainer.predict_proba(texts[0])
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn probabilities_are_well_formed() {
        let (texts, labels) = tiny_task();
        let (model_config, finetune) = fast_config(9, None);
        let mut trainer = Trainer::new(ModelKind::MentalBert, model_config, finetune);
        trainer.fit(&texts, &labels);
        let proba = trainer.predict_proba("my job and money situation is hopeless");
        assert_eq!(proba.len(), 6);
        assert!((proba.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_and_dense_fine_tuning_agree_bitwise() {
        let (texts, labels) = tiny_task();
        let run = |sparse: bool| {
            let (model_config, finetune) = fast_config(13, None);
            let mut trainer = Trainer::new(ModelKind::MentalBert, model_config, finetune);
            trainer.set_sparse_embedding_grad(sparse);
            trainer.fit(&texts, &labels);
            (
                trainer.summary().unwrap().epoch_losses.clone(),
                trainer.predict_proba(texts[0]),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn batch_prediction_matches_per_text_prediction() {
        let (texts, labels) = tiny_task();
        let (model_config, finetune) = fast_config(17, None);
        let mut trainer = Trainer::new(ModelKind::MentalBert, model_config, finetune);
        trainer.fit(&texts, &labels);
        let batched = trainer.predict_proba_batch(&texts);
        for (text, row) in texts.iter().zip(&batched) {
            assert_eq!(&trainer.predict_proba(text), row);
        }
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let (model_config, finetune) = fast_config(1, None);
        let trainer = Trainer::new(ModelKind::Bert, model_config, finetune);
        let _ = trainer.predict(&["hello"]);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_panics() {
        let (model_config, finetune) = fast_config(1, None);
        let mut trainer = Trainer::new(ModelKind::Bert, model_config, finetune);
        trainer.fit(&[], &[]);
    }
}
