//! # holistix-transformer
//!
//! Transformer baselines for the Holistix reproduction.
//!
//! §III-A of the paper fine-tunes six pretrained transformers — BERT, DistilBERT,
//! MentalBERT, Flan-T5, XLNet and GPT-2 — for 6-class wellness-dimension
//! classification. Pretrained checkpoints are not available offline, so this crate
//! builds *architecture-faithful small analogues* trained from scratch on top of the
//! `holistix-tensor` autograd engine:
//!
//! | Paper model | Analogue here |
//! |---|---|
//! | BERT        | bidirectional encoder, CLS pooling, generic (shuffled-corpus) pre-initialisation |
//! | DistilBERT  | same but half the encoder layers |
//! | MentalBERT  | same depth as BERT but **in-domain** masked-LM pre-initialisation |
//! | Flan-T5     | encoder with mean pooling and a GELU bottleneck head (encoder–decoder stand-in) |
//! | XLNet       | encoder with learned relative-position attention biases |
//! | GPT-2       | causal (left-to-right) attention with last-token pooling |
//!
//! The paper's fine-tuning hyper-parameters are kept verbatim where they transfer
//! (batch sizes 16/8/4, 10 epochs; learning rates are scaled to from-scratch training
//! — see [`zoo::FineTuneRecipe`]). The "pretrained vs not" distinction — the thing that
//! makes MentalBERT win Table IV — is reproduced by the masked-LM pre-initialisation
//! stage in [`pretrain`]: the MentalBERT analogue gets it on in-domain text, the BERT
//! analogue on a domain-degraded (shuffled word order) copy, and the rest according to
//! their provenance.
//!
//! Modules:
//! * [`config`] — architectural configuration and the [`ModelKind`](config::ModelKind) enum,
//! * [`attention`] — multi-head self-attention (bidirectional / causal / relative),
//! * [`layers`] — feed-forward blocks, layer-norm parameter bundles, encoder layers,
//! * [`model`] — the end-to-end [`TransformerClassifier`](model::TransformerClassifier),
//! * [`pretrain`] — masked-LM domain-adaptive pre-initialisation,
//! * [`trainer`] — the fine-tuning loop (Adam, batching, early stopping on validation loss),
//! * [`zoo`] — the named model zoo with per-model recipes.

pub mod attention;
pub mod config;
pub mod layers;
pub mod model;
pub mod pretrain;
pub mod trainer;
pub mod zoo;

pub use config::{AttentionKind, ModelConfig, ModelKind, Pooling};
pub use model::TransformerClassifier;
pub use pretrain::{pretrain_masked_lm, PretrainConfig};
pub use trainer::{FineTuneConfig, Trainer, TrainingSummary};
pub use zoo::{build_model, FineTuneRecipe};
