//! # holistix-transformer
//!
//! Transformer baselines for the Holistix reproduction.
//!
//! §III-A of the paper fine-tunes six pretrained transformers — BERT, DistilBERT,
//! MentalBERT, Flan-T5, XLNet and GPT-2 — for 6-class wellness-dimension
//! classification. Pretrained checkpoints are not available offline, so this crate
//! builds *architecture-faithful small analogues* trained from scratch on top of the
//! `holistix-tensor` autograd engine:
//!
//! | Paper model | Analogue here |
//! |---|---|
//! | BERT        | bidirectional encoder, CLS pooling, generic (shuffled-corpus) pre-initialisation |
//! | DistilBERT  | same but half the encoder layers |
//! | MentalBERT  | same depth as BERT but **in-domain** masked-LM pre-initialisation |
//! | Flan-T5     | encoder with mean pooling and a GELU bottleneck head (encoder–decoder stand-in) |
//! | XLNet       | encoder with learned relative-position attention biases |
//! | GPT-2       | causal (left-to-right) attention with last-token pooling |
//!
//! The paper's fine-tuning hyper-parameters are kept verbatim where they transfer
//! (batch sizes 16/8/4, 10 epochs; learning rates are scaled to from-scratch training
//! — see [`zoo::FineTuneRecipe`]). The "pretrained vs not" distinction — the thing that
//! makes MentalBERT win Table IV — is reproduced by the masked-LM pre-initialisation
//! stage in [`pretrain`]: the MentalBERT analogue gets it on in-domain text, the BERT
//! analogue on a domain-degraded (shuffled word order) copy, and the rest according to
//! their provenance.
//!
//! Modules:
//! * [`config`] — architectural configuration and the [`ModelKind`](config::ModelKind) enum,
//! * [`attention`] — multi-head self-attention (bidirectional / causal / relative),
//! * [`layers`] — feed-forward blocks, layer-norm parameter bundles, encoder layers,
//! * [`model`] — the end-to-end [`TransformerClassifier`](model::TransformerClassifier),
//! * [`pretrain`] — masked-LM domain-adaptive pre-initialisation,
//! * [`trainer`] — the fine-tuning loop (Adam, batching, early stopping on validation loss),
//! * [`zoo`] — the named model zoo with per-model recipes,
//! * [`quant`] — weight-only i8 quantized inference ([`QuantizedTransformer`](quant::QuantizedTransformer)).
//!
//! ## Fast path
//!
//! Two performance paths sit beside the reference f64 implementation; both are
//! verified against it rather than merely "close":
//!
//! **Sparse embedding gradients** (on by default). A token sequence touches at most
//! `max_len` rows of the `vocab × hidden` embedding tables, but the naive tape
//! formulation materialises the full table as a graph leaf (a clone per sequence)
//! and scatters into an equally dense gradient scratch. The
//! `Graph::gather_param` op reads embedding rows straight from the
//! [`ParamStore`](holistix_tensor::ParamStore) and, on the backward pass, folds
//! per-position row gradients by token id (increasing position order — exactly the
//! dense scatter order), rounds them through a CSR accumulator, and applies each
//! distinct row to the store once. Because the fold order and the per-element
//! additions are identical to the dense path, the resulting gradients are
//! **bit-identical** (property-tested across random corpora and seeds, and at every
//! optimizer step of fine-tuning on the seeded tiny task). Adam moments and
//! gradient clipping stay dense, so optimizer trajectories match exactly too.
//! `TransformerClassifier::set_sparse_embedding_grad(false)` restores the dense
//! reference path (kept for the A/B benchmark in `BENCH_transformer.json`).
//!
//! **Quantized i8 inference** ([`quant::QuantizedTransformer`]). Weight-only
//! symmetric i8 quantization with **per-output-row** absmax scales (per-row rather
//! than per-tensor: fine-tuned projection columns have uneven ranges, and one
//! outlier column under a tensor-wide scale would crush every other row's
//! resolution; the per-row cost is one f32 per output), f32 activations and
//! accumulation, f64 only at the final class softmax. Layer-norm parameters,
//! additive biases and the XLNet relative-position bias stay f32 — they are tiny
//! and feed normalisation statistics directly. The forward pass is graph-free,
//! its dot products run over eight independent accumulator lanes (breaking the
//! serial FP-add dependency chain that caps a naive loop at one multiply-add
//! per add-latency), and it drops the padded tail of each sequence — padding
//! is always a suffix, masked keys contribute an attention weight of exactly
//! zero (`exp(-1e9)` underflows in f32), and every pooling mode ignores padded
//! rows, so the truncation is bit-identical while cutting the quadratic
//! attention cost to the real token count. The lane-folded summation order
//! differs from the f64 reference's sequential sums, which is covered by the
//! drift bound below rather than bit-identity. The class
//! probability drift versus the f64 scorer is bounded by
//! [`quant::MAX_PROBABILITY_DRIFT`] (asserted in tests), with 100 % label
//! agreement on the seeded Table IV task. Pick `QuantizedTransformer` (via
//! `holistix-core`'s `QuantizedScorer`) when serving throughput matters and a
//! ≤ [`quant::MAX_PROBABILITY_DRIFT`] probability perturbation is acceptable —
//! i.e. for ranking/classification, not for calibrated probability readouts.

pub mod attention;
pub mod config;
pub mod layers;
pub mod model;
pub mod pretrain;
pub mod quant;
pub mod trainer;
pub mod zoo;

pub use config::{AttentionKind, ModelConfig, ModelKind, Pooling};
pub use model::TransformerClassifier;
pub use pretrain::{pretrain_masked_lm, PretrainConfig};
pub use quant::{QuantizedTransformer, MAX_PROBABILITY_DRIFT};
pub use trainer::{FineTuneConfig, Trainer, TrainingSummary};
pub use zoo::{build_model, FineTuneRecipe};
