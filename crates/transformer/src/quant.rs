//! Weight-only i8 quantized inference for fitted transformer classifiers.
//!
//! [`QuantizedTransformer`] is built by quantizing a fitted
//! [`TransformerClassifier`](crate::model::TransformerClassifier): every weight
//! matrix (embeddings, Q/K/V/O projections, feed-forward, bottleneck, head) is
//! stored as **per-output-row symmetric i8** with one f32 scale per row, activations
//! and accumulation run in f32, and f64 appears only at the final class-softmax
//! boundary.
//!
//! Per-row (rather than per-tensor) scaling is the right granularity here: the
//! Xavier-initialised projections drift apart per column during fine-tuning, so a
//! single tensor-wide absmax lets one outlier column crush the resolution of every
//! other row. Per-row scales cost `d_out` extra f32s per matrix — noise next to the
//! i8 payload — and keep the quantization error of each output coordinate
//! proportional to its own row's range.
//!
//! What stays f32 (unquantized): layer-norm gains/biases, additive biases and the
//! XLNet relative-position bias. They are `O(hidden)`-sized (the relative bias is
//! `max_len²`), so quantizing them saves almost nothing while directly injecting
//! error into the normalisation statistics.
//!
//! The forward pass never builds an autograd graph, which is where most of the
//! measured speedup over the f64 scorer comes from on small models; the i8 weights
//! additionally shrink the working set ~8× for the matmul-bound large-batch case.
//!
//! The end-to-end probability drift versus the f64 path is bounded by
//! [`MAX_PROBABILITY_DRIFT`] (asserted in tests and in the `holistix-core`
//! equivalence suite; label agreement on the seeded Table IV task is exactly 100 %).

use crate::config::{AttentionKind, ModelConfig, Pooling};
use crate::model::TransformerClassifier;
use holistix_linalg::Matrix;
use holistix_tensor::{ParamId, ParamStore};
use holistix_text::SubwordTokenizer;

/// Documented bound on `max |p_i8 - p_f64|` over class probabilities, for the
/// tiny-to-`Fast`-profile models this crate trains. Asserted by the equivalence
/// tests here and in `holistix-core`.
pub const MAX_PROBABILITY_DRIFT: f64 = 0.05;

/// Additive value used to mask out attention logits (mirrors the f64 path).
const MASK_VALUE: f32 = -1e9;

/// A weight matrix quantized to per-output-row symmetric i8.
///
/// Stored transposed relative to the f64 graph convention: the source matrix maps
/// `d_in → d_out` as `x · W` with `W: d_in × d_out`; here row `j` holds the i8
/// weights of output `j` (`d_out × d_in`, row-major) so the inner product walks
/// contiguous memory.
#[derive(Debug, Clone)]
struct QuantLinear {
    out_dim: usize,
    in_dim: usize,
    weights: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantLinear {
    /// Quantize a `d_in × d_out` f64 weight matrix.
    fn from_matrix(w: &Matrix) -> Self {
        let in_dim = w.rows();
        let out_dim = w.cols();
        let mut weights = vec![0i8; out_dim * in_dim];
        let mut scales = vec![0f32; out_dim];
        for j in 0..out_dim {
            let absmax = (0..in_dim).fold(0.0f64, |m, i| m.max(w[(i, j)].abs()));
            // An all-zero output row quantizes to zeros with any scale; 1.0 avoids
            // a 0/0 in the round.
            let scale = if absmax == 0.0 { 1.0 } else { absmax / 127.0 };
            scales[j] = scale as f32;
            for i in 0..in_dim {
                let q = (w[(i, j)] / scale).round().clamp(-127.0, 127.0);
                weights[j * in_dim + i] = q as i8;
            }
        }
        Self {
            out_dim,
            in_dim,
            weights,
            scales,
        }
    }

    /// `out = scale ⊙ (Q · x)`, accumulating in f32.
    ///
    /// Each output is a dot product; a single running accumulator would chain
    /// every FP add behind the previous one (one multiply-add per FP-add
    /// latency), so the loop runs eight independent lanes and folds them at
    /// the end — the same reassociation a SIMD reduction performs. The fold
    /// order differs from a sequential sum, which is fine: the i8 path is
    /// bounded by the probability-drift tests, not bit-identity.
    fn apply(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.in_dim);
        debug_assert_eq!(out.len(), self.out_dim);
        for (j, out_j) in out.iter_mut().enumerate() {
            let row = &self.weights[j * self.in_dim..(j + 1) * self.in_dim];
            let mut acc = [0.0f32; 8];
            let mut w8 = row.chunks_exact(8);
            let mut x8 = x.chunks_exact(8);
            for (w, v) in (&mut w8).zip(&mut x8) {
                for l in 0..8 {
                    acc[l] += w[l] as f32 * v[l];
                }
            }
            let mut total: f32 = acc.iter().sum();
            for (&q, &v) in w8.remainder().iter().zip(x8.remainder()) {
                total += q as f32 * v;
            }
            *out_j = total * self.scales[j];
        }
    }

    /// Apply to every row of `x` (`n × in_dim`, row-major), writing `n × out_dim`.
    fn apply_rows(&self, x: &[f32], n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; n * self.out_dim];
        for r in 0..n {
            self.apply(
                &x[r * self.in_dim..(r + 1) * self.in_dim],
                &mut out[r * self.out_dim..(r + 1) * self.out_dim],
            );
        }
        out
    }

    fn n_weights(&self) -> usize {
        self.weights.len()
    }
}

/// An embedding table quantized to per-row symmetric i8 (one scale per vocabulary
/// row — the natural unit, since a lookup touches exactly one row).
#[derive(Debug, Clone)]
struct QuantEmbedding {
    cols: usize,
    weights: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantEmbedding {
    fn from_matrix(w: &Matrix) -> Self {
        let (rows, cols) = w.shape();
        let mut weights = vec![0i8; rows * cols];
        let mut scales = vec![0f32; rows];
        for r in 0..rows {
            let row = w.row(r);
            let absmax = row.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            let scale = if absmax == 0.0 { 1.0 } else { absmax / 127.0 };
            scales[r] = scale as f32;
            for (c, &v) in row.iter().enumerate() {
                weights[r * cols + c] = (v / scale).round().clamp(-127.0, 127.0) as i8;
            }
        }
        Self {
            cols,
            weights,
            scales,
        }
    }

    /// Dequantize row `r` into `out`.
    fn lookup(&self, r: usize, out: &mut [f32]) {
        let scale = self.scales[r];
        for (o, &q) in out
            .iter_mut()
            .zip(&self.weights[r * self.cols..(r + 1) * self.cols])
        {
            *o = q as f32 * scale;
        }
    }

    fn n_weights(&self) -> usize {
        self.weights.len()
    }
}

/// Layer-norm parameters kept in f32.
#[derive(Debug, Clone)]
struct LayerNormF32 {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    eps: f32,
}

impl LayerNormF32 {
    /// Normalise every `dim`-sized row of `x` in place.
    fn apply(&self, x: &mut [f32]) {
        let dim = self.gamma.len();
        for row in x.chunks_mut(dim) {
            let mean = row.iter().sum::<f32>() / dim as f32;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / dim as f32;
            let std = (var + self.eps).sqrt();
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v - mean) / std * self.gamma[j] + self.beta[j];
            }
        }
    }
}

#[derive(Debug, Clone)]
struct QuantHead {
    wq: QuantLinear,
    wk: QuantLinear,
    wv: QuantLinear,
    wo: QuantLinear,
}

#[derive(Debug, Clone)]
struct QuantEncoderLayer {
    heads: Vec<QuantHead>,
    attn_bias: Vec<f32>,
    /// `max_len × max_len` additive relative-position bias, row-major (XLNet only).
    rel_bias: Option<Vec<f32>>,
    ln_attn: LayerNormF32,
    ffn_w1: QuantLinear,
    ffn_b1: Vec<f32>,
    ffn_w2: QuantLinear,
    ffn_b2: Vec<f32>,
    ln_ffn: LayerNormF32,
}

/// A fitted transformer classifier with i8-quantized weights, f32 activations and
/// f64 only at the class-softmax boundary. See the module docs for the scheme.
#[derive(Debug, Clone)]
pub struct QuantizedTransformer {
    config: ModelConfig,
    name: String,
    tokenizer: SubwordTokenizer,
    token_embedding: QuantEmbedding,
    position_embedding: QuantEmbedding,
    embedding_norm: LayerNormF32,
    layers: Vec<QuantEncoderLayer>,
    bottleneck: Option<(QuantLinear, Vec<f32>)>,
    head: QuantLinear,
    head_bias: Vec<f32>,
}

fn param_by_name(store: &ParamStore, name: &str) -> ParamId {
    store
        .ids()
        .into_iter()
        .find(|&id| store.name(id) == name)
        .unwrap_or_else(|| panic!("quantization: parameter {name} missing from store"))
}

fn matrix<'a>(store: &'a ParamStore, name: &str) -> &'a Matrix {
    store.value(param_by_name(store, name))
}

fn row_f32(store: &ParamStore, name: &str) -> Vec<f32> {
    matrix(store, name)
        .row(0)
        .iter()
        .map(|&v| v as f32)
        .collect()
}

fn layer_norm_f32(store: &ParamStore, prefix: &str, eps: f64) -> LayerNormF32 {
    LayerNormF32 {
        gamma: row_f32(store, &format!("{prefix}.gamma")),
        beta: row_f32(store, &format!("{prefix}.beta")),
        eps: eps as f32,
    }
}

impl QuantizedTransformer {
    /// Quantize a fitted classifier. The original model is left untouched.
    pub fn from_classifier(model: &TransformerClassifier) -> Self {
        let config = model.config().clone();
        let store = model.store();
        let eps = config.layer_norm_eps;
        let layers = (0..config.n_layers)
            .map(|l| {
                let heads = (0..config.n_heads)
                    .map(|h| {
                        let p = format!("layer{l}.attn.head{h}");
                        QuantHead {
                            wq: QuantLinear::from_matrix(matrix(store, &format!("{p}.wq"))),
                            wk: QuantLinear::from_matrix(matrix(store, &format!("{p}.wk"))),
                            wv: QuantLinear::from_matrix(matrix(store, &format!("{p}.wv"))),
                            wo: QuantLinear::from_matrix(matrix(store, &format!("{p}.wo"))),
                        }
                    })
                    .collect();
                let rel_bias = (config.attention == AttentionKind::Relative).then(|| {
                    matrix(store, &format!("layer{l}.attn.rel_bias"))
                        .data()
                        .iter()
                        .map(|&v| v as f32)
                        .collect()
                });
                QuantEncoderLayer {
                    heads,
                    attn_bias: row_f32(store, &format!("layer{l}.attn.bias")),
                    rel_bias,
                    ln_attn: layer_norm_f32(store, &format!("layer{l}.ln_attn"), eps),
                    ffn_w1: QuantLinear::from_matrix(matrix(store, &format!("layer{l}.ffn.w1"))),
                    ffn_b1: row_f32(store, &format!("layer{l}.ffn.b1")),
                    ffn_w2: QuantLinear::from_matrix(matrix(store, &format!("layer{l}.ffn.w2"))),
                    ffn_b2: row_f32(store, &format!("layer{l}.ffn.b2")),
                    ln_ffn: layer_norm_f32(store, &format!("layer{l}.ln_ffn"), eps),
                }
            })
            .collect();
        let bottleneck = config.bottleneck_head.then(|| {
            (
                QuantLinear::from_matrix(matrix(store, "head.bottleneck.w")),
                row_f32(store, "head.bottleneck.b"),
            )
        });
        Self {
            token_embedding: QuantEmbedding::from_matrix(matrix(store, "embeddings.token")),
            position_embedding: QuantEmbedding::from_matrix(matrix(store, "embeddings.position")),
            embedding_norm: layer_norm_f32(store, "embeddings.ln", eps),
            layers,
            bottleneck,
            head: QuantLinear::from_matrix(matrix(store, "head.w")),
            head_bias: row_f32(store, "head.b"),
            name: format!("{}-i8", model.name()),
            tokenizer: model.tokenizer().clone(),
            config,
        }
    }

    /// The model's display name (`<original>-i8`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Number of i8-quantized scalar weights.
    pub fn n_quantized_weights(&self) -> usize {
        let mut n = self.token_embedding.n_weights() + self.position_embedding.n_weights();
        for layer in &self.layers {
            for head in &layer.heads {
                n += head.wq.n_weights()
                    + head.wk.n_weights()
                    + head.wv.n_weights()
                    + head.wo.n_weights();
            }
            n += layer.ffn_w1.n_weights() + layer.ffn_w2.n_weights();
        }
        if let Some((w, _)) = &self.bottleneck {
            n += w.n_weights();
        }
        n + self.head.n_weights()
    }

    fn encode(&self, text: &str) -> Vec<usize> {
        let words = holistix_text::tokenize(text)
            .into_iter()
            .filter(|t| t.kind != holistix_text::TokenKind::Punctuation)
            .map(|t| t.lower())
            .collect::<Vec<_>>();
        self.tokenizer
            .encode_for_classification(&words, self.config.max_len)
    }

    /// Run the encoder stack, returning `max_len × hidden` f32 hidden states.
    fn encode_hidden(&self, tokens: &[usize], is_padding: &[bool]) -> Vec<f32> {
        let n = tokens.len();
        let hidden_dim = self.config.hidden_dim;
        let mut hidden = vec![0.0f32; n * hidden_dim];
        let mut pos_row = vec![0.0f32; hidden_dim];
        for (i, &tok) in tokens.iter().enumerate() {
            let row = &mut hidden[i * hidden_dim..(i + 1) * hidden_dim];
            self.token_embedding.lookup(tok, row);
            self.position_embedding.lookup(i, &mut pos_row);
            for (h, p) in row.iter_mut().zip(&pos_row) {
                *h += p;
            }
        }
        self.embedding_norm.apply(&mut hidden);
        for layer in &self.layers {
            hidden = self.encoder_layer(layer, &hidden, is_padding);
        }
        hidden
    }

    fn encoder_layer(&self, layer: &QuantEncoderLayer, x: &[f32], is_padding: &[bool]) -> Vec<f32> {
        let n = is_padding.len();
        let hidden_dim = self.config.hidden_dim;
        let head_dim = self.config.head_dim();
        let causal = self.config.attention == AttentionKind::Causal;
        let scale = 1.0 / (head_dim as f32).sqrt();

        let mut attended = vec![0.0f32; n * hidden_dim];
        let mut scores = vec![0.0f32; n * n];
        for head in &layer.heads {
            let q = head.wq.apply_rows(x, n);
            let k = head.wk.apply_rows(x, n);
            let v = head.wv.apply_rows(x, n);
            for i in 0..n {
                let qi = &q[i * head_dim..(i + 1) * head_dim];
                for j in 0..n {
                    let kj = &k[j * head_dim..(j + 1) * head_dim];
                    let mut s = dot_f32(qi, kj) * scale;
                    if let Some(rel) = &layer.rel_bias {
                        s += rel[i * self.config.max_len + j];
                    }
                    if is_padding[j] || (causal && j > i) {
                        s += MASK_VALUE;
                    }
                    scores[i * n + j] = s;
                }
                softmax_row_f32(&mut scores[i * n..(i + 1) * n]);
            }
            let mut context = vec![0.0f32; n * head_dim];
            for i in 0..n {
                let out = &mut context[i * head_dim..(i + 1) * head_dim];
                for j in 0..n {
                    let w = scores[i * n + j];
                    if w == 0.0 {
                        continue;
                    }
                    for (o, &vv) in out.iter_mut().zip(&v[j * head_dim..(j + 1) * head_dim]) {
                        *o += w * vv;
                    }
                }
            }
            let projected = head.wo.apply_rows(&context, n);
            for (a, p) in attended.iter_mut().zip(&projected) {
                *a += p;
            }
        }
        // Residual + output bias, then post-LN; FFN; residual; post-LN.
        let mut normed = vec![0.0f32; n * hidden_dim];
        for r in 0..n {
            for c in 0..hidden_dim {
                let idx = r * hidden_dim + c;
                normed[idx] = x[idx] + attended[idx] + layer.attn_bias[c];
            }
        }
        layer.ln_attn.apply(&mut normed);
        let mut ff = layer.ffn_w1.apply_rows(&normed, n);
        for row in ff.chunks_mut(layer.ffn_b1.len()) {
            for (v, b) in row.iter_mut().zip(&layer.ffn_b1) {
                *v = gelu_f32(*v + b);
            }
        }
        let mut out = layer.ffn_w2.apply_rows(&ff, n);
        for r in 0..n {
            for c in 0..hidden_dim {
                let idx = r * hidden_dim + c;
                out[idx] += layer.ffn_b2[c] + normed[idx];
            }
        }
        layer.ln_ffn.apply(&mut out);
        out
    }

    /// Class-probability vector for a raw text (f64 only at this softmax).
    pub fn predict_proba_text(&self, text: &str) -> Vec<f64> {
        let padded = self.encode(text);
        let padding: Vec<bool> = padded
            .iter()
            .map(|&t| t == self.tokenizer.pad_id())
            .collect();
        // Padding is a suffix of the encoded sequence, its keys are masked to
        // an attention weight of exactly zero (`exp(-1e9)` underflows in f32)
        // and every pooling mode ignores padded rows, so dropping the padded
        // tail is bit-identical to processing it — and attention is quadratic
        // in the rows processed. The f64 path keeps the full padded sequence
        // (its autograd graph is shared with training); this shortcut is part
        // of the quantized scorer's speedup.
        let n_real = padding.iter().position(|&p| p).unwrap_or(padded.len());
        let (tokens, is_padding) = if padding[n_real..].iter().all(|&p| p) {
            (&padded[..n_real], &padding[..n_real])
        } else {
            (&padded[..], &padding[..])
        };
        let hidden = self.encode_hidden(tokens, is_padding);
        let hidden_dim = self.config.hidden_dim;
        let n = tokens.len();
        let mut pooled = vec![0.0f32; hidden_dim];
        match self.config.pooling {
            Pooling::Cls => pooled.copy_from_slice(&hidden[..hidden_dim]),
            Pooling::Mean => {
                let non_pad: Vec<usize> = (0..n).filter(|&i| !is_padding[i]).collect();
                for &i in &non_pad {
                    for (p, &h) in pooled
                        .iter_mut()
                        .zip(&hidden[i * hidden_dim..(i + 1) * hidden_dim])
                    {
                        *p += h;
                    }
                }
                let count = non_pad.len().max(1) as f32;
                for p in &mut pooled {
                    *p /= count;
                }
            }
            Pooling::LastToken => {
                let last = (0..n).rev().find(|&i| !is_padding[i]).unwrap_or(0);
                pooled.copy_from_slice(&hidden[last * hidden_dim..(last + 1) * hidden_dim]);
            }
        }
        if let Some((w, b)) = &self.bottleneck {
            let mut h = vec![0.0f32; w.out_dim];
            w.apply(&pooled, &mut h);
            for (v, bias) in h.iter_mut().zip(b) {
                *v = gelu_f32(*v + bias);
            }
            pooled = h;
        }
        let mut logits = vec![0.0f32; self.config.n_classes];
        self.head.apply(&pooled, &mut logits);
        let logits_f64: Vec<f64> = logits
            .iter()
            .zip(&self.head_bias)
            .map(|(&l, &b)| (l + b) as f64)
            .collect();
        holistix_linalg::softmax(&logits_f64)
    }

    /// Class-probability vectors for a batch of texts, one row per text.
    pub fn predict_proba_texts(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        texts.iter().map(|t| self.predict_proba_text(t)).collect()
    }

    /// Hard prediction for a raw text.
    pub fn predict_text(&self, text: &str) -> usize {
        holistix_linalg::argmax(&self.predict_proba_text(text)).unwrap_or(0)
    }
}

/// f32 dot product over eight independent accumulator lanes (see
/// [`QuantLinear::apply`] for why a single accumulator would serialize).
fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let mut a8 = a.chunks_exact(8);
    let mut b8 = b.chunks_exact(8);
    for (x, y) in (&mut a8).zip(&mut b8) {
        for l in 0..8 {
            acc[l] += x[l] * y[l];
        }
    }
    let mut total: f32 = acc.iter().sum();
    for (x, y) in a8.remainder().iter().zip(b8.remainder()) {
        total += x * y;
    }
    total
}

fn softmax_row_f32(row: &mut [f32]) {
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

fn gelu_f32(x: f32) -> f32 {
    0.5 * x * (1.0 + ((2.0 / std::f32::consts::PI).sqrt() * (x + 0.044_715 * x * x * x)).tanh())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelKind;
    use crate::pretrain::PretrainConfig;
    use crate::trainer::{FineTuneConfig, Trainer};

    fn tiny_task() -> (Vec<&'static str>, Vec<usize>) {
        let texts = vec![
            "my job drains me and the money is gone",
            "work deadlines and my boss are crushing me",
            "i lost my job and cannot pay rent",
            "unemployed again and the career feels over",
            "my salary is tiny and the bills keep coming",
            "work is exhausting and the money never lasts",
            "i feel alone and my friends ignore me",
            "nobody talks to me and i feel invisible",
            "my relationship ended and i am so lonely",
            "i have no friends and feel excluded",
            "everyone left me and i feel isolated",
            "my family ignores me and i feel alone",
        ];
        let labels = vec![1, 1, 1, 1, 1, 1, 4, 4, 4, 4, 4, 4];
        (texts, labels)
    }

    fn fitted(kind: ModelKind, seed: u64) -> Trainer {
        let (texts, labels) = tiny_task();
        let mut model = crate::config::ModelConfig::for_kind(kind, 6);
        model.hidden_dim = 16;
        model.n_heads = 2;
        model.ff_dim = 32;
        model.max_len = 12;
        model.dropout = 0.0;
        let finetune = FineTuneConfig {
            learning_rate: 3e-3,
            batch_size: 4,
            epochs: 12,
            subword_vocab_size: 300,
            seed,
            ..FineTuneConfig::default()
        };
        let mut trainer = Trainer::new(kind, model, finetune);
        trainer.fit(&texts, &labels);
        trainer
    }

    #[test]
    fn quantized_probabilities_stay_within_drift_bound() {
        // Cover all attention patterns, poolings and the bottleneck head.
        for kind in [
            ModelKind::MentalBert,
            ModelKind::FlanT5,
            ModelKind::Gpt2,
            ModelKind::Xlnet,
        ] {
            let trainer = fitted(kind, 3);
            let model = trainer.model().unwrap();
            let quant = QuantizedTransformer::from_classifier(model);
            let (texts, _) = tiny_task();
            for text in texts {
                let exact = model.predict_proba_text(text);
                let approx = quant.predict_proba_text(text);
                assert_eq!(approx.len(), 6);
                assert!((approx.iter().sum::<f64>() - 1.0).abs() < 1e-6);
                let drift = exact
                    .iter()
                    .zip(&approx)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(
                    drift <= MAX_PROBABILITY_DRIFT,
                    "{kind:?} drift {drift} over bound for {text:?}"
                );
            }
        }
    }

    #[test]
    fn quantized_labels_agree_on_the_seeded_task() {
        let trainer = fitted(ModelKind::MentalBert, 3);
        let model = trainer.model().unwrap();
        let quant = QuantizedTransformer::from_classifier(model);
        let (texts, _) = tiny_task();
        for text in texts {
            assert_eq!(
                model.predict_text(text),
                quant.predict_text(text),
                "label flipped for {text:?}"
            );
        }
    }

    #[test]
    fn quantization_survives_a_pretrained_model() {
        let (texts, labels) = tiny_task();
        let mut model = crate::config::ModelConfig::for_kind(ModelKind::MentalBert, 6);
        model.hidden_dim = 16;
        model.n_heads = 2;
        model.ff_dim = 32;
        model.max_len = 12;
        model.dropout = 0.0;
        let finetune = FineTuneConfig {
            learning_rate: 3e-3,
            batch_size: 4,
            epochs: 6,
            subword_vocab_size: 300,
            pretrain: Some(PretrainConfig {
                epochs: 1,
                max_sequences: Some(8),
                ..PretrainConfig::in_domain()
            }),
            seed: 5,
            ..FineTuneConfig::default()
        };
        let mut trainer = Trainer::new(ModelKind::MentalBert, model, finetune);
        trainer.fit(&texts, &labels);
        let quant = QuantizedTransformer::from_classifier(trainer.model().unwrap());
        let proba = quant.predict_proba_text(texts[0]);
        assert_eq!(proba.len(), 6);
        assert!(proba.iter().all(|p| p.is_finite()));
        assert!(quant.n_quantized_weights() > 0);
        assert!(quant.name().ends_with("-i8"));
    }
}
