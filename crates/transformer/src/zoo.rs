//! The model zoo: one named recipe per Table IV transformer baseline.
//!
//! A [`FineTuneRecipe`] bundles the architecture configuration and fine-tuning
//! hyper-parameters of one named model. Two profiles are provided:
//!
//! * [`FineTuneRecipe::paper`] keeps the paper's §III-A hyper-parameters verbatim
//!   where they transfer — batch sizes (16 for the BERT family, 8 for Flan-T5 and
//!   XLNet, 4 for GPT-2) and 10 epochs — with the paper's learning rates (1e-3 /
//!   3e-4) used as Adam learning rates for the from-scratch analogues;
//! * [`FineTuneRecipe::fast`] shrinks the architecture and epoch count so the full
//!   Table IV sweep (9 models × k folds) fits in a benchmark run; the relative
//!   ordering of the models is preserved.
//!
//! Pre-initialisation provenance follows the substitution documented in DESIGN.md:
//! the MentalBERT analogue pretrains in-domain, every other analogue pretrains on a
//! domain-degraded copy.

use crate::config::{ModelConfig, ModelKind};
use crate::pretrain::PretrainConfig;
use crate::trainer::{FineTuneConfig, Trainer};
use serde::{Deserialize, Serialize};

/// A named, ready-to-train recipe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FineTuneRecipe {
    /// Which baseline this is.
    pub kind: ModelKind,
    /// Architecture configuration.
    pub model: ModelConfig,
    /// Fine-tuning configuration.
    pub finetune: FineTuneConfig,
}

impl FineTuneRecipe {
    /// The paper-faithful recipe for a model kind.
    ///
    /// Learning rates and batch sizes follow §III-A: BERT/DistilBERT/MentalBERT use
    /// lr 1e-3 and batch 16; Flan-T5 uses lr 3e-4 and batch 8; XLNet uses lr 1e-3 and
    /// batch 8; GPT-2 uses lr 3e-4 and batch 4. All fine-tune for 10 epochs.
    pub fn paper(kind: ModelKind, n_classes: usize, seed: u64) -> Self {
        let model = ModelConfig::for_kind(kind, n_classes);
        let (learning_rate, batch_size) = match kind {
            ModelKind::Bert | ModelKind::DistilBert | ModelKind::MentalBert => (1e-3, 16),
            ModelKind::FlanT5 => (3e-4, 8),
            ModelKind::Xlnet => (1e-3, 8),
            ModelKind::Gpt2 => (3e-4, 4),
        };
        let finetune = FineTuneConfig {
            learning_rate,
            batch_size,
            epochs: 10,
            subword_vocab_size: model.vocab_size,
            pretrain: Some(Self::pretrain_for(kind)),
            seed,
            ..FineTuneConfig::default()
        };
        Self {
            kind,
            model,
            finetune,
        }
    }

    /// A reduced-cost recipe with the same relative structure (used by benches and
    /// integration tests so the full model sweep stays fast).
    pub fn fast(kind: ModelKind, n_classes: usize, seed: u64) -> Self {
        let mut recipe = Self::paper(kind, n_classes, seed);
        recipe.model.hidden_dim = 32;
        recipe.model.n_heads = 2;
        recipe.model.ff_dim = 64;
        recipe.model.max_len = 48;
        recipe.model.n_layers = match kind {
            ModelKind::DistilBert => 1,
            _ => 2,
        };
        recipe.finetune.epochs = 6;
        recipe.finetune.subword_vocab_size = 800;
        recipe.finetune.learning_rate = recipe.finetune.learning_rate.max(1e-3);
        if let Some(pretrain) = &mut recipe.finetune.pretrain {
            pretrain.max_sequences = Some(300);
        }
        recipe
    }

    /// The pre-initialisation provenance for a model kind.
    fn pretrain_for(kind: ModelKind) -> PretrainConfig {
        match kind {
            ModelKind::MentalBert => PretrainConfig::in_domain(),
            _ => PretrainConfig::generic(),
        }
    }

    /// Build a trainer from this recipe.
    pub fn build(&self) -> Trainer {
        Trainer::new(self.kind, self.model.clone(), self.finetune.clone())
    }
}

/// Convenience: a ready-to-train model for a kind, with the paper recipe.
pub fn build_model(kind: ModelKind, n_classes: usize, seed: u64) -> Trainer {
    FineTuneRecipe::paper(kind, n_classes, seed).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_recipes_match_section_3a_hyperparameters() {
        let bert = FineTuneRecipe::paper(ModelKind::Bert, 6, 1);
        assert_eq!(bert.finetune.batch_size, 16);
        assert_eq!(bert.finetune.epochs, 10);
        assert!((bert.finetune.learning_rate - 1e-3).abs() < 1e-12);

        let t5 = FineTuneRecipe::paper(ModelKind::FlanT5, 6, 1);
        assert_eq!(t5.finetune.batch_size, 8);
        assert!((t5.finetune.learning_rate - 3e-4).abs() < 1e-12);

        let xlnet = FineTuneRecipe::paper(ModelKind::Xlnet, 6, 1);
        assert_eq!(xlnet.finetune.batch_size, 8);
        assert!((xlnet.finetune.learning_rate - 1e-3).abs() < 1e-12);

        let gpt2 = FineTuneRecipe::paper(ModelKind::Gpt2, 6, 1);
        assert_eq!(gpt2.finetune.batch_size, 4);
        assert!((gpt2.finetune.learning_rate - 3e-4).abs() < 1e-12);
    }

    #[test]
    fn only_mentalbert_pretrains_in_domain() {
        for kind in ModelKind::ALL {
            let recipe = FineTuneRecipe::paper(kind, 6, 1);
            let pretrain = recipe
                .finetune
                .pretrain
                .expect("all recipes pre-initialise");
            if kind == ModelKind::MentalBert {
                assert!(
                    !pretrain.degrade_domain,
                    "MentalBERT should pretrain in-domain"
                );
            } else {
                assert!(
                    pretrain.degrade_domain,
                    "{kind:?} should pretrain on degraded text"
                );
            }
        }
    }

    #[test]
    fn fast_recipes_are_smaller_but_valid() {
        for kind in ModelKind::ALL {
            let paper = FineTuneRecipe::paper(kind, 6, 1);
            let fast = FineTuneRecipe::fast(kind, 6, 1);
            fast.model.validate();
            assert!(fast.model.hidden_dim <= paper.model.hidden_dim);
            assert!(fast.finetune.epochs < paper.finetune.epochs);
            assert_eq!(fast.kind, kind);
        }
    }

    #[test]
    fn build_produces_an_untrained_trainer() {
        let trainer = build_model(ModelKind::DistilBert, 6, 3);
        assert_eq!(trainer.kind(), ModelKind::DistilBert);
        assert!(trainer.model().is_none());
    }
}
