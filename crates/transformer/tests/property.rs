//! Property-based tests for the transformer fast path: sparse embedding
//! gradients must be bit-identical to the dense scatter across random corpora
//! and seeds, batched inference must match per-text inference bitwise, and
//! quantized i8 probabilities must stay within the documented drift bound for
//! arbitrary inputs.

use std::sync::OnceLock;

use holistix_transformer::{
    FineTuneConfig, ModelConfig, ModelKind, QuantizedTransformer, Trainer, MAX_PROBABILITY_DRIFT,
};
use proptest::prelude::*;

/// A deliberately tiny configuration so a full two-way fit per proptest case
/// stays in the milliseconds range.
fn tiny_config(seed: u64, epochs: usize) -> (ModelConfig, FineTuneConfig) {
    let mut model = ModelConfig::for_kind(ModelKind::MentalBert, 6);
    model.hidden_dim = 8;
    model.n_heads = 2;
    model.ff_dim = 16;
    model.max_len = 10;
    model.dropout = 0.0;
    let finetune = FineTuneConfig {
        learning_rate: 3e-3,
        batch_size: 4,
        epochs,
        subword_vocab_size: 120,
        pretrain: None,
        seed,
        ..FineTuneConfig::default()
    };
    (model, finetune)
}

/// Random lowercase corpora: 6–10 short texts with labels in 0..6. A small
/// alphabet keeps the subword vocabulary dense so embedding rows actually
/// repeat within a batch — the case the sparse fold has to get right.
fn corpus() -> impl Strategy<Value = Vec<(String, usize)>> {
    proptest::collection::vec(("[a-f]{1,5}( [a-f]{1,5}){0,6}", 0usize..6), 6..11)
}

fn fit_both_ways(corpus: &[(String, usize)], seed: u64) -> (Trainer, Trainer, Vec<f64>, Vec<f64>) {
    let texts: Vec<&str> = corpus.iter().map(|(t, _)| t.as_str()).collect();
    let labels: Vec<usize> = corpus.iter().map(|(_, l)| *l).collect();

    let (model_config, finetune) = tiny_config(seed, 3);
    let mut sparse = Trainer::new(ModelKind::MentalBert, model_config, finetune);
    sparse.set_sparse_embedding_grad(true);
    sparse.fit(&texts, &labels);

    let (model_config, finetune) = tiny_config(seed, 3);
    let mut dense = Trainer::new(ModelKind::MentalBert, model_config, finetune);
    dense.set_sparse_embedding_grad(false);
    dense.fit(&texts, &labels);

    let sparse_losses = sparse.summary().unwrap().epoch_losses.clone();
    let dense_losses = dense.summary().unwrap().epoch_losses.clone();
    (sparse, dense, sparse_losses, dense_losses)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fine-tuning with sparse one-row-per-token embedding gradients is
    /// bit-identical to the dense scatter at every step: same per-epoch
    /// losses, same probabilities afterwards, for any corpus and seed.
    #[test]
    fn sparse_and_dense_fit_are_bit_identical(
        corpus in corpus(),
        seed in 0u64..1_000,
    ) {
        let (sparse, dense, sparse_losses, dense_losses) = fit_both_ways(&corpus, seed);
        prop_assert_eq!(sparse_losses, dense_losses);
        for (text, _) in &corpus {
            let a = sparse.predict_proba(text);
            let b = dense.predict_proba(text);
            prop_assert_eq!(a, b);
        }
    }
}

/// One fitted model shared across the inference-side properties below; the
/// fit itself is exercised per-case by `sparse_and_dense_fit_are_bit_identical`.
fn fitted() -> &'static (Trainer, QuantizedTransformer) {
    static FITTED: OnceLock<(Trainer, QuantizedTransformer)> = OnceLock::new();
    FITTED.get_or_init(|| {
        let texts = [
            "my job drains me and the money is gone",
            "work deadlines and my boss are crushing me",
            "i lost my job and cannot pay rent",
            "i feel alone and my friends ignore me",
            "nobody talks to me and i feel invisible",
            "my relationship ended and i am so lonely",
        ];
        let labels = [1, 1, 1, 4, 4, 4];
        let (model_config, finetune) = tiny_config(7, 8);
        let mut trainer = Trainer::new(ModelKind::MentalBert, model_config, finetune);
        trainer.fit(&texts, &labels);
        let quantized = QuantizedTransformer::from_classifier(trainer.model().unwrap());
        (trainer, quantized)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Quantized i8 probabilities are valid distributions and never drift
    /// more than `MAX_PROBABILITY_DRIFT` from the f64 reference, even on
    /// inputs far from the training corpus (including out-of-vocabulary
    /// words the tokenizer shreds into bytes).
    #[test]
    fn quantized_drift_is_bounded_on_random_inputs(
        text in "[a-z]{1,8}( [a-z]{1,8}){0,8}",
    ) {
        let (trainer, quantized) = fitted();
        let reference = trainer.predict_proba(&text);
        let fast = quantized.predict_proba_text(&text);
        prop_assert_eq!(reference.len(), fast.len());
        let sum: f64 = fast.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "probabilities sum to {sum}");
        for (r, q) in reference.iter().zip(&fast) {
            prop_assert!(q.is_finite() && *q >= 0.0);
            prop_assert!(
                (r - q).abs() <= MAX_PROBABILITY_DRIFT,
                "drift {} exceeds bound {} on {:?}",
                (r - q).abs(),
                MAX_PROBABILITY_DRIFT,
                text
            );
        }
    }

    /// Batched prediction is bit-identical to scoring each text alone — the
    /// padded batch must not leak across rows, whatever the batch mix.
    #[test]
    fn batched_prediction_is_bit_identical_for_random_batches(
        texts in proptest::collection::vec("[a-z]{1,8}( [a-z]{1,8}){0,6}", 1..7),
    ) {
        let (trainer, quantized) = fitted();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let batched = trainer.predict_proba_batch(&refs);
        prop_assert_eq!(batched.len(), refs.len());
        for (text, row) in refs.iter().zip(&batched) {
            prop_assert_eq!(&trainer.predict_proba(text), row);
        }
        let q_batched = quantized.predict_proba_texts(&refs);
        for (text, row) in refs.iter().zip(&q_batched) {
            prop_assert_eq!(&quantized.predict_proba_text(text), row);
        }
    }
}
