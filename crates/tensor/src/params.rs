//! Persistent parameter storage.
//!
//! Parameters (embedding tables, attention projections, classifier heads, …) outlive
//! any single forward pass. They are stored here as `(value, grad)` pairs addressed by
//! a [`ParamId`]; graphs create leaf nodes that reference a parameter id, and
//! `Graph::backward` accumulates into the corresponding gradient slot. Optimisers then
//! walk the store and update values in place.

use holistix_linalg::{xavier_uniform, Matrix, Rng64};

/// Identifier of a parameter inside a [`ParamStore`].
pub type ParamId = usize;

/// A named trainable parameter.
#[derive(Debug, Clone)]
struct Param {
    name: String,
    value: Matrix,
    grad: Matrix,
}

/// Storage for all trainable parameters of a model.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter with an explicit initial value.
    pub fn add(&mut self, name: &str, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.params.push(Param {
            name: name.to_string(),
            value,
            grad,
        });
        self.params.len() - 1
    }

    /// Register a Xavier-initialised `rows × cols` parameter.
    pub fn add_xavier(&mut self, name: &str, rows: usize, cols: usize, rng: &mut Rng64) -> ParamId {
        self.add(name, xavier_uniform(rows, cols, rng))
    }

    /// Register a zero-initialised `rows × cols` parameter (biases).
    pub fn add_zeros(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        self.add(name, Matrix::zeros(rows, cols))
    }

    /// Register a constant-filled parameter (e.g. layer-norm gain of 1).
    pub fn add_filled(&mut self, name: &str, rows: usize, cols: usize, value: f64) -> ParamId {
        self.add(name, Matrix::filled(rows, cols, value))
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn n_weights(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// The name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id].name
    }

    /// The current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id].value
    }

    /// Mutable access to a parameter value (used by optimisers and by the
    /// domain-adaptive initialisation in `holistix-transformer`).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id].value
    }

    /// The accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.params[id].grad
    }

    /// Mutable access to a gradient (the graph's backward pass uses this).
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id].grad
    }

    /// Reset every gradient to zero (call between optimisation steps).
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.map_inplace(|_| 0.0);
        }
    }

    /// Iterate over `(id, value, grad)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix, &Matrix)> {
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| (i, &p.value, &p.grad))
    }

    /// Ids of every parameter.
    pub fn ids(&self) -> Vec<ParamId> {
        (0..self.params.len()).collect()
    }

    /// Global L2 norm of all gradients (used for clipping).
    pub fn grad_norm(&self) -> f64 {
        self.params
            .iter()
            .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f64>())
            .sum::<f64>()
            .sqrt()
    }

    /// True if any parameter value or gradient is NaN/inf.
    pub fn has_non_finite(&self) -> bool {
        self.params
            .iter()
            .any(|p| p.value.has_non_finite() || p.grad.has_non_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_access_parameters() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(1);
        let w = store.add_xavier("w", 4, 3, &mut rng);
        let b = store.add_zeros("b", 1, 3);
        assert_eq!(store.len(), 2);
        assert_eq!(store.n_weights(), 15);
        assert_eq!(store.name(w), "w");
        assert_eq!(store.value(b).shape(), (1, 3));
        assert_eq!(store.grad(w).shape(), (4, 3));
    }

    #[test]
    fn zero_grads_resets() {
        let mut store = ParamStore::new();
        let id = store.add_filled("x", 2, 2, 1.0);
        store.grad_mut(id).map_inplace(|_| 3.0);
        assert_eq!(store.grad_norm(), 6.0);
        store.zero_grads();
        assert_eq!(store.grad_norm(), 0.0);
    }

    #[test]
    fn grad_norm_is_global_l2() {
        let mut store = ParamStore::new();
        let a = store.add_zeros("a", 1, 1);
        let b = store.add_zeros("b", 1, 1);
        store.grad_mut(a)[(0, 0)] = 3.0;
        store.grad_mut(b)[(0, 0)] = 4.0;
        assert!((store.grad_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_detection() {
        let mut store = ParamStore::new();
        let id = store.add_zeros("x", 1, 1);
        assert!(!store.has_non_finite());
        store.value_mut(id)[(0, 0)] = f64::INFINITY;
        assert!(store.has_non_finite());
    }
}
