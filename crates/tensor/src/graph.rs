//! Tape-based reverse-mode autograd graph.
//!
//! A [`Graph`] records every operation of one forward pass as a node in an arena.
//! Calling [`Graph::backward`] on a scalar output walks the tape in reverse, applying
//! each op's adjoint rule, and accumulates parameter gradients into the associated
//! [`ParamStore`]. Node handles are plain indices ([`NodeId`]), so graphs are cheap to
//! build and `Send`.
//!
//! The gradient formulas are verified against central finite differences in this
//! module's tests for every op.

use crate::params::{ParamId, ParamStore};
use holistix_linalg::{softmax, CsrBuilder, Matrix};
use std::collections::BTreeMap;

/// Handle to a node in a [`Graph`].
pub type NodeId = usize;

/// The operation that produced a node.
#[derive(Debug, Clone)]
enum Op {
    /// Input constant (no gradient) or parameter leaf (gradient flows to the store).
    Leaf { param: Option<ParamId> },
    /// Matrix product `A · B`.
    Matmul(NodeId, NodeId),
    /// Element-wise sum of same-shape matrices.
    Add(NodeId, NodeId),
    /// Add a `1 × cols` bias row to every row of `A`.
    AddRowBroadcast(NodeId, NodeId),
    /// Element-wise (Hadamard) product.
    Mul(NodeId, NodeId),
    /// Multiply by a scalar constant.
    Scale(NodeId, f64),
    /// Add a constant matrix (no gradient to the constant) — used for attention masks.
    AddConst(NodeId),
    /// Rectified linear unit.
    Relu(NodeId),
    /// GELU activation (tanh approximation).
    Gelu(NodeId),
    /// Hyperbolic tangent.
    Tanh(NodeId),
    /// Row-wise softmax.
    SoftmaxRows(NodeId),
    /// Row-wise layer normalisation with gain and bias (`1 × cols` parameters).
    LayerNorm {
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        eps: f64,
    },
    /// Embedding lookup: select rows of `table` by token id.
    Gather { table: NodeId, indices: Vec<usize> },
    /// Embedding lookup straight from a parameter table: the table is never
    /// materialised as a graph node, and the backward pass folds per-position
    /// row gradients through a sparse (CSR) accumulator before touching the
    /// store — one row per *distinct* token instead of a dense `vocab × hidden`
    /// scratch matrix.
    GatherParam { param: ParamId, indices: Vec<usize> },
    /// Vertical concatenation of same-width nodes (row-block stacking).
    ConcatRows(Vec<NodeId>),
    /// Mean over rows, producing a `1 × cols` matrix.
    MeanRows(NodeId),
    /// Select a single row, producing a `1 × cols` matrix.
    RowSelect(NodeId, usize),
    /// Matrix transpose.
    Transpose(NodeId),
    /// Dropout with a pre-sampled binary mask (already scaled by 1/keep).
    Dropout { x: NodeId, mask: Matrix },
    /// Fused mean softmax-cross-entropy over rows of logits against target classes.
    CrossEntropy { logits: NodeId, targets: Vec<usize> },
    /// Sum of all elements, producing a `1 × 1` matrix.
    Sum(NodeId),
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    grad: Matrix,
    op: Op,
}

/// A single forward pass's computation tape.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// New empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id].value
    }

    /// The gradient of a node (zero until `backward` has run).
    pub fn grad(&self, id: NodeId) -> &Matrix {
        &self.nodes[id].grad
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.nodes.push(Node { value, grad, op });
        self.nodes.len() - 1
    }

    // ----- leaf constructors -------------------------------------------------------

    /// A constant input (no gradient).
    pub fn constant(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf { param: None })
    }

    /// A parameter leaf: the node's value is copied from the store and its gradient is
    /// accumulated back into the store by `backward`.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        self.push(store.value(id).clone(), Op::Leaf { param: Some(id) })
    }

    // ----- ops ---------------------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a].value.matmul(&self.nodes[b].value);
        self.push(value, Op::Matmul(a, b))
    }

    /// Element-wise sum (same shapes).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = &self.nodes[a].value + &self.nodes[b].value;
        self.push(value, Op::Add(a, b))
    }

    /// Add a `1 × cols` bias row to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let bias_row = self.nodes[bias].value.row(0).to_vec();
        let mut value = self.nodes[a].value.clone();
        for r in 0..value.rows() {
            let row = value.row_mut(r);
            for (v, b) in row.iter_mut().zip(&bias_row) {
                *v += b;
            }
        }
        self.push(value, Op::AddRowBroadcast(a, bias))
    }

    /// Element-wise product (same shapes).
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a].value.hadamard(&self.nodes[b].value);
        self.push(value, Op::Mul(a, b))
    }

    /// Scale by a constant.
    pub fn scale(&mut self, a: NodeId, c: f64) -> NodeId {
        let value = self.nodes[a].value.scale(c);
        self.push(value, Op::Scale(a, c))
    }

    /// Add a constant matrix (e.g. an attention mask of 0 / −1e9 values).
    pub fn add_const(&mut self, a: NodeId, constant: &Matrix) -> NodeId {
        let value = &self.nodes[a].value + constant;
        self.push(value, Op::AddConst(a))
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a].value.map(|x| x.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// GELU activation (tanh approximation).
    pub fn gelu(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a].value.map(gelu);
        self.push(value, Op::Gelu(a))
    }

    /// Tanh activation.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a].value.map(f64::tanh);
        self.push(value, Op::Tanh(a))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let m = &self.nodes[a].value;
        let mut value = Matrix::zeros(m.rows(), m.cols());
        for r in 0..m.rows() {
            value.set_row(r, &softmax(m.row(r)));
        }
        self.push(value, Op::SoftmaxRows(a))
    }

    /// Row-wise layer normalisation with learned gain `gamma` and bias `beta`
    /// (both `1 × cols`).
    pub fn layer_norm(&mut self, x: NodeId, gamma: NodeId, beta: NodeId, eps: f64) -> NodeId {
        let xv = &self.nodes[x].value;
        let g = self.nodes[gamma].value.row(0).to_vec();
        let b = self.nodes[beta].value.row(0).to_vec();
        let mut value = Matrix::zeros(xv.rows(), xv.cols());
        for r in 0..xv.rows() {
            let row = xv.row(r);
            let mean = row.iter().sum::<f64>() / row.len() as f64;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / row.len() as f64;
            let std = (var + eps).sqrt();
            let out = value.row_mut(r);
            for j in 0..row.len() {
                out[j] = (row[j] - mean) / std * g[j] + b[j];
            }
        }
        self.push(
            value,
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps,
            },
        )
    }

    /// Embedding lookup: output row `i` is row `indices[i]` of `table`.
    pub fn gather(&mut self, table: NodeId, indices: &[usize]) -> NodeId {
        let t = &self.nodes[table].value;
        let mut value = Matrix::zeros(indices.len(), t.cols());
        for (i, &idx) in indices.iter().enumerate() {
            assert!(
                idx < t.rows(),
                "gather index {idx} out of range ({} rows)",
                t.rows()
            );
            value.set_row(i, t.row(idx));
        }
        self.push(
            value,
            Op::Gather {
                table,
                indices: indices.to_vec(),
            },
        )
    }

    /// Embedding lookup straight from a parameter table: output row `i` is row
    /// `indices[i]` of `store.value(param)`.
    ///
    /// Functionally identical to `gather(param(store, id), indices)` but skips both
    /// the dense table clone on the forward pass and the dense `vocab × hidden`
    /// gradient scratch on the backward pass; see [`Op::GatherParam`]'s backward rule.
    /// Gradients accumulate into the store bit-identically to the dense formulation
    /// (same per-position fold order, see the `gather_param_matches_dense_gather`
    /// test).
    pub fn gather_param(
        &mut self,
        store: &ParamStore,
        param: ParamId,
        indices: &[usize],
    ) -> NodeId {
        let t = store.value(param);
        let mut value = Matrix::zeros(indices.len(), t.cols());
        for (i, &idx) in indices.iter().enumerate() {
            assert!(
                idx < t.rows(),
                "gather_param index {idx} out of range ({} rows)",
                t.rows()
            );
            value.set_row(i, t.row(idx));
        }
        self.push(
            value,
            Op::GatherParam {
                param,
                indices: indices.to_vec(),
            },
        )
    }

    /// Stack nodes vertically (all must share a column count). Row block `p` of the
    /// output is `parts[p]`; the backward pass splits the gradient back into the
    /// corresponding row blocks.
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_rows: empty part list");
        let cols = self.nodes[parts[0]].value.cols();
        let total_rows: usize = parts
            .iter()
            .map(|&p| {
                assert_eq!(
                    self.nodes[p].value.cols(),
                    cols,
                    "concat_rows: column count mismatch"
                );
                self.nodes[p].value.rows()
            })
            .sum();
        let mut value = Matrix::zeros(total_rows, cols);
        let mut offset = 0;
        for &p in parts {
            let part = &self.nodes[p].value;
            for r in 0..part.rows() {
                value.set_row(offset + r, part.row(r));
            }
            offset += part.rows();
        }
        self.push(value, Op::ConcatRows(parts.to_vec()))
    }

    /// Mean over rows (`n × d` → `1 × d`).
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let m = &self.nodes[a].value;
        let mut value = Matrix::zeros(1, m.cols());
        if m.rows() > 0 {
            let means = m.col_means();
            value.set_row(0, &means);
        }
        self.push(value, Op::MeanRows(a))
    }

    /// Select row `row` (`n × d` → `1 × d`).
    pub fn row_select(&mut self, a: NodeId, row: usize) -> NodeId {
        let m = &self.nodes[a].value;
        assert!(row < m.rows(), "row_select {row} out of range");
        let mut value = Matrix::zeros(1, m.cols());
        value.set_row(0, m.row(row));
        self.push(value, Op::RowSelect(a, row))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a].value.transpose();
        self.push(value, Op::Transpose(a))
    }

    /// Dropout with keep probability `keep`, using a pre-sampled uniform matrix
    /// `noise` (same shape as `a`, values in `[0,1)`); scaling by `1/keep` is applied
    /// so evaluation needs no rescaling. Pass `keep = 1.0` to disable.
    pub fn dropout(&mut self, a: NodeId, noise: &Matrix, keep: f64) -> NodeId {
        assert!(
            keep > 0.0 && keep <= 1.0,
            "dropout keep probability must be in (0,1]"
        );
        let shape = self.nodes[a].value.shape();
        assert_eq!(noise.shape(), shape, "dropout noise shape mismatch");
        let mut mask = Matrix::zeros(shape.0, shape.1);
        for (m, &n) in mask.data_mut().iter_mut().zip(noise.data()) {
            *m = if n < keep { 1.0 / keep } else { 0.0 };
        }
        let value = self.nodes[a].value.hadamard(&mask);
        self.push(value, Op::Dropout { x: a, mask })
    }

    /// Mean softmax-cross-entropy loss of `logits` (`n × classes`) against `targets`
    /// (`n` dense class ids). Produces a `1 × 1` node.
    pub fn cross_entropy(&mut self, logits: NodeId, targets: &[usize]) -> NodeId {
        let l = &self.nodes[logits].value;
        assert_eq!(
            l.rows(),
            targets.len(),
            "cross_entropy: row/target count mismatch"
        );
        assert!(!targets.is_empty(), "cross_entropy: empty targets");
        let mut loss = 0.0;
        for (r, &t) in targets.iter().enumerate() {
            assert!(
                t < l.cols(),
                "target {t} out of range for {} classes",
                l.cols()
            );
            let probs = softmax(l.row(r));
            loss -= probs[t].max(1e-15).ln();
        }
        loss /= targets.len() as f64;
        let value = Matrix::from_vec(1, 1, vec![loss]);
        self.push(
            value,
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
            },
        )
    }

    /// Sum of all elements (`n × d` → `1 × 1`). Useful for scalarising test outputs.
    pub fn sum(&mut self, a: NodeId) -> NodeId {
        let value = Matrix::from_vec(1, 1, vec![self.nodes[a].value.sum()]);
        self.push(value, Op::Sum(a))
    }

    /// The scalar value of a `1 × 1` node.
    pub fn scalar(&self, id: NodeId) -> f64 {
        let v = &self.nodes[id].value;
        assert_eq!(v.shape(), (1, 1), "scalar() on a non-scalar node");
        v[(0, 0)]
    }

    // ----- backward ----------------------------------------------------------------

    /// Run reverse-mode differentiation from the scalar node `output`, accumulating
    /// parameter gradients into `store`.
    pub fn backward(&mut self, output: NodeId, store: &mut ParamStore) {
        assert_eq!(
            self.nodes[output].value.shape(),
            (1, 1),
            "backward must start from a scalar (1x1) node"
        );
        self.nodes[output].grad = Matrix::from_vec(1, 1, vec![1.0]);

        for id in (0..=output).rev() {
            let grad = self.nodes[id].grad.clone();
            if grad.data().iter().all(|&g| g == 0.0) {
                continue;
            }
            match self.nodes[id].op.clone() {
                Op::Leaf { param } => {
                    if let Some(pid) = param {
                        store.grad_mut(pid).add_scaled(&grad, 1.0);
                    }
                }
                Op::Matmul(a, b) => {
                    let a_val = self.nodes[a].value.clone();
                    let b_val = self.nodes[b].value.clone();
                    let da = grad.matmul(&b_val.transpose());
                    let db = a_val.transpose().matmul(&grad);
                    self.nodes[a].grad.add_scaled(&da, 1.0);
                    self.nodes[b].grad.add_scaled(&db, 1.0);
                }
                Op::Add(a, b) => {
                    self.nodes[a].grad.add_scaled(&grad, 1.0);
                    self.nodes[b].grad.add_scaled(&grad, 1.0);
                }
                Op::AddRowBroadcast(a, bias) => {
                    self.nodes[a].grad.add_scaled(&grad, 1.0);
                    let col_sums = grad.col_sums();
                    let bias_grad = Matrix::from_vec(1, col_sums.len(), col_sums);
                    self.nodes[bias].grad.add_scaled(&bias_grad, 1.0);
                }
                Op::Mul(a, b) => {
                    let da = grad.hadamard(&self.nodes[b].value);
                    let db = grad.hadamard(&self.nodes[a].value);
                    self.nodes[a].grad.add_scaled(&da, 1.0);
                    self.nodes[b].grad.add_scaled(&db, 1.0);
                }
                Op::Scale(a, c) => {
                    self.nodes[a].grad.add_scaled(&grad, c);
                }
                Op::AddConst(a) => {
                    self.nodes[a].grad.add_scaled(&grad, 1.0);
                }
                Op::Relu(a) => {
                    let mut da = grad.clone();
                    for (g, &x) in da.data_mut().iter_mut().zip(self.nodes[a].value.data()) {
                        if x <= 0.0 {
                            *g = 0.0;
                        }
                    }
                    self.nodes[a].grad.add_scaled(&da, 1.0);
                }
                Op::Gelu(a) => {
                    let mut da = grad.clone();
                    for (g, &x) in da.data_mut().iter_mut().zip(self.nodes[a].value.data()) {
                        *g *= gelu_derivative(x);
                    }
                    self.nodes[a].grad.add_scaled(&da, 1.0);
                }
                Op::Tanh(a) => {
                    let mut da = grad.clone();
                    for (g, &y) in da.data_mut().iter_mut().zip(self.nodes[id].value.data()) {
                        *g *= 1.0 - y * y;
                    }
                    self.nodes[a].grad.add_scaled(&da, 1.0);
                }
                Op::SoftmaxRows(a) => {
                    let y = self.nodes[id].value.clone();
                    let mut da = Matrix::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let yr = y.row(r);
                        let gr = grad.row(r);
                        let dot: f64 = yr.iter().zip(gr).map(|(yi, gi)| yi * gi).sum();
                        let out = da.row_mut(r);
                        for j in 0..yr.len() {
                            out[j] = yr[j] * (gr[j] - dot);
                        }
                    }
                    self.nodes[a].grad.add_scaled(&da, 1.0);
                }
                Op::LayerNorm {
                    x,
                    gamma,
                    beta,
                    eps,
                } => {
                    let xv = self.nodes[x].value.clone();
                    let g = self.nodes[gamma].value.row(0).to_vec();
                    let d = xv.cols() as f64;
                    let mut dx = Matrix::zeros(xv.rows(), xv.cols());
                    let mut dgamma = vec![0.0; xv.cols()];
                    let mut dbeta = vec![0.0; xv.cols()];
                    for r in 0..xv.rows() {
                        let row = xv.row(r);
                        let mean = row.iter().sum::<f64>() / d;
                        let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / d;
                        let std = (var + eps).sqrt();
                        let xhat: Vec<f64> = row.iter().map(|v| (v - mean) / std).collect();
                        let gr = grad.row(r);
                        // Accumulate parameter gradients.
                        for j in 0..row.len() {
                            dgamma[j] += gr[j] * xhat[j];
                            dbeta[j] += gr[j];
                        }
                        // dL/dxhat
                        let dxhat: Vec<f64> = (0..row.len()).map(|j| gr[j] * g[j]).collect();
                        let mean_dxhat = dxhat.iter().sum::<f64>() / d;
                        let mean_dxhat_xhat =
                            dxhat.iter().zip(&xhat).map(|(a, b)| a * b).sum::<f64>() / d;
                        let out = dx.row_mut(r);
                        for j in 0..row.len() {
                            out[j] = (dxhat[j] - mean_dxhat - xhat[j] * mean_dxhat_xhat) / std;
                        }
                    }
                    self.nodes[x].grad.add_scaled(&dx, 1.0);
                    let dgamma = Matrix::from_vec(1, dgamma.len(), dgamma);
                    let dbeta = Matrix::from_vec(1, dbeta.len(), dbeta);
                    self.nodes[gamma].grad.add_scaled(&dgamma, 1.0);
                    self.nodes[beta].grad.add_scaled(&dbeta, 1.0);
                }
                Op::Gather { table, indices } => {
                    let cols = grad.cols();
                    let mut dtable = Matrix::zeros(self.nodes[table].value.rows(), cols);
                    for (i, &idx) in indices.iter().enumerate() {
                        let src = grad.row(i).to_vec();
                        let dst = dtable.row_mut(idx);
                        for (d, s) in dst.iter_mut().zip(&src) {
                            *d += s;
                        }
                    }
                    self.nodes[table].grad.add_scaled(&dtable, 1.0);
                }
                Op::GatherParam { param, indices } => {
                    // Fold repeated tokens first (in increasing position order, matching
                    // the dense `Gather` scatter), round the folded rows through a CSR
                    // matrix, then apply each distinct row to the store exactly once.
                    let cols = grad.cols();
                    let mut folded: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
                    for (i, &idx) in indices.iter().enumerate() {
                        let src = grad.row(i);
                        let dst = folded.entry(idx).or_insert_with(|| vec![0.0; cols]);
                        for (d, s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    let mut builder = CsrBuilder::new(cols);
                    let mut rows = Vec::with_capacity(folded.len());
                    let mut scratch: Vec<(usize, f64)> = Vec::new();
                    for (row, values) in &folded {
                        scratch.clear();
                        scratch.extend(values.iter().copied().enumerate());
                        builder.push_row(&mut scratch);
                        rows.push(*row);
                    }
                    let sparse = builder.finish();
                    let table = store.grad_mut(param);
                    for (i, &row) in rows.iter().enumerate() {
                        let dst = table.row_mut(row);
                        for (c, v) in sparse.row_entries(i) {
                            dst[c] += v;
                        }
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut offset = 0;
                    for &p in &parts {
                        let rows = self.nodes[p].value.rows();
                        let cols = grad.cols();
                        let mut dp = Matrix::zeros(rows, cols);
                        for r in 0..rows {
                            dp.set_row(r, grad.row(offset + r));
                        }
                        self.nodes[p].grad.add_scaled(&dp, 1.0);
                        offset += rows;
                    }
                }
                Op::MeanRows(a) => {
                    let rows = self.nodes[a].value.rows().max(1) as f64;
                    let mut da = Matrix::zeros(self.nodes[a].value.rows(), grad.cols());
                    let g_row = grad.row(0).to_vec();
                    for r in 0..da.rows() {
                        let out = da.row_mut(r);
                        for (o, g) in out.iter_mut().zip(&g_row) {
                            *o = g / rows;
                        }
                    }
                    self.nodes[a].grad.add_scaled(&da, 1.0);
                }
                Op::RowSelect(a, row) => {
                    let mut da = Matrix::zeros(self.nodes[a].value.rows(), grad.cols());
                    da.set_row(row, grad.row(0));
                    self.nodes[a].grad.add_scaled(&da, 1.0);
                }
                Op::Transpose(a) => {
                    let da = grad.transpose();
                    self.nodes[a].grad.add_scaled(&da, 1.0);
                }
                Op::Dropout { x, mask } => {
                    let da = grad.hadamard(&mask);
                    self.nodes[x].grad.add_scaled(&da, 1.0);
                }
                Op::CrossEntropy { logits, targets } => {
                    let l = self.nodes[logits].value.clone();
                    let upstream = grad[(0, 0)];
                    let n = targets.len() as f64;
                    let mut dl = Matrix::zeros(l.rows(), l.cols());
                    for (r, &t) in targets.iter().enumerate() {
                        let probs = softmax(l.row(r));
                        let out = dl.row_mut(r);
                        for (j, p) in probs.iter().enumerate() {
                            let indicator = if j == t { 1.0 } else { 0.0 };
                            out[j] = upstream * (p - indicator) / n;
                        }
                    }
                    self.nodes[logits].grad.add_scaled(&dl, 1.0);
                }
                Op::Sum(a) => {
                    let upstream = grad[(0, 0)];
                    let shape = self.nodes[a].value.shape();
                    let da = Matrix::filled(shape.0, shape.1, upstream);
                    self.nodes[a].grad.add_scaled(&da, 1.0);
                }
            }
        }
    }
}

fn gelu(x: f64) -> f64 {
    0.5 * x * (1.0 + ((2.0 / std::f64::consts::PI).sqrt() * (x + 0.044715 * x.powi(3))).tanh())
}

fn gelu_derivative(x: f64) -> f64 {
    let c = (2.0 / std::f64::consts::PI).sqrt();
    let inner = c * (x + 0.044715 * x.powi(3));
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * c * (1.0 + 3.0 * 0.044715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistix_linalg::Rng64;

    /// Numerically check d(loss)/d(param) for a scalar-producing forward function.
    fn finite_difference_check<F>(
        store: &mut ParamStore,
        param: ParamId,
        forward: F,
        tolerance: f64,
    ) where
        F: Fn(&mut Graph, &ParamStore) -> NodeId,
    {
        // Analytic gradient.
        store.zero_grads();
        let mut graph = Graph::new();
        let out = forward(&mut graph, store);
        graph.backward(out, store);
        let analytic = store.grad(param).clone();

        // Numeric gradient, element by element.
        let eps = 1e-5;
        let (rows, cols) = store.value(param).shape();
        for r in 0..rows {
            for c in 0..cols {
                let original = store.value(param)[(r, c)];
                store.value_mut(param)[(r, c)] = original + eps;
                let mut g_plus = Graph::new();
                let out_plus = forward(&mut g_plus, store);
                let f_plus = g_plus.scalar(out_plus);
                store.value_mut(param)[(r, c)] = original - eps;
                let mut g_minus = Graph::new();
                let out_minus = forward(&mut g_minus, store);
                let f_minus = g_minus.scalar(out_minus);
                store.value_mut(param)[(r, c)] = original;
                let numeric = (f_plus - f_minus) / (2.0 * eps);
                let diff = (analytic[(r, c)] - numeric).abs();
                let scale = analytic[(r, c)].abs().max(numeric.abs()).max(1.0);
                assert!(
                    diff / scale < tolerance,
                    "gradient mismatch at ({r},{c}): analytic {} vs numeric {}",
                    analytic[(r, c)],
                    numeric
                );
            }
        }
    }

    fn random_param(
        store: &mut ParamStore,
        name: &str,
        rows: usize,
        cols: usize,
        seed: u64,
    ) -> ParamId {
        let mut rng = Rng64::new(seed);
        let mut m = Matrix::zeros(rows, cols);
        for v in m.data_mut() {
            *v = rng.uniform(-1.0, 1.0);
        }
        store.add(name, m)
    }

    #[test]
    fn forward_values_match_manual_computation() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let mut g = Graph::new();
        let x = g.constant(Matrix::from_rows(&[vec![1.0, 1.0]]));
        let wp = g.param(&store, w);
        let y = g.matmul(x, wp);
        assert_eq!(g.value(y).row(0), &[4.0, 6.0]);
        let s = g.sum(y);
        assert_eq!(g.scalar(s), 10.0);
    }

    #[test]
    fn matmul_gradient_matches_finite_differences() {
        let mut store = ParamStore::new();
        let w = random_param(&mut store, "w", 3, 4, 1);
        let x_data = {
            let mut rng = Rng64::new(2);
            let mut m = Matrix::zeros(2, 3);
            for v in m.data_mut() {
                *v = rng.uniform(-1.0, 1.0);
            }
            m
        };
        finite_difference_check(
            &mut store,
            w,
            |g, s| {
                let x = g.constant(x_data.clone());
                let wp = g.param(s, w);
                let y = g.matmul(x, wp);
                g.sum(y)
            },
            1e-5,
        );
    }

    #[test]
    fn activation_gradients_match_finite_differences() {
        for activation in ["relu", "gelu", "tanh"] {
            let mut store = ParamStore::new();
            let w = random_param(&mut store, "w", 2, 3, 7);
            finite_difference_check(
                &mut store,
                w,
                |g, s| {
                    let wp = g.param(s, w);
                    let y = match activation {
                        "relu" => g.relu(wp),
                        "gelu" => g.gelu(wp),
                        _ => g.tanh(wp),
                    };
                    // Square via hadamard to make the loss non-linear in the activation.
                    let y2 = g.mul(y, y);
                    g.sum(y2)
                },
                1e-4,
            );
        }
    }

    #[test]
    fn softmax_and_cross_entropy_gradients_match() {
        let mut store = ParamStore::new();
        let w = random_param(&mut store, "logits", 4, 3, 11);
        finite_difference_check(
            &mut store,
            w,
            |g, s| {
                let wp = g.param(s, w);
                g.cross_entropy(wp, &[0, 2, 1, 2])
            },
            1e-5,
        );
        // Softmax rows used standalone.
        let mut store2 = ParamStore::new();
        let w2 = random_param(&mut store2, "x", 2, 4, 13);
        finite_difference_check(
            &mut store2,
            w2,
            |g, s| {
                let wp = g.param(s, w2);
                let sm = g.softmax_rows(wp);
                let sq = g.mul(sm, sm);
                g.sum(sq)
            },
            1e-4,
        );
    }

    #[test]
    fn layer_norm_gradients_match() {
        let mut store = ParamStore::new();
        let x = random_param(&mut store, "x", 3, 5, 17);
        let gamma = store.add_filled("gamma", 1, 5, 1.0);
        let beta = store.add_zeros("beta", 1, 5);
        for target in [x, gamma, beta] {
            finite_difference_check(
                &mut store,
                target,
                |g, s| {
                    let xp = g.param(s, x);
                    let gp = g.param(s, gamma);
                    let bp = g.param(s, beta);
                    let y = g.layer_norm(xp, gp, bp, 1e-5);
                    let y2 = g.mul(y, y);
                    g.sum(y2)
                },
                1e-4,
            );
        }
    }

    #[test]
    fn gather_and_pooling_gradients_match() {
        let mut store = ParamStore::new();
        let table = random_param(&mut store, "emb", 6, 4, 19);
        finite_difference_check(
            &mut store,
            table,
            |g, s| {
                let t = g.param(s, table);
                let seq = g.gather(t, &[1, 3, 1, 5]);
                let pooled = g.mean_rows(seq);
                let sq = g.mul(pooled, pooled);
                g.sum(sq)
            },
            1e-5,
        );
    }

    #[test]
    fn broadcast_bias_and_row_select_gradients_match() {
        let mut store = ParamStore::new();
        let bias = random_param(&mut store, "b", 1, 4, 23);
        let x_data = {
            let mut rng = Rng64::new(29);
            let mut m = Matrix::zeros(3, 4);
            for v in m.data_mut() {
                *v = rng.uniform(-1.0, 1.0);
            }
            m
        };
        finite_difference_check(
            &mut store,
            bias,
            |g, s| {
                let x = g.constant(x_data.clone());
                let b = g.param(s, bias);
                let y = g.add_row_broadcast(x, b);
                let first = g.row_select(y, 1);
                let sq = g.mul(first, first);
                g.sum(sq)
            },
            1e-5,
        );
    }

    #[test]
    fn attention_like_composition_gradient_matches() {
        // A miniature attention block: softmax(Q K^T / sqrt(d)) V with shared weights,
        // exercising matmul, transpose, scale and softmax together.
        let mut store = ParamStore::new();
        let wq = random_param(&mut store, "wq", 4, 4, 31);
        let wk = random_param(&mut store, "wk", 4, 4, 37);
        let wv = random_param(&mut store, "wv", 4, 4, 41);
        let x_data = {
            let mut rng = Rng64::new(43);
            let mut m = Matrix::zeros(3, 4);
            for v in m.data_mut() {
                *v = rng.uniform(-1.0, 1.0);
            }
            m
        };
        for target in [wq, wk, wv] {
            finite_difference_check(
                &mut store,
                target,
                |g, s| {
                    let x = g.constant(x_data.clone());
                    let q = {
                        let w = g.param(s, wq);
                        g.matmul(x, w)
                    };
                    let k = {
                        let w = g.param(s, wk);
                        g.matmul(x, w)
                    };
                    let v = {
                        let w = g.param(s, wv);
                        g.matmul(x, w)
                    };
                    let kt = g.transpose(k);
                    let scores = g.matmul(q, kt);
                    let scaled = g.scale(scores, 0.5);
                    let attn = g.softmax_rows(scaled);
                    let out = g.matmul(attn, v);
                    let sq = g.mul(out, out);
                    g.sum(sq)
                },
                1e-4,
            );
        }
    }

    #[test]
    fn dropout_mask_scales_and_blocks_gradient() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::filled(1, 4, 2.0));
        let mut g = Graph::new();
        let wp = g.param(&store, w);
        // Noise chosen so elements 0,1 are kept (<0.5) and 2,3 dropped.
        let noise = Matrix::from_vec(1, 4, vec![0.1, 0.2, 0.9, 0.8]);
        let y = g.dropout(wp, &noise, 0.5);
        assert_eq!(g.value(y).row(0), &[4.0, 4.0, 0.0, 0.0]);
        let s = g.sum(y);
        g.backward(s, &mut store);
        assert_eq!(store.grad(w).row(0), &[2.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::filled(1, 2, 1.0));
        for _ in 0..2 {
            let mut g = Graph::new();
            let wp = g.param(&store, w);
            let s = g.sum(wp);
            g.backward(s, &mut store);
        }
        assert_eq!(store.grad(w).row(0), &[2.0, 2.0]);
        store.zero_grads();
        assert_eq!(store.grad(w).row(0), &[0.0, 0.0]);
    }

    #[test]
    fn constants_receive_no_parameter_gradient() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::filled(1, 2, 1.0));
        let mut g = Graph::new();
        let c = g.constant(Matrix::filled(1, 2, 5.0));
        let wp = g.param(&store, w);
        let y = g.mul(c, wp);
        let s = g.sum(y);
        g.backward(s, &mut store);
        assert_eq!(store.grad(w).row(0), &[5.0, 5.0]);
        assert_eq!(store.len(), 1);
    }

    #[test]
    #[should_panic(expected = "must start from a scalar")]
    fn backward_from_non_scalar_panics() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::filled(2, 2, 1.0));
        let mut g = Graph::new();
        let wp = g.param(&store, w);
        g.backward(wp, &mut store);
    }

    #[test]
    #[should_panic(expected = "gather index")]
    fn gather_out_of_range_panics() {
        let mut store = ParamStore::new();
        let t = store.add("t", Matrix::zeros(3, 2));
        let mut g = Graph::new();
        let tp = g.param(&store, t);
        let _ = g.gather(tp, &[5]);
    }

    #[test]
    fn gather_param_gradient_matches_finite_differences() {
        let mut store = ParamStore::new();
        let table = random_param(&mut store, "emb", 6, 4, 47);
        finite_difference_check(
            &mut store,
            table,
            |g, s| {
                // Repeated indices exercise the fold-before-apply path.
                let seq = g.gather_param(s, table, &[1, 3, 1, 5, 3]);
                let pooled = g.mean_rows(seq);
                let sq = g.mul(pooled, pooled);
                g.sum(sq)
            },
            1e-5,
        );
    }

    #[test]
    fn concat_rows_gradient_matches_finite_differences() {
        let mut store = ParamStore::new();
        let a = random_param(&mut store, "a", 2, 3, 53);
        let b = random_param(&mut store, "b", 3, 3, 59);
        for target in [a, b] {
            finite_difference_check(
                &mut store,
                target,
                |g, s| {
                    let ap = g.param(s, a);
                    let bp = g.param(s, b);
                    let stacked = g.concat_rows(&[ap, bp]);
                    let sq = g.mul(stacked, stacked);
                    g.sum(sq)
                },
                1e-5,
            );
        }
    }

    #[test]
    fn concat_rows_stacks_values_in_order() {
        let mut g = Graph::new();
        let a = g.constant(Matrix::from_rows(&[vec![1.0, 2.0]]));
        let b = g.constant(Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]));
        let stacked = g.concat_rows(&[a, b]);
        assert_eq!(g.value(stacked).shape(), (3, 2));
        assert_eq!(g.value(stacked).row(0), &[1.0, 2.0]);
        assert_eq!(g.value(stacked).row(1), &[3.0, 4.0]);
        assert_eq!(g.value(stacked).row(2), &[5.0, 6.0]);
    }

    #[test]
    fn gather_param_matches_dense_gather_bitwise() {
        // The sparse path must leave the store with *bit-identical* gradients to the
        // dense `param` + `gather` formulation, including across multiple sequences
        // in one graph and repeated token ids within a sequence.
        let sequences: [&[usize]; 3] = [&[1, 3, 1, 5], &[0, 0, 2], &[5, 4, 3, 2, 1]];
        let run = |sparse: bool| -> (Vec<Matrix>, Vec<f64>) {
            let mut store = ParamStore::new();
            let table = random_param(&mut store, "emb", 6, 4, 61);
            let proj = random_param(&mut store, "proj", 4, 2, 67);
            let mut g = Graph::new();
            let mut total: Option<NodeId> = None;
            for seq in sequences {
                let emb = if sparse {
                    g.gather_param(&store, table, seq)
                } else {
                    let t = g.param(&store, table);
                    g.gather(t, seq)
                };
                let p = g.param(&store, proj);
                let h = g.matmul(emb, p);
                let act = g.gelu(h);
                let pooled = g.mean_rows(act);
                let sq = g.mul(pooled, pooled);
                let s = g.sum(sq);
                total = Some(match total {
                    None => s,
                    Some(acc) => g.add(acc, s),
                });
            }
            let loss = total.unwrap();
            g.backward(loss, &mut store);
            let grads = vec![store.grad(table).clone(), store.grad(proj).clone()];
            (grads, vec![g.scalar(loss)])
        };
        let (dense_grads, dense_loss) = run(false);
        let (sparse_grads, sparse_loss) = run(true);
        assert_eq!(dense_loss, sparse_loss);
        for (d, s) in dense_grads.iter().zip(&sparse_grads) {
            assert_eq!(d.data(), s.data(), "store gradients must be bit-identical");
        }
    }

    #[test]
    fn gather_param_skips_untouched_rows() {
        // Rows never gathered must keep an exactly-zero gradient.
        let mut store = ParamStore::new();
        let table = random_param(&mut store, "emb", 8, 3, 71);
        let mut g = Graph::new();
        let seq = g.gather_param(&store, table, &[2, 2, 6]);
        let s = g.sum(seq);
        g.backward(s, &mut store);
        let grad = store.grad(table);
        for r in [0, 1, 3, 4, 5, 7] {
            assert!(grad.row(r).iter().all(|&v| v == 0.0), "row {r} touched");
        }
        assert_eq!(grad.row(2), &[2.0, 2.0, 2.0]);
        assert_eq!(grad.row(6), &[1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "gather_param index")]
    fn gather_param_out_of_range_panics() {
        let mut store = ParamStore::new();
        let t = store.add("t", Matrix::zeros(3, 2));
        let mut g = Graph::new();
        let _ = g.gather_param(&store, t, &[5]);
    }
}
