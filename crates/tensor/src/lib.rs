//! # holistix-tensor
//!
//! A small reverse-mode automatic-differentiation engine.
//!
//! The paper fine-tunes six transformer models. Since no pretrained checkpoints or GPU
//! frameworks are available in this reproduction, `holistix-transformer` trains small
//! transformer classifiers from scratch — and that needs gradients. This crate provides
//! them with a tape-based autograd design chosen deliberately over an `Rc<RefCell>`
//! graph:
//!
//! * a [`Graph`](graph::Graph) is an arena of nodes created during the forward pass;
//!   node handles are plain `usize` indices, so the whole engine is `Send` and the
//!   cross-validation driver can train folds on parallel threads;
//! * trainable parameters live in a [`ParamStore`](params::ParamStore) that persists
//!   across forward passes; leaf nodes reference parameters by id and `backward`
//!   accumulates gradients straight into the store;
//! * [`optim`] implements SGD and Adam with gradient clipping.
//!
//! The op set is exactly what a small encoder/decoder transformer classifier needs:
//! matmul, broadcast bias add, elementwise arithmetic, ReLU/GELU/tanh, row softmax
//! (optionally masked), layer normalisation, embedding gather, mean pooling, row
//! selection, dropout and a fused softmax-cross-entropy loss.
//!
//! Everything operates on the dense [`Matrix`](holistix_linalg::Matrix) type from
//! `holistix-linalg`; sequences are `seq_len × hidden` matrices and batching is done by
//! accumulating gradients over sequences, which keeps shapes two-dimensional and the
//! engine easy to verify (see the finite-difference tests in `graph::tests`).

pub mod graph;
pub mod optim;
pub mod params;

pub use graph::{Graph, NodeId};
pub use optim::{clip_gradients, Adam, AdamConfig, Optimizer, Sgd};
pub use params::{ParamId, ParamStore};
