//! Optimisers: SGD and Adam, plus global-norm gradient clipping.
//!
//! The paper's fine-tuning recipes specify per-model learning rates (1e-3 for the BERT
//! family and XLNet, 3e-4 for Flan-T5 and GPT-2). The transformer trainer uses Adam
//! with those learning rates; SGD exists for the ablation benches and for the simpler
//! masked-LM pre-initialisation stage.

use crate::params::ParamStore;
use holistix_linalg::Matrix;

/// An optimiser updates every parameter in a [`ParamStore`] from its accumulated
/// gradient, then the caller zeroes the gradients.
pub trait Optimizer {
    /// Apply one update step using the gradients currently in the store.
    fn step(&mut self, store: &mut ParamStore);

    /// The current learning rate.
    fn learning_rate(&self) -> f64;

    /// Override the learning rate (used by warmup/decay schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// New SGD optimiser.
    pub fn new(lr: f64, momentum: f64) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        if self.velocity.len() != store.len() {
            self.velocity = store
                .ids()
                .iter()
                .map(|&id| {
                    let (r, c) = store.value(id).shape();
                    Matrix::zeros(r, c)
                })
                .collect();
        }
        for id in store.ids() {
            let grad = store.grad(id).clone();
            if self.momentum > 0.0 {
                let v = &mut self.velocity[id];
                v.map_inplace(|x| x * self.momentum);
                v.add_scaled(&grad, 1.0);
                let update = self.velocity[id].clone();
                store.value_mut(id).add_scaled(&update, -self.lr);
            } else {
                store.value_mut(id).add_scaled(&grad, -self.lr);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adam configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical stability constant.
    pub eps: f64,
    /// Decoupled weight decay (AdamW-style); 0 disables it.
    pub weight_decay: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// The Adam optimiser (with optional decoupled weight decay).
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    step: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// New Adam optimiser.
    pub fn new(config: AdamConfig) -> Self {
        Self {
            config,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// New Adam with the given learning rate and default moments.
    pub fn with_lr(lr: f64) -> Self {
        Self::new(AdamConfig {
            lr,
            ..AdamConfig::default()
        })
    }

    /// Number of steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        if self.m.len() != store.len() {
            let zeros = |store: &ParamStore| {
                store
                    .ids()
                    .iter()
                    .map(|&id| {
                        let (r, c) = store.value(id).shape();
                        Matrix::zeros(r, c)
                    })
                    .collect::<Vec<_>>()
            };
            self.m = zeros(store);
            self.v = zeros(store);
        }
        self.step += 1;
        let t = self.step as f64;
        let c = &self.config;
        let bias1 = 1.0 - c.beta1.powf(t);
        let bias2 = 1.0 - c.beta2.powf(t);
        for id in store.ids() {
            let grad = store.grad(id).clone();
            let m = &mut self.m[id];
            let v = &mut self.v[id];
            for ((mi, vi), &gi) in m.data_mut().iter_mut().zip(v.data_mut()).zip(grad.data()) {
                *mi = c.beta1 * *mi + (1.0 - c.beta1) * gi;
                *vi = c.beta2 * *vi + (1.0 - c.beta2) * gi * gi;
            }
            let value = store.value_mut(id);
            for ((val, &mi), &vi) in value.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let m_hat = mi / bias1;
                let v_hat = vi / bias2;
                let mut update = m_hat / (v_hat.sqrt() + c.eps);
                if c.weight_decay > 0.0 {
                    update += c.weight_decay * *val;
                }
                *val -= c.lr * update;
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.config.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.config.lr = lr;
    }
}

/// Scale all gradients so their global L2 norm does not exceed `max_norm`.
/// Returns the pre-clipping norm.
pub fn clip_gradients(store: &mut ParamStore, max_norm: f64) -> f64 {
    let norm = store.grad_norm();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for id in store.ids() {
            store.grad_mut(id).map_inplace(|g| g * scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimise f(w) = sum((w - target)^2) and check convergence.
    fn quadratic_convergence(optimizer: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::filled(1, 3, 5.0));
        let target = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        for _ in 0..steps {
            store.zero_grads();
            let mut g = Graph::new();
            let wp = g.param(&store, w);
            let t = g.constant(target.scale(-1.0));
            let diff = g.add(wp, t);
            let sq = g.mul(diff, diff);
            let loss = g.sum(sq);
            g.backward(loss, &mut store);
            optimizer.step(&mut store);
        }
        let final_w = store.value(w);
        (final_w - &target).frobenius_norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1, 0.0);
        assert!(quadratic_convergence(&mut sgd, 100) < 1e-3);
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut sgd = Sgd::new(0.02, 0.9);
        assert!(quadratic_convergence(&mut sgd, 300) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::with_lr(0.2);
        assert!(quadratic_convergence(&mut adam, 200) < 1e-2);
        assert_eq!(adam.steps_taken(), 200);
    }

    #[test]
    fn adam_weight_decay_shrinks_weights() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::filled(1, 2, 1.0));
        let mut adam = Adam::new(AdamConfig {
            lr: 0.1,
            weight_decay: 0.5,
            ..AdamConfig::default()
        });
        // Zero gradient: only the decay term acts.
        store.zero_grads();
        adam.step(&mut store);
        assert!(store.value(w)[(0, 0)] < 1.0);
    }

    #[test]
    fn clipping_bounds_global_norm() {
        let mut store = ParamStore::new();
        let a = store.add_zeros("a", 1, 1);
        let b = store.add_zeros("b", 1, 1);
        store.grad_mut(a)[(0, 0)] = 30.0;
        store.grad_mut(b)[(0, 0)] = 40.0;
        let pre = clip_gradients(&mut store, 5.0);
        assert!((pre - 50.0).abs() < 1e-12);
        assert!((store.grad_norm() - 5.0).abs() < 1e-9);
        // Clipping below the threshold is a no-op.
        let pre2 = clip_gradients(&mut store, 100.0);
        assert!((pre2 - 5.0).abs() < 1e-9);
        assert!((store.grad_norm() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn learning_rate_can_be_scheduled() {
        let mut adam = Adam::with_lr(1e-3);
        adam.set_learning_rate(5e-4);
        assert_eq!(adam.learning_rate(), 5e-4);
        let mut sgd = Sgd::new(0.1, 0.0);
        sgd.set_learning_rate(0.01);
        assert_eq!(sgd.learning_rate(), 0.01);
    }
}
