//! Seeded random number generation and weight initialisation.
//!
//! Every stochastic component in the reproduction — corpus generation, fold shuffling,
//! SGD mini-batch order, transformer weight init, LIME perturbation sampling — takes an
//! explicit seed so experiments are exactly repeatable. [`Rng64`] is a small
//! xoshiro256++ generator: fast, no dependencies beyond `rand`'s traits are needed, and
//! its state is four `u64`s so it can be cheaply forked per-component.

use crate::matrix::Matrix;

/// A seeded xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Create a generator from a seed. Two generators with the same seed produce the
    /// same sequence on every platform.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Fork a child generator whose stream is independent of (but determined by) this
    /// generator's current state and the supplied `stream` label.
    pub fn fork(&self, stream: u64) -> Self {
        Self::new(self.s[0] ^ self.s[2].rotate_left(17) ^ stream.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng64::below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-15);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Bernoulli draw with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Sample an index from an (unnormalised, non-negative) weight vector.
    /// Panics if all weights are zero or the vector is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && !weights.is_empty(),
            "weighted_index requires positive total weight"
        );
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        if xs.len() < 2 {
            return;
        }
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Choose `k` distinct indices from `0..n` (k capped at n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx
    }
}

/// Xavier/Glorot uniform initialisation of a `rows × cols` weight matrix.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut Rng64) -> Matrix {
    let bound = (6.0 / (rows + cols).max(1) as f64).sqrt();
    let mut m = Matrix::zeros(rows, cols);
    for v in m.data_mut() {
        *v = rng.uniform(-bound, bound);
    }
    m
}

/// Normal(0, std) initialisation of a `rows × cols` weight matrix.
pub fn normal_init(rows: usize, cols: usize, std: f64, rng: &mut Rng64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.data_mut() {
        *v = rng.normal_with(0.0, std);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_deterministic_and_distinct() {
        let base = Rng64::new(7);
        let mut f1 = base.fork(1);
        let mut f1b = base.fork(1);
        let mut f2 = base.fork(2);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Rng64::new(3);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
            let i = rng.below(7);
            assert!(i < 7);
        }
    }

    #[test]
    fn normal_mean_and_std_are_plausible() {
        let mut rng = Rng64::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng64::new(5);
        let weights = [0.0, 0.0, 1.0];
        for _ in 0..100 {
            assert_eq!(rng.weighted_index(&weights), 2);
        }
        // Roughly proportional sampling
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!(ratio > 2.4 && ratio < 3.6, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::new(9);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = Rng64::new(13);
        let sample = rng.sample_indices(20, 5);
        assert_eq!(sample.len(), 5);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = Rng64::new(17);
        let m = xavier_uniform(16, 16, &mut rng);
        let bound = (6.0 / 32.0_f64).sqrt();
        assert!(m.data().iter().all(|&x| x.abs() <= bound));
        assert!(m.data().iter().any(|&x| x != 0.0));
    }
}
