//! # holistix-linalg
//!
//! Dense linear-algebra substrate for the Holistix reproduction.
//!
//! Both layers of the modelling stack need basic dense math:
//!
//! * the classical baselines (`holistix-ml`) use [`Matrix`]/[`Vector`] for TF-IDF
//!   design matrices, logistic-regression gradients and SVM subgradients;
//! * the autograd engine (`holistix-tensor`) stores every tensor as a [`Matrix`]
//!   and delegates its matmuls, transposes and reductions here.
//!
//! The implementation is deliberately BLAS-free (no external dependencies) but not
//! naive: the matmul is blocked and iterates in row-major-friendly order, and the
//! reductions avoid bounds checks in the hot loops by using slice iterators. For the
//! problem sizes in the paper (≤ ~1.5 k documents, vocabularies of a few thousand
//! terms, transformer hidden sizes of 32–128) this is more than fast enough.
//!
//! For the TF-IDF design matrices — which are >99% zeros at realistic vocabulary
//! sizes — the [`sparse`] module provides a CSR representation ([`CsrMatrix`]) and
//! the [`FeatureMatrix`] dense/sparse abstraction the classical-ML stack scores
//! against; see its module docs for the exact-arithmetic equivalence contract.

pub mod matrix;
pub mod ops;
pub mod random;
pub mod sparse;
pub mod stats;
pub mod vector;

pub use matrix::Matrix;
pub use ops::{log_softmax_rows, logsumexp, relu, sigmoid, softmax, softmax_rows, tanh_vec};
pub use random::{xavier_uniform, Rng64};
pub use sparse::{CsrBuilder, CsrMatrix, FeatureMatrix, FeatureRows};
pub use stats::{argmax, mean, stddev, variance};
pub use vector::Vector;
