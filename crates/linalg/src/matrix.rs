//! Row-major dense matrix of `f64`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// Indexing is `(row, col)`. All arithmetic methods panic on shape mismatch — shape
/// errors in this codebase are always programming errors, not data errors, so the
/// panics carry descriptive messages rather than being surfaced as `Result`s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Build from nested row slices. Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "Matrix::from_rows: row {i} has length {} but expected {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A view of row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "col index {c} out of bounds ({} cols)",
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Set row `r` from a slice.
    pub fn set_row(&mut self, r: usize, values: &[f64]) {
        assert_eq!(values.len(), self.cols, "set_row: length mismatch");
        self.row_mut(r).copy_from_slice(values);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self · other`. Panics if inner dimensions differ.
    ///
    /// Uses an i-k-j loop order so the innermost loop walks both operands
    /// contiguously; on the sizes used in this repo this is within a small factor of
    /// a tuned BLAS and keeps the crate dependency-free.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (j, &b_kj) in b_row.iter().enumerate() {
                    out_row[j] += a_ik * b_kj;
                }
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace<F: Fn(f64) -> f64>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise (Hadamard) product. Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Scale every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Per-row sums (length = rows).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|r| self.row(r).iter().sum()).collect()
    }

    /// Per-column sums (length = cols).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                out[c] += v;
            }
        }
        out
    }

    /// Per-column means.
    pub fn col_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        self.col_sums()
            .into_iter()
            .map(|s| s / self.rows as f64)
            .collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Add `other` scaled by `alpha` into `self` (axpy).
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f64) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Extract the sub-matrix consisting of the given rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.set_row(i, self.row(r));
        }
        out
    }

    /// Stack matrices vertically. Panics if column counts differ.
    pub fn vstack(blocks: &[&Matrix]) -> Matrix {
        if blocks.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = blocks[0].cols;
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            assert_eq!(b.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&b.data);
        }
        Matrix { rows, cols, data }
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.add_scaled(rhs, 1.0);
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row: Vec<String> = self
                .row(r)
                .iter()
                .take(8)
                .map(|v| format!("{v:8.4}"))
                .collect();
            writeln!(
                f,
                "  [{}{}]",
                row.join(", "),
                if self.cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.sum(), 0.0);
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn row_and_col_access() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
        assert_eq!(a.row_sums(), vec![3.0, 7.0]);
        assert_eq!(a.col_sums(), vec![4.0, 6.0]);
        assert_eq!(a.col_means(), vec![2.0, 3.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!((&a + &b).data(), &[4.0, 2.0]);
        assert_eq!((&a - &b).data(), &[-2.0, -6.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, -8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
        assert_eq!(a.map(f64::abs).data(), &[1.0, 2.0]);
    }

    #[test]
    fn add_scaled_axpy() {
        let mut a = Matrix::zeros(1, 2);
        let g = Matrix::from_rows(&[vec![2.0, 4.0]]);
        a.add_scaled(&g, -0.5);
        assert_eq!(a.data(), &[-1.0, -2.0]);
    }

    #[test]
    fn select_rows_and_vstack() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let sel = a.select_rows(&[2, 0]);
        assert_eq!(sel.row(0), &[3.0, 3.0]);
        assert_eq!(sel.row(1), &[1.0, 1.0]);
        let stacked = Matrix::vstack(&[&sel, &a]);
        assert_eq!(stacked.rows(), 5);
        assert_eq!(stacked.row(4), &[3.0, 3.0]);
    }

    #[test]
    fn frobenius_norm_matches() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(1, 2);
        assert!(!a.has_non_finite());
        a[(0, 1)] = f64::NAN;
        assert!(a.has_non_finite());
    }

    #[test]
    fn empty_matrix_is_safe() {
        let a = Matrix::zeros(0, 0);
        assert!(a.is_empty());
        assert_eq!(a.sum(), 0.0);
        assert_eq!(Matrix::from_rows(&[]).shape(), (0, 0));
    }
}
