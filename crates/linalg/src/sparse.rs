//! Compressed sparse row (CSR) matrices and the [`FeatureMatrix`] abstraction.
//!
//! TF-IDF design matrices are overwhelmingly sparse: a realistic vocabulary has
//! thousands of terms while a forum post touches a few dozen, so the dense
//! `documents × vocabulary` grid the baselines used to materialise is >99% zeros
//! and was the dominant memory and time cost of the Table IV/V reproductions.
//! This module provides:
//!
//! * [`CsrMatrix`] — the standard three-array CSR layout (`indptr`, `indices`,
//!   `values`) with row iteration, sparse·dense and sparse·vector products, L2
//!   row normalisation, and dense round-trips;
//! * [`CsrBuilder`] — incremental row-by-row construction, the shape vectorisers
//!   produce naturally (one document at a time, never allocating the dense grid);
//! * [`FeatureMatrix`] — a `Dense`/`Sparse` enum so callers choose representation
//!   per workload while classifiers accept either;
//! * [`FeatureRows`] — the minimal row-access trait ([`row_dot`], per-row entry
//!   iteration) classifiers are generic over, implemented for [`Matrix`],
//!   [`CsrMatrix`] and [`FeatureMatrix`].
//!
//! Numerical contract: within a row, CSR stores entries in strictly increasing
//! column order, so dot products and norms accumulate in exactly the order the
//! dense code does. Since adding an explicit `0.0` term is an exact identity in
//! IEEE-754 addition, linear operations over a CSR matrix are **bit-identical**
//! to the same operations over its dense counterpart — the property tests assert
//! exact equality, not approximate.
//!
//! [`row_dot`]: FeatureRows::row_dot

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A sparse `f64` matrix in compressed sparse row form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `indptr[r]..indptr[r + 1]` spans row `r` in `indices`/`values`.
    indptr: Vec<usize>,
    /// Column index of each stored entry; strictly increasing within a row.
    indices: Vec<usize>,
    /// Value of each stored entry.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// An all-zero sparse matrix (no stored entries).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from raw CSR arrays. Panics if the arrays are inconsistent
    /// (wrong `indptr` length, non-monotone `indptr`, out-of-range or
    /// non-increasing column indices).
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr must have rows + 1 entries");
        assert_eq!(indptr[0], 0, "indptr must start at 0");
        assert_eq!(
            indices.len(),
            values.len(),
            "indices/values length mismatch"
        );
        assert_eq!(
            *indptr.last().unwrap_or(&0),
            indices.len(),
            "indptr end must equal nnz"
        );
        for r in 0..rows {
            assert!(indptr[r] <= indptr[r + 1], "indptr must be non-decreasing");
            let row = &indices[indptr[r]..indptr[r + 1]];
            for pair in row.windows(2) {
                assert!(
                    pair[0] < pair[1],
                    "columns must be strictly increasing within a row"
                );
            }
            if let Some(&last) = row.last() {
                assert!(
                    last < cols,
                    "column index {last} out of bounds ({cols} cols)"
                );
            }
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Convert a dense matrix, storing only the non-zero entries.
    pub fn from_dense(dense: &Matrix) -> Self {
        let mut builder = CsrBuilder::new(dense.cols());
        let mut scratch = Vec::new();
        for r in 0..dense.rows() {
            scratch.clear();
            for (c, &v) in dense.row(r).iter().enumerate() {
                if v != 0.0 {
                    scratch.push((c, v));
                }
            }
            builder.push_row(&mut scratch);
        }
        builder.finish()
    }

    /// Materialise as a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let row = out.row_mut(r);
            for (&c, &v) in self.row_indices(r).iter().zip(self.row_values(r)) {
                row[c] = v;
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of explicitly stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of the dense grid that is stored (`0.0` for an empty shape).
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Column indices of row `r`'s stored entries.
    pub fn row_indices(&self, r: usize) -> &[usize] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &self.indices[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Values of row `r`'s stored entries.
    pub fn row_values(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &self.values[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Iterate row `r` as `(column, value)` pairs in increasing column order.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.row_indices(r)
            .iter()
            .copied()
            .zip(self.row_values(r).iter().copied())
    }

    /// Split-borrow row `r` as `(columns, mutable values)`.
    pub fn row_mut(&mut self, r: usize) -> (&[usize], &mut [f64]) {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        let span = self.indptr[r]..self.indptr[r + 1];
        (&self.indices[span.clone()], &mut self.values[span])
    }

    /// Dot product of row `r` with a dense vector of length `cols`.
    pub fn row_dot(&self, r: usize, dense: &[f64]) -> f64 {
        assert_eq!(dense.len(), self.cols, "row_dot length mismatch");
        self.row_entries(r).map(|(c, v)| v * dense[c]).sum()
    }

    /// Sparse·vector product: `self · v`, one dot product per row.
    pub fn mul_vector(&self, v: &[f64]) -> Vec<f64> {
        (0..self.rows).map(|r| self.row_dot(r, v)).collect()
    }

    /// Sparse·dense product `self · other` (`n×k · k×m → n×m` dense).
    ///
    /// Walks each sparse row once, accumulating scaled rows of `other` — the
    /// same k-major order as `Matrix::matmul`, skipping the zero blocks.
    pub fn matmul_dense(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            other.rows(),
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows,
            self.cols,
            other.rows(),
            other.cols()
        );
        let m = other.cols();
        let mut out = Matrix::zeros(self.rows, m);
        for r in 0..self.rows {
            let out_row = out.row_mut(r);
            for (k, v) in self.row_entries(r) {
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += v * b;
                }
            }
        }
        out
    }

    /// L2-normalise every row in place (rows with zero norm are left untouched).
    pub fn l2_normalize_rows(&mut self) {
        for r in 0..self.rows {
            let (_, values) = self.row_mut(r);
            let norm: f64 = values.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                for v in values.iter_mut() {
                    *v /= norm;
                }
            }
        }
    }

    /// Extract the sub-matrix of the given rows, in order.
    pub fn select_rows(&self, rows: &[usize]) -> CsrMatrix {
        let mut builder = CsrBuilder::new(self.cols);
        let mut scratch = Vec::new();
        for &r in rows {
            scratch.clear();
            scratch.extend(self.row_entries(r));
            builder.push_row(&mut scratch);
        }
        builder.finish()
    }

    /// True if any stored value is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.values.iter().any(|v| !v.is_finite())
    }

    /// Stack blocks vertically (all must share a column count). Row `r` of the
    /// result is exactly the corresponding block row, entry for entry — this is
    /// how the sharded vectoriser fit concatenates per-shard matrices back into
    /// document order. Panics on a column-count mismatch or an empty block list.
    pub fn vstack(blocks: &[CsrMatrix]) -> CsrMatrix {
        assert!(!blocks.is_empty(), "vstack needs at least one block");
        let cols = blocks[0].cols;
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0);
        let mut offset = 0usize;
        for block in blocks {
            assert_eq!(
                block.cols, cols,
                "vstack column mismatch: {} vs {cols}",
                block.cols
            );
            indptr.extend(block.indptr[1..].iter().map(|&p| p + offset));
            indices.extend_from_slice(&block.indices);
            values.extend_from_slice(&block.values);
            offset += block.nnz();
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }
}

/// Incremental row-by-row CSR construction.
///
/// Vectorisers produce one document row at a time; the builder sorts and merges
/// each row's `(column, value)` entries (duplicates are summed, zeros dropped)
/// and appends it, so a corpus is vectorised straight into CSR form without ever
/// touching a dense grid.
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrBuilder {
    /// A builder for matrices with `cols` columns and no rows yet.
    pub fn new(cols: usize) -> Self {
        Self {
            cols,
            indptr: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows pushed so far.
    pub fn rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Append one row. `entries` is sorted in place by column; duplicate columns
    /// are summed and exact zeros dropped. Panics on out-of-range columns.
    pub fn push_row(&mut self, entries: &mut [(usize, f64)]) {
        entries.sort_unstable_by_key(|&(c, _)| c);
        let mut last_col = usize::MAX;
        for &(c, v) in entries.iter() {
            assert!(
                c < self.cols,
                "column index {c} out of bounds ({} cols)",
                self.cols
            );
            if c == last_col {
                *self.values.last_mut().unwrap() += v;
                continue;
            }
            self.indices.push(c);
            self.values.push(v);
            last_col = c;
        }
        // Compact away exact zeros (explicitly pushed or merged-to-zero) so nnz
        // reflects true non-zeros.
        let row_start = self.indptr[self.rows()];
        let mut write = row_start;
        for read in row_start..self.values.len() {
            if self.values[read] != 0.0 {
                self.indices[write] = self.indices[read];
                self.values[write] = self.values[read];
                write += 1;
            }
        }
        self.indices.truncate(write);
        self.values.truncate(write);
        self.indptr.push(self.indices.len());
    }

    /// Freeze into a [`CsrMatrix`].
    pub fn finish(self) -> CsrMatrix {
        CsrMatrix {
            rows: self.indptr.len() - 1,
            cols: self.cols,
            indptr: self.indptr,
            indices: self.indices,
            values: self.values,
        }
    }
}

/// A design matrix in whichever representation suits the workload.
///
/// Classical training on small dense problems stays `Dense`; TF-IDF feature
/// extraction and batched inference use `Sparse`. Classifiers accept either via
/// [`FeatureRows`], so the choice is made once, where the data is produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeatureMatrix {
    /// Row-major dense storage.
    Dense(Matrix),
    /// Compressed sparse row storage.
    Sparse(CsrMatrix),
}

impl FeatureMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            FeatureMatrix::Dense(m) => m.rows(),
            FeatureMatrix::Sparse(m) => m.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            FeatureMatrix::Dense(m) => m.cols(),
            FeatureMatrix::Sparse(m) => m.cols(),
        }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// Materialise as dense (clones when already dense).
    pub fn to_dense(&self) -> Matrix {
        match self {
            FeatureMatrix::Dense(m) => m.clone(),
            FeatureMatrix::Sparse(m) => m.to_dense(),
        }
    }

    /// The sparse payload, if this is the sparse variant.
    pub fn as_sparse(&self) -> Option<&CsrMatrix> {
        match self {
            FeatureMatrix::Sparse(m) => Some(m),
            FeatureMatrix::Dense(_) => None,
        }
    }
}

impl From<Matrix> for FeatureMatrix {
    fn from(m: Matrix) -> Self {
        FeatureMatrix::Dense(m)
    }
}

impl From<CsrMatrix> for FeatureMatrix {
    fn from(m: CsrMatrix) -> Self {
        FeatureMatrix::Sparse(m)
    }
}

/// Row-wise access classifiers are generic over: a dot product against a dense
/// weight vector and iteration over a row's (potentially implicit) non-zeros.
///
/// Implementations must visit entries in increasing column order so floating
/// point accumulation order is representation-independent (see module docs).
pub trait FeatureRows {
    /// Number of example rows.
    fn n_rows(&self) -> usize;

    /// Number of feature columns.
    fn n_cols(&self) -> usize;

    /// Dot product of row `r` with `weights` (length `n_cols`).
    fn row_dot(&self, r: usize, weights: &[f64]) -> f64;

    /// Visit the non-zero entries of row `r` as `(column, value)`, in increasing
    /// column order. Dense implementations skip zeros — exact arithmetic
    /// identity for every linear update in this codebase.
    fn for_each_row_entry<F: FnMut(usize, f64)>(&self, r: usize, f: F);
}

impl FeatureRows for Matrix {
    fn n_rows(&self) -> usize {
        self.rows()
    }

    fn n_cols(&self) -> usize {
        self.cols()
    }

    fn row_dot(&self, r: usize, weights: &[f64]) -> f64 {
        self.row(r).iter().zip(weights).map(|(x, w)| w * x).sum()
    }

    fn for_each_row_entry<F: FnMut(usize, f64)>(&self, r: usize, mut f: F) {
        for (c, &v) in self.row(r).iter().enumerate() {
            if v != 0.0 {
                f(c, v);
            }
        }
    }
}

impl FeatureRows for CsrMatrix {
    fn n_rows(&self) -> usize {
        self.rows()
    }

    fn n_cols(&self) -> usize {
        self.cols()
    }

    fn row_dot(&self, r: usize, weights: &[f64]) -> f64 {
        CsrMatrix::row_dot(self, r, weights)
    }

    fn for_each_row_entry<F: FnMut(usize, f64)>(&self, r: usize, mut f: F) {
        for (c, v) in self.row_entries(r) {
            f(c, v);
        }
    }
}

impl FeatureRows for FeatureMatrix {
    fn n_rows(&self) -> usize {
        self.rows()
    }

    fn n_cols(&self) -> usize {
        self.cols()
    }

    fn row_dot(&self, r: usize, weights: &[f64]) -> f64 {
        match self {
            FeatureMatrix::Dense(m) => m.row_dot(r, weights),
            FeatureMatrix::Sparse(m) => CsrMatrix::row_dot(m, r, weights),
        }
    }

    fn for_each_row_entry<F: FnMut(usize, f64)>(&self, r: usize, f: F) {
        match self {
            FeatureMatrix::Dense(m) => m.for_each_row_entry(r, f),
            FeatureMatrix::Sparse(m) => m.for_each_row_entry(r, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 0.0, 2.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0, -4.0],
        ])
    }

    #[test]
    fn dense_round_trip() {
        let dense = sample_dense();
        let sparse = CsrMatrix::from_dense(&dense);
        assert_eq!(sparse.shape(), (3, 4));
        assert_eq!(sparse.nnz(), 4);
        assert_eq!(sparse.to_dense(), dense);
    }

    #[test]
    fn vstack_concatenates_rows_in_block_order() {
        let dense = sample_dense();
        let whole = CsrMatrix::from_dense(&dense);
        // Split into [rows 0..2] + [row 2] + an empty block; vstack restores it.
        let top = whole.select_rows(&[0, 1]);
        let bottom = whole.select_rows(&[2]);
        let empty = CsrMatrix::zeros(0, 4);
        let stacked = CsrMatrix::vstack(&[top, empty, bottom]);
        assert_eq!(stacked, whole);
        assert_eq!(stacked.to_dense(), dense);
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn vstack_rejects_mismatched_columns() {
        let _ = CsrMatrix::vstack(&[CsrMatrix::zeros(1, 3), CsrMatrix::zeros(1, 4)]);
    }

    #[test]
    fn builder_sorts_merges_and_drops_zeros() {
        let mut builder = CsrBuilder::new(5);
        builder.push_row(&mut [(3, 1.0), (1, 2.0), (3, 1.5), (0, 0.0)]);
        builder.push_row(&mut []);
        let m = builder.finish();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row_indices(0), &[1, 3]);
        assert_eq!(m.row_values(0), &[2.0, 2.5]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row_indices(1), &[] as &[usize]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn builder_rejects_out_of_range_columns() {
        let mut builder = CsrBuilder::new(2);
        builder.push_row(&mut [(2, 1.0)]);
    }

    #[test]
    fn row_dot_matches_dense() {
        let dense = sample_dense();
        let sparse = CsrMatrix::from_dense(&dense);
        let w = [0.5, -1.0, 2.0, 0.25];
        for r in 0..dense.rows() {
            assert_eq!(sparse.row_dot(r, &w), FeatureRows::row_dot(&dense, r, &w));
        }
        assert_eq!(sparse.mul_vector(&w), vec![4.5, 0.0, -4.0]);
    }

    #[test]
    fn matmul_dense_matches_dense_matmul() {
        let a = sample_dense();
        let sparse = CsrMatrix::from_dense(&a);
        let b = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![0.5, -1.0],
            vec![3.0, 0.0],
            vec![0.0, 1.0],
        ]);
        assert_eq!(sparse.matmul_dense(&b), a.matmul(&b));
    }

    #[test]
    fn l2_normalisation_matches_dense_semantics() {
        let mut sparse = CsrMatrix::from_dense(&sample_dense());
        sparse.l2_normalize_rows();
        for r in 0..sparse.rows() {
            let norm: f64 = sparse
                .row_values(r)
                .iter()
                .map(|v| v * v)
                .sum::<f64>()
                .sqrt();
            assert!(
                norm == 0.0 || (norm - 1.0).abs() < 1e-12,
                "row {r} norm {norm}"
            );
        }
    }

    #[test]
    fn select_rows_reorders() {
        let sparse = CsrMatrix::from_dense(&sample_dense());
        let sel = sparse.select_rows(&[2, 0]);
        assert_eq!(sel.to_dense(), sample_dense().select_rows(&[2, 0]));
    }

    #[test]
    fn feature_matrix_dispatches_both_variants() {
        let dense = sample_dense();
        let fm_dense = FeatureMatrix::from(dense.clone());
        let fm_sparse = FeatureMatrix::from(CsrMatrix::from_dense(&dense));
        assert_eq!(fm_dense.shape(), fm_sparse.shape());
        assert_eq!(fm_dense.to_dense(), fm_sparse.to_dense());
        assert!(fm_sparse.as_sparse().is_some());
        assert!(fm_dense.as_sparse().is_none());
        let w = [1.0, 1.0, 1.0, 1.0];
        for r in 0..3 {
            assert_eq!(fm_dense.row_dot(r, &w), fm_sparse.row_dot(r, &w));
            let mut dense_entries = Vec::new();
            let mut sparse_entries = Vec::new();
            fm_dense.for_each_row_entry(r, |c, v| dense_entries.push((c, v)));
            fm_sparse.for_each_row_entry(r, |c, v| sparse_entries.push((c, v)));
            assert_eq!(dense_entries, sparse_entries);
        }
    }

    #[test]
    fn density_and_non_finite_checks() {
        let mut sparse = CsrMatrix::from_dense(&sample_dense());
        assert!((sparse.density() - 4.0 / 12.0).abs() < 1e-12);
        assert!(!sparse.has_non_finite());
        let (_, values) = sparse.row_mut(0);
        values[0] = f64::NAN;
        assert!(sparse.has_non_finite());
        assert_eq!(CsrMatrix::zeros(0, 0).density(), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_raw_validates_column_order() {
        let _ = CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "indptr must start at 0")]
    fn from_raw_rejects_orphaned_leading_entries() {
        // indptr starting past 0 would leave indices[0] unreachable by any row
        // while still counting towards nnz.
        let _ = CsrMatrix::from_raw(1, 3, vec![1, 2], vec![999, 1], vec![5.0, 1.0]);
    }
}
