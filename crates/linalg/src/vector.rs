//! Dense vector helpers.
//!
//! [`Vector`] is a thin newtype over `Vec<f64>` giving the handful of operations the
//! classifiers need (dot products, norms, axpy) without pulling in a full array
//! library. It intentionally converts to/from `Vec<f64>` freely.

use serde::{Deserialize, Serialize};
use std::ops::{Deref, DerefMut, Index, IndexMut};

/// A dense `f64` vector.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector(pub Vec<f64>);

impl Vector {
    /// Vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Self(vec![0.0; n])
    }

    /// Vector filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Self(vec![value; n])
    }

    /// Build from a `Vec<f64>`.
    pub fn from_vec(v: Vec<f64>) -> Self {
        Self(v)
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Dot product. Panics on length mismatch.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot: length mismatch {} vs {}",
            self.len(),
            other.len()
        );
        self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum()
    }

    /// Dot product against a plain slice.
    pub fn dot_slice(&self, other: &[f64]) -> f64 {
        assert_eq!(self.len(), other.len(), "dot_slice: length mismatch");
        self.0.iter().zip(other).map(|(a, b)| a * b).sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.0.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// L1 norm.
    pub fn norm_l1(&self) -> f64 {
        self.0.iter().map(|x| x.abs()).sum()
    }

    /// Sum of elements.
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Mean of elements (0 for an empty vector).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f64
        }
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) {
        assert_eq!(self.len(), other.len(), "axpy: length mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += alpha * b;
        }
    }

    /// In-place scale.
    pub fn scale_inplace(&mut self, s: f64) {
        for x in &mut self.0 {
            *x *= s;
        }
    }

    /// Scaled copy.
    pub fn scaled(&self, s: f64) -> Vector {
        Vector(self.0.iter().map(|x| x * s).collect())
    }

    /// Normalise to unit L2 norm (no-op on the zero vector).
    pub fn normalized(&self) -> Vector {
        let n = self.norm();
        if n == 0.0 {
            self.clone()
        } else {
            self.scaled(1.0 / n)
        }
    }

    /// Cosine similarity with another vector (0 if either is the zero vector).
    pub fn cosine(&self, other: &Vector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Index of the maximum element (first on ties); `None` if empty.
    pub fn argmax(&self) -> Option<usize> {
        crate::stats::argmax(&self.0)
    }

    /// Underlying data.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }
}

impl Deref for Vector {
    type Target = Vec<f64>;
    fn deref(&self) -> &Vec<f64> {
        &self.0
    }
}

impl DerefMut for Vector {
    fn deref_mut(&mut self) -> &mut Vec<f64> {
        &mut self.0
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Self(v)
    }
}

impl From<Vector> for Vec<f64> {
    fn from(v: Vector) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let a = Vector::from_vec(vec![3.0, 4.0]);
        let b = Vector::from_vec(vec![1.0, 2.0]);
        assert_eq!(a.dot(&b), 11.0);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.norm_l1(), 7.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Vector::zeros(3);
        let g = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        a.axpy(-2.0, &g);
        assert_eq!(a.as_slice(), &[-2.0, -4.0, -6.0]);
    }

    #[test]
    fn cosine_similarity() {
        let a = Vector::from_vec(vec![1.0, 0.0]);
        let b = Vector::from_vec(vec![0.0, 1.0]);
        let c = Vector::from_vec(vec![2.0, 0.0]);
        assert!((a.cosine(&b)).abs() < 1e-12);
        assert!((a.cosine(&c) - 1.0).abs() < 1e-12);
        assert_eq!(a.cosine(&Vector::zeros(2)), 0.0);
    }

    #[test]
    fn normalization() {
        let a = Vector::from_vec(vec![3.0, 4.0]).normalized();
        assert!((a.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vector::zeros(2).normalized(), Vector::zeros(2));
    }

    #[test]
    fn argmax_and_mean() {
        let a = Vector::from_vec(vec![0.1, 0.7, 0.2]);
        assert_eq!(a.argmax(), Some(1));
        assert!((a.mean() - (1.0 / 3.0)).abs() < 1e-9);
        assert_eq!(Vector::zeros(0).argmax(), None);
        assert_eq!(Vector::zeros(0).mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = Vector::zeros(2).dot(&Vector::zeros(3));
    }
}
