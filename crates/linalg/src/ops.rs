//! Numerically careful element-wise and reduction operations.
//!
//! Softmax / log-sum-exp appear in three places — multinomial logistic regression,
//! the transformer attention weights, and the cross-entropy loss — so they live here
//! once, implemented with max-subtraction to stay finite for large logits.

use crate::matrix::Matrix;

/// Numerically stable log-sum-exp of a slice. Returns `-inf` for an empty slice.
pub fn logsumexp(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NEG_INFINITY;
    }
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    let sum: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + sum.ln()
}

/// Numerically stable softmax of a slice. Returns an empty vector for empty input.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        // All inputs are -inf (or NaN): no finite maximum, fall back to uniform.
        return vec![1.0 / xs.len() as f64; xs.len()];
    }
    let exps: Vec<f64> = xs.iter().map(|&x| (x - m).exp()).collect();
    let sum: f64 = exps.iter().sum();
    if sum == 0.0 {
        // All inputs were -inf; fall back to uniform.
        return vec![1.0 / xs.len() as f64; xs.len()];
    }
    exps.into_iter().map(|e| e / sum).collect()
}

/// Row-wise softmax of a matrix.
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        out.set_row(r, &softmax(m.row(r)));
    }
    out
}

/// Row-wise log-softmax of a matrix.
pub fn log_softmax_rows(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        let lse = logsumexp(m.row(r));
        let row: Vec<f64> = m.row(r).iter().map(|&x| x - lse).collect();
        out.set_row(r, &row);
    }
    out
}

/// Logistic sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Rectified linear unit.
pub fn relu(x: f64) -> f64 {
    x.max(0.0)
}

/// Element-wise tanh of a slice.
pub fn tanh_vec(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|&x| x.tanh()).collect()
}

/// GELU activation (tanh approximation), used by the transformer feed-forward blocks.
pub fn gelu(x: f64) -> f64 {
    0.5 * x * (1.0 + ((2.0 / std::f64::consts::PI).sqrt() * (x + 0.044715 * x.powi(3))).tanh())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_preserves_order() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn softmax_handles_extreme_values() {
        let s = softmax(&[-1e9, 0.0, 1e9]);
        assert!(s.iter().all(|x| x.is_finite()));
        assert!((s[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn softmax_empty_and_all_neg_inf() {
        assert!(softmax(&[]).is_empty());
        let s = softmax(&[f64::NEG_INFINITY, f64::NEG_INFINITY]);
        assert!((s[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn logsumexp_matches_naive_for_small_values() {
        let xs: [f64; 3] = [0.5, -0.2, 1.3];
        let naive = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((logsumexp(&xs) - naive).abs() < 1e-12);
        assert_eq!(logsumexp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn sigmoid_symmetry_and_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(5.0) + sigmoid(-5.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0) >= 0.0);
    }

    #[test]
    fn row_softmax_rows_sum_to_one() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.0, 0.0, 0.0]]);
        let s = softmax_rows(&m);
        for r in 0..s.rows() {
            assert!((s.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let m = Matrix::from_rows(&[vec![0.3, -1.2, 2.0]]);
        let ls = log_softmax_rows(&m);
        let s = softmax_rows(&m);
        for c in 0..3 {
            assert!((ls[(0, c)] - s[(0, c)].ln()).abs() < 1e-9);
        }
    }

    #[test]
    fn relu_and_gelu_basic() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(3.0), 3.0);
        assert!(gelu(0.0).abs() < 1e-12);
        assert!(gelu(3.0) > 2.9);
        assert!(gelu(-3.0).abs() < 0.01);
    }
}
