//! Scalar statistics over slices.
//!
//! Small helpers shared by the metric code (per-fold averaging in Table IV), the
//! Gaussian Naive Bayes estimator (per-class feature means/variances) and the
//! dataset-statistics module (Table II).

/// Index of the maximum element (first on ties); `None` if empty or all-NaN.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element (first on ties); `None` if empty or all-NaN.
pub fn argmin(xs: &[f64]) -> Option<usize> {
    argmax(&xs.iter().map(|x| -x).collect::<Vec<_>>())
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0.0 for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median of a slice (average of the two central values for even lengths);
/// 0.0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Pearson correlation of two equal-length slices; 0.0 when undefined.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic_and_ties() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), Some(1));
        assert_eq!(argmax(&[1.0, 1.0]), Some(0));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN, 2.0]), Some(1));
        assert_eq!(argmin(&[3.0, -1.0, 2.0]), Some(1));
    }

    #[test]
    fn mean_variance_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn pearson_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0, 5.0]), 0.0);
    }
}
