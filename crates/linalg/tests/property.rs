//! Property-based tests for the linear-algebra substrate.

use holistix_linalg::{argmax, logsumexp, softmax, Matrix, Rng64, Vector};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e3f64..1e3, len)
}

proptest! {
    /// Softmax output is a probability distribution preserving the argmax.
    #[test]
    fn softmax_is_a_distribution(xs in finite_vec(1..32)) {
        let s = softmax(&xs);
        prop_assert_eq!(s.len(), xs.len());
        prop_assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
        prop_assert_eq!(argmax(&s), argmax(&xs));
    }

    /// log-sum-exp is always at least the max and at most max + ln(n).
    #[test]
    fn logsumexp_bounds(xs in finite_vec(1..32)) {
        let lse = logsumexp(&xs);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lse >= max - 1e-9);
        prop_assert!(lse <= max + (xs.len() as f64).ln() + 1e-9);
    }

    /// Transpose is an involution and preserves the Frobenius norm.
    #[test]
    fn transpose_involution(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let mut rng = Rng64::new(seed);
        let mut m = Matrix::zeros(rows, cols);
        for v in m.data_mut() { *v = rng.uniform(-10.0, 10.0); }
        let t = m.transpose();
        prop_assert_eq!(t.shape(), (cols, rows));
        prop_assert_eq!(t.transpose(), m.clone());
        prop_assert!((t.frobenius_norm() - m.frobenius_norm()).abs() < 1e-9);
    }

    /// Multiplying by the identity changes nothing; matmul shapes compose.
    #[test]
    fn matmul_identity_and_shapes(rows in 1usize..6, inner in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let mut rng = Rng64::new(seed);
        let mut a = Matrix::zeros(rows, inner);
        let mut b = Matrix::zeros(inner, cols);
        for v in a.data_mut() { *v = rng.uniform(-5.0, 5.0); }
        for v in b.data_mut() { *v = rng.uniform(-5.0, 5.0); }
        let c = a.matmul(&b);
        prop_assert_eq!(c.shape(), (rows, cols));
        prop_assert_eq!(a.matmul(&Matrix::identity(inner)), a.clone());
        // (A B)^T = B^T A^T
        let lhs = c.transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!((&lhs - &rhs).frobenius_norm() < 1e-9);
    }

    /// Row sums and column sums both add up to the total sum.
    #[test]
    fn row_and_col_sums_agree(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let mut rng = Rng64::new(seed);
        let mut m = Matrix::zeros(rows, cols);
        for v in m.data_mut() { *v = rng.uniform(-10.0, 10.0); }
        let total = m.sum();
        prop_assert!((m.row_sums().iter().sum::<f64>() - total).abs() < 1e-9);
        prop_assert!((m.col_sums().iter().sum::<f64>() - total).abs() < 1e-9);
    }

    /// Cosine similarity is symmetric and bounded in [-1, 1].
    #[test]
    fn cosine_symmetric_and_bounded(a in finite_vec(1..16), seed in 0u64..1000) {
        let mut rng = Rng64::new(seed);
        let b: Vec<f64> = (0..a.len()).map(|_| rng.uniform(-100.0, 100.0)).collect();
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        let ab = va.cosine(&vb);
        let ba = vb.cosine(&va);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ab));
    }

    /// The seeded RNG produces identical streams for identical seeds and respects
    /// range bounds.
    #[test]
    fn rng_determinism_and_bounds(seed in 0u64..10_000, lo in -100.0f64..0.0, span in 0.1f64..100.0) {
        let hi = lo + span;
        let mut a = Rng64::new(seed);
        let mut b = Rng64::new(seed);
        for _ in 0..32 {
            let x = a.uniform(lo, hi);
            prop_assert_eq!(x, b.uniform(lo, hi));
            prop_assert!((lo..hi).contains(&x));
        }
    }

    /// Shuffling is always a permutation of the input.
    #[test]
    fn shuffle_is_a_permutation(n in 0usize..64, seed in 0u64..10_000) {
        let mut rng = Rng64::new(seed);
        let mut xs: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// argmax always returns an index of a maximal element.
    #[test]
    fn argmax_returns_a_maximum(xs in finite_vec(1..32)) {
        let idx = argmax(&xs).unwrap();
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(xs[idx] >= max - 1e-12);
    }
}

fn random_sparse_dense_pair(
    rows: usize,
    cols: usize,
    seed: u64,
) -> (holistix_linalg::CsrMatrix, Matrix) {
    use holistix_linalg::CsrMatrix;
    let mut rng = Rng64::new(seed);
    let mut dense = Matrix::zeros(rows, cols);
    for v in dense.data_mut() {
        // ~25% density, mirroring a (still generous) TF-IDF fill rate.
        if rng.uniform(0.0, 1.0) < 0.25 {
            *v = rng.uniform(-10.0, 10.0);
        }
    }
    (CsrMatrix::from_dense(&dense), dense)
}

proptest! {
    /// CSR round-trips through dense exactly, and nnz counts the non-zeros.
    #[test]
    fn csr_dense_round_trip(rows in 0usize..10, cols in 0usize..12, seed in 0u64..500) {
        let (sparse, dense) = random_sparse_dense_pair(rows, cols, seed);
        prop_assert_eq!(sparse.to_dense(), dense.clone());
        prop_assert_eq!(sparse.nnz(), dense.data().iter().filter(|&&v| v != 0.0).count());
        prop_assert_eq!(holistix_linalg::CsrMatrix::from_dense(&sparse.to_dense()), sparse);
    }

    /// Sparse·vector and sparse·dense products are bit-identical to their dense
    /// counterparts (entries accumulate in the same column order; zero terms are
    /// exact identities).
    #[test]
    fn csr_products_match_dense_bitwise(rows in 1usize..8, cols in 1usize..10, inner in 1usize..6, seed in 0u64..500) {
        let (sparse, dense) = random_sparse_dense_pair(rows, cols, seed);
        let mut rng = Rng64::new(seed ^ 0xABCD);
        let w: Vec<f64> = (0..cols).map(|_| rng.uniform(-5.0, 5.0)).collect();
        for r in 0..rows {
            let dense_dot: f64 = dense.row(r).iter().zip(&w).map(|(x, wi)| wi * x).sum();
            prop_assert_eq!(sparse.row_dot(r, &w), dense_dot);
        }
        let mut b = Matrix::zeros(cols, inner);
        for v in b.data_mut() { *v = rng.uniform(-3.0, 3.0); }
        prop_assert_eq!(sparse.matmul_dense(&b), dense.matmul(&b));
    }

    /// L2 row normalisation leaves unit (or zero) norms and matches the dense
    /// normalisation exactly.
    #[test]
    fn csr_l2_normalisation_matches_dense(rows in 1usize..8, cols in 1usize..10, seed in 0u64..500) {
        let (mut sparse, dense) = random_sparse_dense_pair(rows, cols, seed);
        sparse.l2_normalize_rows();
        let mut expected = dense.clone();
        for r in 0..rows {
            let norm: f64 = expected.row(r).iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                for v in expected.row_mut(r) { *v /= norm; }
            }
        }
        prop_assert_eq!(sparse.to_dense(), expected);
    }

    /// FeatureMatrix exposes identical row access for both representations.
    #[test]
    fn feature_matrix_variants_agree(rows in 1usize..8, cols in 1usize..10, seed in 0u64..500) {
        use holistix_linalg::{FeatureMatrix, FeatureRows};
        let (sparse, dense) = random_sparse_dense_pair(rows, cols, seed);
        let fm_dense = FeatureMatrix::Dense(dense);
        let fm_sparse = FeatureMatrix::Sparse(sparse);
        let mut rng = Rng64::new(seed ^ 0x1234);
        let w: Vec<f64> = (0..cols).map(|_| rng.uniform(-2.0, 2.0)).collect();
        prop_assert_eq!(fm_dense.shape(), fm_sparse.shape());
        for r in 0..rows {
            prop_assert_eq!(fm_dense.row_dot(r, &w), fm_sparse.row_dot(r, &w));
            let mut a = Vec::new();
            let mut b = Vec::new();
            fm_dense.for_each_row_entry(r, |c, v| a.push((c, v)));
            fm_sparse.for_each_row_entry(r, |c, v| b.push((c, v)));
            prop_assert_eq!(a, b);
        }
    }
}
