//! Per-kind batch queues: cross-request micro-batching without head-of-line
//! blocking between models.
//!
//! Request worker threads never score texts themselves: they enqueue [`Job`]s
//! and block on a per-job reply channel. The original design ran **one**
//! batcher thread over one queue for every model, which meant a 50 ms
//! transformer batch stalled the 200 µs logistic-regression batch queued
//! behind it. Since the `Scorer` redesign each registered kind owns a
//! [`BatchQueue`]: its own `mpsc` channel, its own drain loop on its own
//! thread, and its own [`BatchConfig`] sized from the scorer's
//! [`cost_hint`](holistix::Scorer::cost_hint) — expensive scorers coalesce
//! over wider windows (waiting is cheap relative to their batch service
//! time), cheap scorers keep the low-latency window. Queues share nothing but
//! the registry handle and the metrics sink, so saturating one cannot delay
//! another.
//!
//! Each drain loop collects up to [`BatchConfig::max_batch`] texts (or
//! whatever has accumulated when [`BatchConfig::max_wait`] elapses after the
//! first), scores them with one [`Scorer::probabilities`] call, and fans the
//! per-row results back out to the waiting workers.
//!
//! Batching is invisible in the results: `probabilities` rows depend only on
//! their own text (a property the core pipeline tests pin), so coalescing
//! concurrent requests changes latency, never answers.

use crate::metrics::{QueueMetrics, ServeMetrics};
use crate::registry::SharedRegistry;
use holistix::{BaselineKind, Scorer};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Micro-batching knobs for one queue.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Largest batch the scheduler assembles before scoring.
    pub max_batch: usize,
    /// How long the scheduler waits for more texts after the first one arrives.
    pub max_wait: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait: Duration::from_millis(5),
        }
    }
}

/// Widest coalescing window a cost hint may stretch a queue to: even a very
/// slow scorer should not hold a lone request for more than this.
const MAX_COST_SIZED_WAIT: Duration = Duration::from_millis(100);

impl BatchConfig {
    /// Derive a queue's config from this base config and a scorer's expected
    /// per-text cost: the coalescing window is at least one text's scoring
    /// time (while one text scores, the next batch assembles for free — a
    /// wider window trades no throughput for bigger, better-amortised
    /// batches), never narrower than the base window, and capped at
    /// [`MAX_COST_SIZED_WAIT`]. A ~200 µs classical scorer keeps the base
    /// 5 ms window; a ~50 ms transformer queue widens to 50 ms.
    pub fn sized_for(&self, cost_hint: Duration) -> BatchConfig {
        BatchConfig {
            max_batch: self.max_batch,
            max_wait: self.max_wait.max(cost_hint.min(MAX_COST_SIZED_WAIT)),
        }
    }
}

/// One text awaiting scoring, with the channel its probabilities go back on.
pub(crate) struct Job {
    pub text: String,
    pub reply: Sender<JobReply>,
    /// When the job entered its queue, for per-queue latency percentiles.
    pub enqueued: Instant,
}

/// One scored row on its way back to the waiting worker, carrying the batch
/// timing the worker stamps into its request trace.
pub(crate) struct JobReply {
    /// The probability row (empty = the model was not loaded).
    pub row: Vec<f64>,
    /// When the drain loop pulled the batch out of the queue.
    pub drained: Instant,
    /// When the batch's `probabilities` call returned.
    pub scored: Instant,
}

/// Batch-stage timing for one `predict_many` call: when its texts left the
/// queue and when scoring finished. A multi-text request may span several
/// batches; this is the envelope (earliest drain, latest score), which is
/// what the request trace wants — the request's queue wait ends at the first
/// drain and its scoring ends at the last row.
#[derive(Debug, Clone, Copy)]
pub struct BatchTiming {
    /// Earliest batch drain among the request's texts.
    pub drained: Instant,
    /// Latest scoring completion among the request's texts.
    pub scored: Instant,
}

/// Why [`BatcherHandle::predict_many`] refused or failed. Typed so the server
/// can map each cause to the right status code: [`QueueFull`](Self::QueueFull)
/// is `429 + Retry-After` (the server is healthy but full — retry), while
/// [`NotLoaded`](Self::NotLoaded) and [`Shutdown`](Self::Shutdown) are `503`
/// (the model or server is unavailable) and [`Failed`](Self::Failed) is `500`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictError {
    /// The kind's batch queue was at its configured depth cap; nothing was
    /// enqueued (admission is all-or-nothing per request).
    QueueFull {
        /// The saturated kind's name.
        kind: String,
        /// The queue depth observed at rejection.
        depth: u64,
    },
    /// No scorer is loaded for the kind: never registered at startup, or a
    /// swapped-in registry dropped it (the reload path).
    NotLoaded(String),
    /// The server is shutting down (the queue's receiver is gone).
    Shutdown,
    /// The queue's drain loop died mid-request.
    Failed,
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::QueueFull { kind, depth } => {
                write!(f, "queue for model {kind:?} is full ({depth} jobs queued)")
            }
            PredictError::NotLoaded(kind) => write!(f, "model {kind:?} is not loaded"),
            PredictError::Shutdown => write!(f, "server is shutting down"),
            PredictError::Failed => write!(f, "scoring failed"),
        }
    }
}

/// The sending half of one kind's queue.
struct QueueSender {
    kind: BaselineKind,
    sender: Sender<Job>,
    metrics: Arc<QueueMetrics>,
    /// Admission cap: most jobs this queue may hold, queued or scoring.
    max_depth: u64,
}

/// Cloneable producer handle the request workers use to hand texts to the
/// per-kind queues and wait for probabilities.
#[derive(Clone)]
pub struct BatcherHandle {
    queues: Arc<Vec<QueueSender>>,
}

impl BatcherHandle {
    fn queue(&self, kind: BaselineKind) -> Option<&QueueSender> {
        self.queues.iter().find(|q| q.kind == kind)
    }

    /// Score `texts` with the warm model for `kind` via its batch queue. All
    /// jobs are enqueued before the first reply is awaited, so a multi-text
    /// request forms (or joins) a batch as a whole. Returns the probability
    /// rows plus the batch timing envelope for the caller's request trace
    /// (`None` when `texts` was empty — nothing was ever queued).
    ///
    /// Admission is all-or-nothing: the whole request's worth of slots is
    /// reserved against the queue's depth cap up front
    /// ([`QueueMetrics::try_admit`]), so a request never half-enqueues and a
    /// rejection ([`PredictError::QueueFull`]) leaves the queue untouched.
    pub fn predict_many(
        &self,
        kind: BaselineKind,
        texts: Vec<String>,
    ) -> Result<(Vec<Vec<f64>>, Option<BatchTiming>), PredictError> {
        let queue = self
            .queue(kind)
            .ok_or_else(|| PredictError::NotLoaded(kind.name().to_string()))?;
        let jobs = texts.len() as u64;
        // Depth counts up strictly before the drain loop can see any job:
        // incrementing after send() would let a fast drain score the job and
        // decrement first, wrapping the unsigned depth gauge.
        if !queue.metrics.try_admit(jobs, queue.max_depth) {
            return Err(PredictError::QueueFull {
                kind: kind.name().to_string(),
                depth: queue.metrics.depth(),
            });
        }
        let mut receivers = Vec::with_capacity(texts.len());
        for (sent, text) in texts.into_iter().enumerate() {
            let (reply, receiver) = std::sync::mpsc::channel();
            if queue
                .sender
                .send(Job {
                    text,
                    reply,
                    enqueued: Instant::now(),
                })
                .is_err()
            {
                // Release the reservation for this job and every unsent one;
                // already-sent jobs are torn down by the shutdown drain.
                queue.metrics.record_dropped((jobs as usize) - sent);
                return Err(PredictError::Shutdown);
            }
            receivers.push(receiver);
        }
        let mut timing: Option<BatchTiming> = None;
        let mut rows = Vec::with_capacity(receivers.len());
        for rx in receivers {
            let reply = rx.recv().map_err(|_| PredictError::Failed)?;
            if reply.row.is_empty() {
                return Err(PredictError::NotLoaded(kind.name().to_string()));
            }
            timing = Some(match timing {
                None => BatchTiming {
                    drained: reply.drained,
                    scored: reply.scored,
                },
                Some(t) => BatchTiming {
                    drained: t.drained.min(reply.drained),
                    scored: t.scored.max(reply.scored),
                },
            });
            rows.push(reply.row);
        }
        Ok((rows, timing))
    }
}

/// One kind's queue: the receiving half plus everything its drain loop needs.
/// Built by [`build_queues`]; the server spawns [`BatchQueue::run`] on its own
/// scoped thread.
pub(crate) struct BatchQueue {
    kind: BaselineKind,
    receiver: Receiver<Job>,
    config: BatchConfig,
    metrics: Arc<QueueMetrics>,
}

impl BatchQueue {
    /// The drain loop: recv → coalesce → score → fan out, until every producer
    /// handle is dropped. The scorer is resolved once per batch from the
    /// shared registry, so a `/reload` swap lands between batches: an
    /// assembled batch always finishes on the scorer it started with.
    pub(crate) fn run(self, registry: &SharedRegistry, serve_metrics: &ServeMetrics) {
        let max_batch = self.config.max_batch.max(1);
        while let Ok(first) = self.receiver.recv() {
            let deadline = Instant::now() + self.config.max_wait;
            let mut jobs = vec![first];
            while jobs.len() < max_batch {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match self.receiver.recv_timeout(remaining) {
                    Ok(job) => jobs.push(job),
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            self.score_batch(&jobs, registry, serve_metrics);
        }
    }

    /// Score one assembled batch with this queue's scorer (one batched
    /// `probabilities` call) and reply to every job, carrying the batch's
    /// drain and score instants so each waiting worker can stamp its trace.
    fn score_batch(&self, jobs: &[Job], registry: &SharedRegistry, serve_metrics: &ServeMetrics) {
        let drained = Instant::now();
        let (rows, scored) = match registry.current().get(self.kind) {
            Some(scorer) => {
                let rows = score_jobs(scorer.as_ref(), jobs);
                let scored = Instant::now();
                let waits: Vec<u64> = jobs
                    .iter()
                    .map(|j| drained.duration_since(j.enqueued).as_micros() as u64)
                    .collect();
                let score_us = scored.duration_since(drained).as_micros() as u64;
                self.metrics.record_batch(jobs.len(), &waits, score_us);
                serve_metrics.record_batch(jobs.len());
                (rows, scored)
            }
            // The queue exists because the startup registry had this kind, and
            // refits keep kinds — so this only happens if a swapped-in registry
            // dropped the model. Answer with the empty-row sentinel (which
            // predict_many surfaces as an error) rather than hanging workers,
            // and record no batch — no model scored these texts.
            None => {
                self.metrics.record_dropped(jobs.len());
                (vec![Vec::new(); jobs.len()], drained)
            }
        };
        for (job, row) in jobs.iter().zip(rows) {
            // A dropped receiver just means the client went away mid-request.
            let _ = job.reply.send(JobReply {
                row,
                drained,
                scored,
            });
        }
    }
}

fn score_jobs(scorer: &dyn Scorer, jobs: &[Job]) -> Vec<Vec<f64>> {
    let texts: Vec<&str> = jobs.iter().map(|j| j.text.as_str()).collect();
    scorer.probabilities(&texts)
}

/// Build one queue per registered scorer: the shared [`BatcherHandle`] for the
/// worker pool and the [`BatchQueue`]s for the server to spawn, each queue's
/// window sized from its scorer's cost hint via [`BatchConfig::sized_for`].
/// `max_depth` is the per-kind admission cap
/// ([`AdmissionConfig::max_queue_depth`](crate::AdmissionConfig)); each kind
/// gets its own budget, so one saturated queue sheds alone.
pub(crate) fn build_queues(
    registry: &SharedRegistry,
    base: &BatchConfig,
    metrics: &ServeMetrics,
    max_depth: usize,
) -> (BatcherHandle, Vec<BatchQueue>) {
    let current = registry.current();
    let mut senders = Vec::new();
    let mut queues = Vec::new();
    for (kind, scorer) in current.scorers() {
        let (sender, receiver) = std::sync::mpsc::channel();
        let queue_metrics = metrics.queue(&kind.name(), kind.scorer_family());
        senders.push(QueueSender {
            kind,
            sender,
            metrics: Arc::clone(&queue_metrics),
            max_depth: max_depth as u64,
        });
        queues.push(BatchQueue {
            kind,
            receiver,
            config: base.sized_for(scorer.cost_hint()),
            metrics: queue_metrics,
        });
    }
    (
        BatcherHandle {
            queues: Arc::new(senders),
        },
        queues,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ModelRegistry, RegistryConfig};
    use holistix::SpeedProfile;

    fn tiny_registry() -> ModelRegistry {
        ModelRegistry::fit_synthetic(&RegistryConfig {
            kinds: vec![BaselineKind::LogisticRegression],
            profile: SpeedProfile::Tiny,
            training_posts: 90,
            seed: 5,
        })
    }

    /// Spawn every queue's drain loop in a crossbeam scope, run `body` with
    /// the handle, and join cleanly when the handle drops.
    fn with_queues<F: FnOnce(&BatcherHandle) + Send>(
        registry: &SharedRegistry,
        base: &BatchConfig,
        metrics: &ServeMetrics,
        body: F,
    ) {
        let (handle, queues) = build_queues(registry, base, metrics, usize::MAX);
        crossbeam::thread::scope(|scope| {
            for queue in queues {
                scope.spawn(move |_| queue.run(registry, metrics));
            }
            body(&handle);
            drop(handle); // lets every drain loop exit
        })
        .unwrap();
    }

    #[test]
    fn batched_replies_match_direct_scoring() {
        let registry = SharedRegistry::new(tiny_registry());
        let model = registry
            .current()
            .get(BaselineKind::LogisticRegression)
            .unwrap();
        let metrics = ServeMetrics::new();
        let config = BatchConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(20),
        };

        let texts = vec![
            "i feel alone and tired".to_string(),
            "my job is destroying me".to_string(),
            "i cannot sleep at night".to_string(),
        ];
        let expected: Vec<Vec<f64>> = texts.iter().map(|t| model.probabilities_one(t)).collect();

        with_queues(&registry, &config, &metrics, |handle| {
            let (got, timing) = handle
                .predict_many(BaselineKind::LogisticRegression, texts.clone())
                .unwrap();
            assert_eq!(got, expected);
            // One batch: its timing envelope is ordered and after enqueue.
            let timing = timing.expect("scored at least one text");
            assert!(timing.drained <= timing.scored);
        });

        // All three jobs were enqueued before any reply was awaited, so they
        // were scored as one batch — visible globally and in the LR queue.
        assert_eq!(metrics.max_batch_size(), 3);
        let lr_queue = metrics.queue("LR", "classical");
        assert_eq!(lr_queue.max_batch_size(), 3);
        assert_eq!(lr_queue.depth(), 0);
    }

    #[test]
    fn unregistered_kind_is_an_error_and_records_no_metrics() {
        let registry = SharedRegistry::new(tiny_registry());
        let metrics = ServeMetrics::new();
        let config = BatchConfig::default();
        with_queues(&registry, &config, &metrics, |handle| {
            // No Linear SVM scorer was registered, so no queue exists for it:
            // the error comes straight from the handle, nothing is enqueued.
            let got = handle.predict_many(BaselineKind::LinearSvm, vec!["text".to_string()]);
            let err = got.err().unwrap();
            assert!(matches!(err, PredictError::NotLoaded(_)));
            assert!(err.to_string().contains("not loaded"));
        });
        // Nothing was scored, so nothing shows up as a batch.
        assert_eq!(metrics.max_batch_size(), 0);
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.get("texts_scored").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn predict_many_fails_cleanly_after_shutdown() {
        let registry = SharedRegistry::new(tiny_registry());
        let metrics = ServeMetrics::new();
        let (handle, queues) = build_queues(&registry, &BatchConfig::default(), &metrics, 1024);
        drop(queues); // receivers gone: every send errors
        assert_eq!(
            handle
                .predict_many(BaselineKind::LogisticRegression, vec!["x".to_string()])
                .err(),
            Some(PredictError::Shutdown)
        );
        // The failed send released its reservation: depth is back to zero.
        assert_eq!(metrics.queue("LR", "classical").depth(), 0);
    }

    #[test]
    fn over_cap_requests_draw_queue_full_without_enqueueing() {
        let registry = SharedRegistry::new(tiny_registry());
        let metrics = ServeMetrics::new();
        // No drain loop running: jobs sit in the channel, depth only grows.
        let (handle, queues) = build_queues(&registry, &BatchConfig::default(), &metrics, 3);
        let texts = |n: usize| vec!["hello".to_string(); n];

        // A request bigger than the whole cap is rejected outright.
        let err = handle
            .predict_many(BaselineKind::LogisticRegression, texts(4))
            .err()
            .unwrap();
        assert!(matches!(err, PredictError::QueueFull { .. }));
        assert!(err.to_string().contains("full"));
        assert_eq!(metrics.queue("LR", "classical").depth(), 0);

        // Fill the cap exactly by enqueueing without awaiting replies: send
        // the jobs by hand through a second handle thread would block on
        // recv, so reserve via the public path in a scope that never drains.
        crossbeam::thread::scope(|scope| {
            for _ in 0..3 {
                let handle = handle.clone();
                scope.spawn(move |_| {
                    // Blocks on recv until the queues are dropped below; the
                    // reservation itself is what this test observes.
                    let _ = handle.predict_many(BaselineKind::LogisticRegression, texts(1));
                });
            }
            // Deterministic wait: depth is incremented before send, so poll
            // the gauge (no timing assumption — just a progress deadline).
            let deadline = Instant::now() + Duration::from_secs(20);
            while metrics.queue("LR", "classical").depth() < 3 {
                assert!(Instant::now() < deadline, "queue never filled");
                std::thread::sleep(Duration::from_millis(2));
            }
            // The cap is reached: one more text is shed, all-or-nothing.
            let err = handle
                .predict_many(BaselineKind::LogisticRegression, texts(1))
                .err()
                .unwrap();
            assert!(matches!(err, PredictError::QueueFull { depth: 3, .. }));
            assert_eq!(metrics.queue("LR", "classical").depth(), 3);
            drop(queues); // disconnects the channel, unblocking the senders
        })
        .unwrap();
    }

    #[test]
    fn cost_sized_windows_widen_for_expensive_scorers() {
        let base = BatchConfig::default();
        let classical = base.sized_for(Duration::from_micros(200));
        assert_eq!(classical.max_wait, base.max_wait);
        let transformer = base.sized_for(Duration::from_millis(50));
        assert_eq!(transformer.max_wait, Duration::from_millis(50));
        // Pathologically slow scorers are capped.
        let glacial = base.sized_for(Duration::from_secs(10));
        assert_eq!(glacial.max_wait, MAX_COST_SIZED_WAIT);
        assert_eq!(glacial.max_batch, base.max_batch);
    }
}
