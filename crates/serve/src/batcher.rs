//! Cross-request micro-batching.
//!
//! Request worker threads never score texts themselves: they enqueue
//! [`Job`]s on an `mpsc` channel and block on a per-job reply channel. A
//! single batcher thread drains the queue into micro-batches — up to
//! [`BatchConfig::max_batch`] texts, or whatever has accumulated when
//! [`BatchConfig::max_wait`] elapses after the first text — scores each batch
//! with one [`FittedBaseline::probabilities`] call (the sparse, internally
//! parallel path), and fans the per-row results back out to the waiting
//! workers.
//!
//! Batching is invisible in the results: `probabilities` is bit-for-bit
//! identical to text-at-a-time scoring (a property the core pipeline tests
//! pin), so coalescing concurrent requests changes latency, never answers.

use crate::metrics::ServeMetrics;
use crate::registry::{ModelRegistry, SharedRegistry};
use holistix::{BaselineKind, FittedBaseline};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// Micro-batching knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Largest batch the scheduler assembles before scoring.
    pub max_batch: usize,
    /// How long the scheduler waits for more texts after the first one arrives.
    pub max_wait: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait: Duration::from_millis(5),
        }
    }
}

/// One text awaiting scoring, with the channel its probabilities go back on.
pub(crate) struct Job {
    pub kind: BaselineKind,
    pub text: String,
    pub reply: Sender<Vec<f64>>,
}

/// Cloneable producer handle the request workers use to hand texts to the
/// batcher and wait for probabilities.
#[derive(Clone)]
pub struct BatcherHandle {
    sender: Sender<Job>,
}

impl BatcherHandle {
    pub(crate) fn new(sender: Sender<Job>) -> Self {
        Self { sender }
    }

    /// Score `texts` with the warm model for `kind`. All jobs are enqueued
    /// before the first reply is awaited, so a multi-text request forms (or
    /// joins) a batch as a whole. Errors when the server is shutting down,
    /// the batcher died mid-request, or `kind` has no warm model (the batcher
    /// answers such jobs with the empty-row sentinel).
    pub fn predict_many(
        &self,
        kind: BaselineKind,
        texts: Vec<String>,
    ) -> Result<Vec<Vec<f64>>, String> {
        let mut receivers = Vec::with_capacity(texts.len());
        for text in texts {
            let (reply, receiver) = std::sync::mpsc::channel();
            self.sender
                .send(Job { kind, text, reply })
                .map_err(|_| "server is shutting down".to_string())?;
            receivers.push(receiver);
        }
        receivers
            .into_iter()
            .map(|rx| match rx.recv() {
                Ok(row) if row.is_empty() => Err(format!("model {:?} is not loaded", kind.name())),
                Ok(row) => Ok(row),
                Err(_) => Err("scoring failed".to_string()),
            })
            .collect()
    }
}

/// The batcher thread body: drain → group → score → fan out, until every
/// producer handle is dropped. The registry is resolved once per batch from
/// the shared handle, so a `/reload` swap lands between batches: an assembled
/// batch always finishes on the registry it started scoring with.
pub(crate) fn run_batcher(
    receiver: Receiver<Job>,
    registry: &SharedRegistry,
    config: &BatchConfig,
    metrics: &ServeMetrics,
) {
    let max_batch = config.max_batch.max(1);
    while let Ok(first) = receiver.recv() {
        let deadline = Instant::now() + config.max_wait;
        let mut jobs = vec![first];
        while jobs.len() < max_batch {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match receiver.recv_timeout(remaining) {
                Ok(job) => jobs.push(job),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        score_batch(&jobs, &registry.current(), metrics);
    }
}

/// Score one assembled batch. Jobs are grouped per model kind (a mixed batch
/// costs one `probabilities` call per distinct model) and every group is
/// scored in a single batched call.
fn score_batch(jobs: &[Job], registry: &ModelRegistry, metrics: &ServeMetrics) {
    let mut kinds: Vec<BaselineKind> = Vec::new();
    for job in jobs {
        if !kinds.contains(&job.kind) {
            kinds.push(job.kind);
        }
    }
    for kind in kinds {
        let group: Vec<&Job> = jobs.iter().filter(|j| j.kind == kind).collect();
        let rows = match registry.get(kind) {
            Some(model) => {
                let rows = score_group(&model, &group);
                metrics.record_batch(group.len());
                rows
            }
            // resolve() runs before enqueue, so this only happens if a caller
            // bypasses it; answer with the empty-row sentinel (which
            // predict_many surfaces as an error) rather than hanging workers,
            // and record nothing — no model scored these texts.
            None => vec![Vec::new(); group.len()],
        };
        for (job, row) in group.iter().zip(rows) {
            // A dropped receiver just means the client went away mid-request.
            let _ = job.reply.send(row);
        }
    }
}

fn score_group(model: &FittedBaseline, group: &[&Job]) -> Vec<Vec<f64>> {
    let texts: Vec<&str> = group.iter().map(|j| j.text.as_str()).collect();
    model.probabilities(&texts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use holistix::SpeedProfile;
    use std::sync::mpsc;

    fn tiny_registry() -> ModelRegistry {
        ModelRegistry::fit_synthetic(&RegistryConfig {
            kinds: vec![BaselineKind::LogisticRegression],
            profile: SpeedProfile::Tiny,
            training_posts: 90,
            seed: 5,
        })
    }

    #[test]
    fn batched_replies_match_direct_scoring() {
        let registry = SharedRegistry::new(tiny_registry());
        let model = registry
            .current()
            .get(BaselineKind::LogisticRegression)
            .unwrap();
        let (sender, receiver) = mpsc::channel();
        let handle = BatcherHandle::new(sender);
        let metrics = ServeMetrics::new();
        let config = BatchConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(20),
        };

        let texts = vec![
            "i feel alone and tired".to_string(),
            "my job is destroying me".to_string(),
            "i cannot sleep at night".to_string(),
        ];
        let expected: Vec<Vec<f64>> = texts.iter().map(|t| model.probabilities_one(t)).collect();

        crossbeam::thread::scope(|scope| {
            let registry = &registry;
            let metrics = &metrics;
            let config = &config;
            scope.spawn(move |_| run_batcher(receiver, registry, config, metrics));
            let got = handle
                .predict_many(BaselineKind::LogisticRegression, texts.clone())
                .unwrap();
            assert_eq!(got, expected);
            drop(handle); // lets the batcher thread exit
        })
        .unwrap();

        // All three jobs were enqueued before any reply was awaited, so they
        // were scored as one batch.
        assert_eq!(metrics.max_batch_size(), 3);
    }

    #[test]
    fn unregistered_kind_is_an_error_and_records_no_metrics() {
        let registry = SharedRegistry::new(tiny_registry());
        let (sender, receiver) = mpsc::channel();
        let handle = BatcherHandle::new(sender);
        let metrics = ServeMetrics::new();
        let config = BatchConfig::default();
        crossbeam::thread::scope(|scope| {
            let registry = &registry;
            let metrics = &metrics;
            let config = &config;
            scope.spawn(move |_| run_batcher(receiver, registry, config, metrics));
            let got = handle.predict_many(BaselineKind::LinearSvm, vec!["text".to_string()]);
            assert!(got.err().unwrap().contains("not loaded"));
            drop(handle);
        })
        .unwrap();
        // Nothing was scored, so nothing shows up as a batch.
        assert_eq!(metrics.max_batch_size(), 0);
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.get("texts_scored").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn predict_many_fails_cleanly_after_shutdown() {
        let (sender, receiver) = mpsc::channel();
        drop(receiver);
        let handle = BatcherHandle::new(sender);
        assert!(handle
            .predict_many(BaselineKind::LogisticRegression, vec!["x".to_string()])
            .is_err());
    }
}
