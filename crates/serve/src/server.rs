//! The HTTP server: a nonblocking connection multiplexer in front of a small
//! fixed pool of request handlers.
//!
//! Thread model — every count here is configuration, none scale with the
//! number of connected clients:
//!
//! * [`ServeConfig::pollers`] **poller threads** own the connections. Each
//!   runs a readiness loop over `poll(2)` ([`crate::poller`]): it accepts new
//!   sockets (the nonblocking listener is polled by every poller; the kernel
//!   breaks the tie), reads whatever bytes are available into each
//!   connection's incremental parser, dispatches parsed requests to the
//!   handler pool, and writes completed responses back out with partial-write
//!   resumption ([`crate::conn`]). Pollers never block on a socket or a
//!   model, so ten thousand idle keep-alive clients cost two sleeping
//!   threads, not ten thousand.
//! * [`ServeConfig::handlers`] **handler threads** run the routes. They pull
//!   parsed requests off one shared queue, block as needed (`/predict` waits
//!   on the model's batch queue, `/explain` runs LIME), and hand the finished
//!   response back to the owning poller through its completion list + waker.
//! * **one batch-queue thread per registered scorer** ([`crate::batcher`])
//!   coalesces texts across concurrent requests — a slow transformer batch
//!   never delays a classical one.
//!
//! Connections are pipelined: a poller keeps parsing (and dispatching)
//! request `N+1` while `N` is still being scored, and the per-connection
//! reorder buffer guarantees responses go out in request order. Idle
//! connections are evicted by a timer wheel, never by a blocking read
//! timeout; a client that stops draining its responses is evicted by the same
//! wheel once no bytes have moved for the idle timeout.
//!
//! Shutdown: [`ServerHandle::shutdown`] flips the running flag and wakes
//! every poller. Pollers drop their connections and exit; the job channel
//! closes, handlers finish their in-flight requests and exit; their batcher
//! handles drop, and every batch queue drains and exits — the scope then
//! joins everything.

use crate::admission::{Admission, AdmissionConfig};
use crate::batcher::{build_queues, BatchConfig, BatcherHandle, PredictError};
use crate::conn::{Connection, TimerWheel};
use crate::http::{Request, Response};
use crate::metrics::{build_info, Endpoint, ServeMetrics, ShedReason};
use crate::obs::{RequestTrace, TraceStamp};
use crate::poller::{waker_pair, Interest, PollSet, ReadyEvent, WakeReader, Waker};
use crate::registry::{ModelRegistry, SharedRegistry};
use holistix::corpus::WellnessDimension;
use holistix::linalg::argmax;
use holistix::ml::ThreadBudget;
use holistix::Scorer;
use holistix_corpus::json::JsonValue;
use holistix_explain::{LimeConfig, LimeExplainer};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Most posts one `/reload` corpus may carry. Defense in depth: the 1 MiB
/// request-body cap in `http.rs` already rejects any corpus this large (a
/// parseable post line is far more than 10 bytes), so this guard only binds
/// if that cap is ever raised — it keeps the fit-memory bound explicit rather
/// than implied by a transport limit.
pub const MAX_RELOAD_POSTS: usize = 100_000;

/// Most texts one `/predict` request may carry (independent of micro-batching;
/// this bounds per-request memory, not throughput).
pub const MAX_TEXTS_PER_REQUEST: usize = 256;

/// Most distinct word types `/explain` accepts. LIME's surrogate regression
/// solves an `(features+1)²` system, so an uncapped text could turn one
/// request into an hours-long, memory-exploding solve; real posts have tens
/// of distinct words.
pub const MAX_EXPLAIN_FEATURES: usize = 512;

/// How long a poller sleeps when no timer is pending. Purely a liveness
/// backstop — wakeups for I/O, completions and shutdown all interrupt it.
const FALLBACK_POLL: Duration = Duration::from_millis(500);

/// Buckets in each poller's idle-timeout wheel.
const WHEEL_BUCKETS: usize = 32;

/// Poll-set token for a poller's own waker pipe.
const TOKEN_WAKER: usize = usize::MAX;

/// Poll-set token for the shared listener.
const TOKEN_LISTENER: usize = usize::MAX - 1;

/// Thread budget for a `/reload` refit: half the machine (at least one), so
/// the background fit leaves cores for the handler pool and the batch queues
/// that are serving live traffic off the old registry.
fn reload_fit_threads() -> usize {
    (ThreadBudget::machine().threads / 2).max(1)
}

/// Keep-alive policy for one connection.
#[derive(Debug, Clone)]
pub struct KeepAliveConfig {
    /// Most requests one connection may carry before the server closes it
    /// (announced via `Connection: close` on the final response). Bounds how
    /// much state one client session can accumulate.
    pub max_requests: usize,
    /// How long a connection may sit idle (no bytes moving in either
    /// direction) before the timer wheel evicts it. Also bounds how long a
    /// non-draining client can hold buffered responses.
    pub idle_timeout: Duration,
}

impl Default for KeepAliveConfig {
    fn default() -> Self {
        Self {
            max_requests: 1000,
            idle_timeout: Duration::from_secs(5),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Poller threads. Each owns a share of the connections and multiplexes
    /// them with readiness polling; two is plenty below tens of thousands of
    /// clients, since pollers do no model work.
    pub pollers: usize,
    /// Handler threads: the request-level concurrency ceiling. Handlers run
    /// the routes and may block (batch queues, LIME, reload validation);
    /// connections are *not* pinned to handlers, so a handful serve
    /// thousands of keep-alive clients.
    pub handlers: usize,
    /// Base micro-batching knobs. Each registered scorer's queue derives its
    /// own window from this and the scorer's
    /// [`cost_hint`](holistix::Scorer::cost_hint)
    /// (see [`BatchConfig::sized_for`]).
    pub batch: BatchConfig,
    /// Connection keep-alive policy.
    pub keep_alive: KeepAliveConfig,
    /// LIME defaults for `/explain` (per-request `top_k` / `n_samples`
    /// overrides apply on top; `batch_size` controls how perturbation sets
    /// chunk through the batched scoring path).
    pub lime: LimeConfig,
    /// Admission control: per-kind queue caps, the global intake valve,
    /// `/explain` shedding and per-client rate limiting. The defaults are
    /// permissive (see [`AdmissionConfig`]).
    pub admission: AdmissionConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            pollers: 2,
            handlers: 8,
            batch: BatchConfig::default(),
            keep_alive: KeepAliveConfig::default(),
            lime: LimeConfig::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
    wakers: Vec<Waker>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics sink (the same data `GET /metrics` serves).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Stop accepting, drop every connection, join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(thread) = self.thread.take() {
            // ordering: SeqCst — shutdown is a synchronization edge: pollers
            // must observe the flag before draining, and this path is cold.
            self.running.store(false, Ordering::SeqCst);
            // Wake every poller so each observes the flag immediately.
            for waker in &self.wakers {
                waker.wake();
            }
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `addr` (use port 0 for an ephemeral port) and start serving the
/// registry's warm scorers. Returns once the listener is bound — fitting has
/// already happened in [`ModelRegistry`] construction, so the server answers
/// from its first request.
pub fn serve(
    addr: &str,
    registry: ModelRegistry,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let running = Arc::new(AtomicBool::new(true));
    let metrics = Arc::new(ServeMetrics::new());
    let registry = SharedRegistry::new(registry);
    let mut wakers = Vec::new();
    let mut readers = Vec::new();
    for _ in 0..config.pollers.max(1) {
        let (waker, reader) = waker_pair()?;
        wakers.push(waker);
        readers.push(reader);
    }
    let thread = {
        let running = Arc::clone(&running);
        let metrics = Arc::clone(&metrics);
        let wakers = wakers.clone();
        std::thread::spawn(move || {
            serve_loop(
                listener, registry, config, running, metrics, readers, wakers,
            )
        })
    };
    Ok(ServerHandle {
        addr: local_addr,
        running,
        metrics,
        wakers,
        thread: Some(thread),
    })
}

/// A parsed request on its way from a poller to the handler pool, carrying
/// the trace minted at parse completion.
struct HandlerJob {
    poller: usize,
    slot: usize,
    generation: u64,
    seq: u64,
    request: Request,
    trace: RequestTrace,
}

/// A finished response on its way back to the owning poller, with the trace
/// the handler stamped along the way (the poller stamps the final
/// last-byte-written boundary and finalizes it).
struct Completion {
    slot: usize,
    generation: u64,
    seq: u64,
    response: Response,
    trace: RequestTrace,
}

/// The handler-facing side of one poller: where completions are pushed, and
/// the waker that tells the poller to collect them.
struct PollerShared {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

/// Everything a handler needs to answer requests.
struct RequestContext<'a> {
    registry: &'a SharedRegistry,
    batcher: BatcherHandle,
    lime: &'a LimeConfig,
    metrics: &'a Arc<ServeMetrics>,
    reloading: &'a Arc<AtomicBool>,
    admission: &'a Admission,
}

fn serve_loop(
    listener: TcpListener,
    registry: SharedRegistry,
    config: ServeConfig,
    running: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
    readers: Vec<WakeReader>,
    wakers: Vec<Waker>,
) {
    let reloading = Arc::new(AtomicBool::new(false));
    let admission = Admission::new(config.admission.clone(), Arc::clone(&metrics));
    // One batch queue per scorer registered at startup. `/reload` refits keep
    // the kind set, so the queue set never needs to change at runtime.
    let (batcher, queues) = build_queues(
        &registry,
        &config.batch,
        &metrics,
        config.admission.max_queue_depth,
    );
    let n_handlers = config.handlers.max(1);
    metrics.set_thread_plan(readers.len(), n_handlers, queues.len());

    let (job_sender, job_receiver) = mpsc::channel::<HandlerJob>();
    let job_receiver = Mutex::new(job_receiver);
    let poller_shared: Vec<Arc<PollerShared>> = wakers
        .iter()
        .map(|waker| {
            Arc::new(PollerShared {
                completions: Mutex::new(Vec::new()),
                waker: waker.clone(),
            })
        })
        .collect();

    let registry = &registry;
    let keep_alive = &config.keep_alive;
    let lime_config = &config.lime;
    let admission = &admission;
    let metrics = &metrics;
    let reloading = &reloading;
    let running = &running;
    let listener = &listener;
    let job_receiver = &job_receiver;
    let poller_shared = &poller_shared;

    crossbeam::thread::scope(|scope| {
        for queue in queues {
            scope.spawn(move |_| queue.run(registry, metrics));
        }

        for _ in 0..n_handlers {
            let batcher = batcher.clone();
            scope.spawn(move |_| {
                let context = RequestContext {
                    registry,
                    batcher,
                    lime: lime_config,
                    metrics,
                    reloading,
                    admission,
                };
                handler_loop(&context, job_receiver, poller_shared);
            });
        }
        // The handlers hold clones; drop the original so the handlers' exit
        // is what disconnects the batch queues.
        drop(batcher);

        for (index, reader) in readers.into_iter().enumerate() {
            let job_sender = job_sender.clone();
            let shared = Arc::clone(&poller_shared[index]);
            scope.spawn(move |_| {
                Poller::new(
                    index, reader, shared, listener, job_sender, running, keep_alive, metrics,
                    admission,
                )
                .run();
            });
        }
        // The pollers hold clones; when the last poller exits, the job
        // channel disconnects and the handlers drain out.
        drop(job_sender);
    })
    .expect("server thread scope failed");
}

/// Pop parsed requests, run the route, push the response back to the owning
/// poller. Exits when every poller (job sender) is gone.
fn handler_loop(
    context: &RequestContext<'_>,
    receiver: &Mutex<mpsc::Receiver<HandlerJob>>,
    pollers: &[Arc<PollerShared>],
) {
    loop {
        // Take the lock only to pop; handling runs unlocked so the rest of
        // the pool keeps draining jobs.
        // lint:allow(guard-across-send): intentional — mpsc::Receiver is not
        // Sync, so handlers take turns blocking in `recv` under this mutex;
        // the guard is a temporary that dies at the statement's `;`, and no
        // other lock or work is ever taken while it is held.
        let job = { receiver.lock().unwrap().recv() };
        let Ok(mut job) = job else { break };
        job.trace.stamp(TraceStamp::HandlerStart);
        let response = route(&job.request, context, &mut job.trace);
        if response.status >= 400 {
            context.metrics.record_error();
        }
        job.trace.stamp(TraceStamp::ResponseQueued);
        let shared = &pollers[job.poller];
        shared.completions.lock().unwrap().push(Completion {
            slot: job.slot,
            generation: job.generation,
            seq: job.seq,
            response,
            trace: job.trace,
        });
        shared.waker.wake();
    }
}

/// One poller thread: a readiness loop over its share of the connections,
/// the shared listener, and its waker pipe.
struct Poller<'a> {
    index: usize,
    reader: WakeReader,
    shared: Arc<PollerShared>,
    listener: &'a TcpListener,
    job_sender: mpsc::Sender<HandlerJob>,
    running: &'a AtomicBool,
    keep_alive: &'a KeepAliveConfig,
    metrics: &'a Arc<ServeMetrics>,
    admission: &'a Admission,
    conns: Vec<Option<Connection>>,
    free: Vec<usize>,
    next_generation: u64,
    wheel: TimerWheel,
    granularity: Duration,
    set: PollSet,
}

impl<'a> Poller<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        index: usize,
        reader: WakeReader,
        shared: Arc<PollerShared>,
        listener: &'a TcpListener,
        job_sender: mpsc::Sender<HandlerJob>,
        running: &'a AtomicBool,
        keep_alive: &'a KeepAliveConfig,
        metrics: &'a Arc<ServeMetrics>,
        admission: &'a Admission,
    ) -> Self {
        // Wheel granularity: fine enough that evictions land near the
        // deadline, coarse enough that an idle server barely ticks.
        let granularity =
            (keep_alive.idle_timeout / 8).clamp(Duration::from_millis(10), Duration::from_secs(1));
        Self {
            index,
            reader,
            shared,
            listener,
            job_sender,
            running,
            keep_alive,
            metrics,
            admission,
            conns: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
            wheel: TimerWheel::new(granularity, WHEEL_BUCKETS, Instant::now()),
            granularity,
            set: PollSet::new(),
        }
    }

    fn run(mut self) {
        let idle_timeout = self.keep_alive.idle_timeout.max(Duration::from_millis(1));
        while self.running.load(Ordering::SeqCst) {
            self.build_set();
            let now = Instant::now();
            let timeout = self
                .wheel
                .next_timeout(now)
                .unwrap_or(FALLBACK_POLL)
                .min(FALLBACK_POLL);
            let n_ready = match self.set.wait(timeout) {
                Ok(n) => n,
                Err(_) => {
                    // A failed poll is unrecoverable per-call but transient
                    // per-process; back off instead of spinning.
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            let now = Instant::now();
            if n_ready > 0 {
                self.metrics.connections().record_wakeup();
            }

            let events: Vec<ReadyEvent> = self.set.ready().collect();
            let mut touched: Vec<usize> = Vec::new();
            for event in &events {
                if event.token == TOKEN_WAKER {
                    self.reader.drain();
                } else if event.token == TOKEN_LISTENER {
                    self.accept_new(now, idle_timeout, &mut touched);
                }
            }
            for event in &events {
                if event.token >= TOKEN_LISTENER || !event.readable {
                    continue;
                }
                let slot = event.token;
                if let Some(conn) = self.conns[slot].as_mut() {
                    if conn.on_readable(now).is_err() {
                        self.close(slot);
                        continue;
                    }
                }
                touched.push(slot);
            }
            for event in &events {
                if event.token < TOKEN_LISTENER && event.writable && !event.readable {
                    touched.push(event.token);
                }
            }

            // Collect completions every round, not only on waker events: the
            // wake and the push are not atomic together, and a spurious
            // collection is one cheap lock.
            let completed: Vec<Completion> =
                std::mem::take(&mut self.shared.completions.lock().unwrap());
            for completion in completed {
                if let Some(conn) = self.conns[completion.slot].as_mut() {
                    if conn.generation == completion.generation {
                        conn.complete(completion.seq, completion.response, completion.trace);
                        touched.push(completion.slot);
                    }
                }
            }

            touched.sort_unstable();
            touched.dedup();
            for slot in touched {
                self.pump(slot, now);
            }
            self.expire_timers(now, idle_timeout);
        }
        // Shutdown: drop every connection (close the sockets, settle the
        // open-connection gauge).
        for slot in 0..self.conns.len() {
            self.close(slot);
        }
    }

    /// Rebuild the poll set from the live connection table. O(connections)
    /// per wait, but a single FFI call and trivially correct under churn — a
    /// closed fd is simply never submitted again.
    fn build_set(&mut self) {
        // The global intake valve: while aggregate queue depth is at or past
        // the configured limit, this poller neither accepts nor reads — the
        // same withdraw-read-interest mechanism the per-connection pipelining
        // cap uses, applied to every socket at once. The endpoint of unread
        // bytes is unknowable, so the gate is total (a `/metrics` scrape
        // waits too; in-process readers use `ServerHandle::metrics`).
        // Reopening is detected on the next build: completions draining the
        // queues wake the poller, and `FALLBACK_POLL` bounds the worst case.
        let intake_open = self.admission.intake_open();
        self.set.clear();
        self.set.push(self.reader.fd(), Interest::READ, TOKEN_WAKER);
        if intake_open {
            self.set
                .push(self.listener.as_raw_fd(), Interest::READ, TOKEN_LISTENER);
        }
        for (slot, conn) in self.conns.iter().enumerate() {
            if let Some(conn) = conn {
                // A connection at the pipelining cap (or past its final
                // request) withdraws read interest: backpressure lands in the
                // kernel's receive buffer. Hangups still surface — poll
                // reports them regardless of the requested events.
                let interest = Interest {
                    read: intake_open && conn.wants_read(),
                    write: conn.wants_write(),
                };
                self.set.push(conn.fd(), interest, slot);
            }
        }
    }

    /// Drain the listener's accept queue. Every poller races on the same
    /// listener; losers see `WouldBlock` immediately.
    fn accept_new(&mut self, now: Instant, idle_timeout: Duration, touched: &mut Vec<usize>) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.next_generation += 1;
                    let generation = self.next_generation;
                    let bucket = self.admission.new_bucket(now);
                    let Ok(conn) = Connection::new(stream, generation, now, bucket) else {
                        continue;
                    };
                    let slot = match self.free.pop() {
                        Some(slot) => {
                            self.conns[slot] = Some(conn);
                            slot
                        }
                        None => {
                            self.conns.push(Some(conn));
                            self.conns.len() - 1
                        }
                    };
                    self.metrics.connections().record_accepted();
                    self.wheel.schedule(now + idle_timeout, slot, generation);
                    touched.push(slot);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                // Transient accept failures (EMFILE, aborted handshakes):
                // back off briefly instead of busy-spinning on the error.
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(10));
                    break;
                }
            }
        }
    }

    /// Drive one connection as far as it will go without blocking: parse and
    /// dispatch new requests, serialize completed responses in order, flush,
    /// and close if the session is over.
    fn pump(&mut self, slot: usize, now: Instant) {
        let mut broken = false;
        {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            let generation = conn.generation;
            let requests = conn.take_requests(
                now,
                self.keep_alive.max_requests,
                self.metrics,
                self.admission,
            );
            for (seq, request, trace) in requests {
                let job = HandlerJob {
                    poller: self.index,
                    slot,
                    generation,
                    seq,
                    request,
                    trace,
                };
                if self.job_sender.send(job).is_err() {
                    // Shutting down: the response will never come, and the
                    // poller is about to drop the connection anyway.
                    break;
                }
            }
            let conn = self.conns[slot].as_mut().expect("connection still live");
            conn.serialize_ready(self.running.load(Ordering::SeqCst));
            if conn.wants_write() {
                broken = conn.on_writable(now, self.metrics).is_err();
            }
        }
        if broken
            || self.conns[slot]
                .as_ref()
                .is_some_and(|conn| conn.should_close())
        {
            self.close(slot);
        }
    }

    /// Fire due timers with lazy revalidation: evict only connections that
    /// are genuinely idle (or wedged mid-write) past the timeout; reschedule
    /// everything else for its remaining lifetime.
    fn expire_timers(&mut self, now: Instant, idle_timeout: Duration) {
        for (slot, generation) in self.wheel.expire(now) {
            let Some(conn) = self.conns[slot].as_ref() else {
                continue;
            };
            if conn.generation != generation {
                continue; // the slot was reused; the old connection is gone
            }
            let idle_for = now.duration_since(conn.last_activity);
            // `wants_write` past the timeout means the client stopped
            // draining its responses — evict it just like an idle one. A
            // connection merely waiting on a slow model batch has in-flight
            // work and no stuck output, so it is rescheduled, not evicted.
            if idle_for >= idle_timeout && (conn.is_idle() || conn.wants_write()) {
                self.metrics.connections().record_idle_eviction();
                self.close(slot);
            } else {
                let deadline = (conn.last_activity + idle_timeout).max(now + self.granularity);
                self.wheel.schedule(deadline, slot, generation);
            }
        }
    }

    /// Drop the connection in `slot` (closing its socket) and recycle the
    /// slot.
    fn close(&mut self, slot: usize) {
        if self.conns[slot].take().is_some() {
            self.free.push(slot);
            self.metrics.connections().record_closed();
        }
    }
}

fn route(request: &Request, context: &RequestContext<'_>, trace: &mut RequestTrace) -> Response {
    let endpoint = Endpoint::resolve(&request.method, &request.path);
    trace.endpoint = endpoint.name();
    context.metrics.record_request(endpoint);
    match endpoint {
        Endpoint::Health => handle_healthz(context),
        Endpoint::Metrics => {
            // Fit stats come straight off the live registry, so this can never
            // disagree with the models actually serving.
            let fit = context.registry.current().fit_stats();
            // Content negotiation: Prometheus text when asked for via
            // `?format=prometheus` or an `Accept` admitting text/plain; the
            // JSON document otherwise (shape unchanged since PR 4).
            if request.query_param("format") == Some("prometheus")
                || request.accept.to_ascii_lowercase().contains("text/plain")
            {
                Response::text(200, context.metrics.render_prometheus(Some(&fit)))
            } else {
                Response::ok(context.metrics.snapshot_with_fit(&fit).to_string())
            }
        }
        Endpoint::DebugSlow => {
            Response::ok(context.metrics.obs().slow_traces().to_json().to_string())
        }
        Endpoint::Predict => handle_predict(request, context, trace),
        Endpoint::Explain => handle_explain(request, context, trace),
        Endpoint::Reload => handle_reload(&request.body, context),
        Endpoint::Other => match request.path.as_str() {
            "/healthz" | "/metrics" | "/predict" | "/explain" | "/reload" | "/debug/slow" => {
                Response::error(405, "method not allowed")
            }
            _ => Response::error(404, "no such endpoint"),
        },
    }
}

/// Inline the trace's stage breakdown into a response body when the client
/// opted in with `?trace=1`: the body's top-level object gains a `trace`
/// section with the id and the stages stamped so far (the write stage is
/// still ahead — it can only appear in `/debug/slow`).
fn inline_trace(request: &Request, trace: &RequestTrace, fields: &mut Vec<(&str, JsonValue)>) {
    if request.query_param("trace") != Some("1") {
        return;
    }
    fields.push((
        "trace",
        JsonValue::object(vec![
            ("trace_id", JsonValue::string(trace.id_hex())),
            ("stages", trace.stages_json()),
        ]),
    ));
}

fn handle_healthz(context: &RequestContext<'_>) -> Response {
    let registry = context.registry.current();
    let models = registry
        .kinds()
        .iter()
        .map(|k| JsonValue::string(k.name()))
        .collect();
    let (version, git) = build_info();
    Response::ok(
        JsonValue::object(vec![
            ("status", JsonValue::string("ok")),
            ("models", JsonValue::Array(models)),
            (
                "default_model",
                JsonValue::string(registry.default_kind().name()),
            ),
            (
                "reloading",
                JsonValue::Bool(context.reloading.load(Ordering::SeqCst)),
            ),
            (
                "open_connections",
                JsonValue::Number(context.metrics.connections().open() as f64),
            ),
            (
                "uptime_s",
                JsonValue::Number(context.metrics.uptime().as_secs_f64()),
            ),
            (
                "build",
                JsonValue::object(vec![
                    ("version", JsonValue::string(version)),
                    ("git", JsonValue::string(git)),
                ]),
            ),
        ])
        .to_string(),
    )
}

/// `POST /predict`: `{"texts": ["…", …]}` (or `{"text": "…"}`), optional
/// `"model"`. Every text goes through its model's batch queue, so concurrent
/// requests for the same kind share scoring batches — and requests for
/// different kinds never wait on each other. Stamps the trace's enqueue /
/// batch-drain / scored boundaries; `?trace=1` inlines the breakdown.
fn handle_predict(
    request: &Request,
    context: &RequestContext<'_>,
    trace: &mut RequestTrace,
) -> Response {
    let document = match JsonValue::parse(&request.body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("invalid JSON body: {e}")),
    };
    let texts: Vec<String> = if let Some(array) = document.get("texts").and_then(|v| v.as_array()) {
        let mut texts = Vec::with_capacity(array.len());
        for item in array {
            match item.as_str() {
                Some(s) => texts.push(s.to_string()),
                None => return Response::error(400, "`texts` must be an array of strings"),
            }
        }
        texts
    } else if let Some(text) = document.get("text").and_then(|v| v.as_str()) {
        vec![text.to_string()]
    } else {
        return Response::error(400, "body needs a `texts` array or a `text` string");
    };
    if texts.is_empty() {
        return Response::error(400, "no texts to score");
    }
    if texts.len() > MAX_TEXTS_PER_REQUEST {
        return Response::error(
            413,
            &format!("at most {MAX_TEXTS_PER_REQUEST} texts per request"),
        );
    }

    let model_name = document.get("model").and_then(|v| v.as_str());
    let (kind, _model) = match context.registry.current().resolve(model_name) {
        Ok(resolved) => resolved,
        Err(e) => return Response::error(400, &e),
    };
    trace.kind = Some(kind.name());

    trace.stamp(TraceStamp::QueueEnqueue);
    let (rows, timing) = match context.batcher.predict_many(kind, texts) {
        Ok(scored) => scored,
        // 429 = healthy but full (retry after the hint); 503 = the model or
        // server is unavailable (the reload/shutdown path); 500 = broke.
        Err(e @ PredictError::QueueFull { .. }) => {
            context
                .metrics
                .record_shed(Endpoint::Predict, ShedReason::QueueFull);
            return Response::too_many(&e.to_string(), context.admission.retry_after_secs());
        }
        Err(e @ (PredictError::NotLoaded(_) | PredictError::Shutdown)) => {
            return Response::error(503, &e.to_string())
        }
        Err(e @ PredictError::Failed) => return Response::error(500, &e.to_string()),
    };
    if let Some(timing) = timing {
        trace.stamp_at(TraceStamp::BatchDrain, timing.drained);
        trace.stamp_at(TraceStamp::Scored, timing.scored);
    }

    let results: Vec<JsonValue> = rows
        .into_iter()
        .map(|row| {
            let label_index = argmax(&row).unwrap_or(0);
            JsonValue::object(vec![
                (
                    "probabilities",
                    JsonValue::Array(row.iter().map(|&p| JsonValue::Number(p)).collect()),
                ),
                (
                    "label",
                    JsonValue::string(WellnessDimension::from_index(label_index).code()),
                ),
                ("label_index", JsonValue::Number(label_index as f64)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("model", JsonValue::string(kind.name())),
        ("results", JsonValue::Array(results)),
    ];
    inline_trace(request, trace, &mut fields);
    Response::ok(JsonValue::object(fields).to_string())
}

/// `POST /explain`: `{"text": "…"}`, optional `"model"`, `"top_k"`,
/// `"n_samples"`. Runs LIME against the warm scorer (any backend — the
/// explainer sees only `dyn Scorer`); the perturbation set is scored through
/// the batched `predict_proba` path in [`LimeConfig::batch_size`] chunks.
/// The LIME run is the `score` stage of the request's trace (it bypasses the
/// batch queues, so there are no enqueue/drain boundaries).
fn handle_explain(
    request: &Request,
    context: &RequestContext<'_>,
    trace: &mut RequestTrace,
) -> Response {
    // Graceful degradation: an explanation costs hundreds of LIME scoring
    // calls, so it is the first thing to go under queue pressure — checked
    // before even parsing the body, while `/predict` keeps serving until its
    // own (higher) per-kind cap.
    if context.admission.should_shed_explain() {
        context
            .metrics
            .record_shed(Endpoint::Explain, ShedReason::Degraded);
        return Response::too_many(
            "explanations are shed under load; retry later",
            context.admission.retry_after_secs(),
        );
    }
    let document = match JsonValue::parse(&request.body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("invalid JSON body: {e}")),
    };
    let text = match document.get("text").and_then(|v| v.as_str()) {
        Some(t) => t,
        None => return Response::error(400, "body needs a `text` string"),
    };
    // LIME's cost is driven by the number of interpretable features (distinct
    // word types), not bytes: cap it before the surrogate solve, counting
    // exactly what the explainer will solve over.
    let distinct_words = holistix_explain::interpretable_features(text).len();
    if distinct_words > MAX_EXPLAIN_FEATURES {
        return Response::error(
            413,
            &format!(
                "text has {distinct_words} distinct words; /explain accepts at most {MAX_EXPLAIN_FEATURES}"
            ),
        );
    }
    // Pin the scorer Arc now: if a reload swaps the registry mid-explanation,
    // this request still finishes on the model it started with.
    let (kind, model) = match context
        .registry
        .current()
        .resolve(document.get("model").and_then(|v| v.as_str()))
    {
        Ok(resolved) => resolved,
        Err(e) => return Response::error(400, &e),
    };
    trace.kind = Some(kind.name());

    let mut lime = context.lime.clone();
    if let Some(n_samples) = document.get("n_samples").and_then(|v| v.as_usize()) {
        lime.n_samples = n_samples.clamp(10, 2000);
    }
    if let Some(top_k) = document.get("top_k").and_then(|v| v.as_usize()) {
        lime.top_k = top_k.clamp(1, 50);
    }
    let top_k = lime.top_k;
    let model: &dyn Scorer = &*model;
    let explanation = LimeExplainer::new(lime).explain(model, text, None);
    trace.stamp(TraceStamp::Scored);

    let tokens: Vec<JsonValue> = explanation
        .token_weights
        .iter()
        .take(top_k)
        .map(|(token, weight)| {
            JsonValue::object(vec![
                ("token", JsonValue::string(token.clone())),
                ("weight", JsonValue::Number(*weight)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("model", JsonValue::string(kind.name())),
        (
            "label",
            JsonValue::string(WellnessDimension::from_index(explanation.target_class).code()),
        ),
        (
            "target_class",
            JsonValue::Number(explanation.target_class as f64),
        ),
        (
            "target_probability",
            JsonValue::Number(explanation.target_probability),
        ),
        ("tokens", JsonValue::Array(tokens)),
    ];
    inline_trace(request, trace, &mut fields);
    Response::ok(JsonValue::object(fields).to_string())
}

/// `POST /reload`: the body is a JSONL corpus in the `corpus::io` schema. The
/// handler thread only parses and validates; the fit of the fresh registry
/// runs on its own dedicated thread — never on an HTTP handler or a batch
/// queue — and the new registry is atomically swapped in when ready, so
/// `/predict` keeps answering (from the old models) for the whole duration.
/// Responds `202` with the accepted post count, `400` on a malformed or empty
/// corpus, `409` if a reload is already in flight. Completion is observable
/// in `GET /metrics` (`registry.reloads_total`, `registry.corpus_size`) and
/// `GET /healthz` (`reloading`).
fn handle_reload(body: &str, context: &RequestContext<'_>) -> Response {
    let posts = match holistix_corpus::io::from_jsonl(body) {
        Ok(posts) => posts,
        Err(e) => return Response::error(400, &format!("invalid JSONL corpus: {e}")),
    };
    if posts.is_empty() {
        return Response::error(400, "reload corpus has no posts");
    }
    if posts.len() > MAX_RELOAD_POSTS {
        return Response::error(413, &format!("at most {MAX_RELOAD_POSTS} posts per reload"));
    }
    // One reload at a time: claim the flag before spawning; losing claimants
    // are told to retry rather than queueing fits.
    // ordering: SeqCst — the flag gates a whole model-fit critical section,
    // and reloads are rare enough that the fence cost is irrelevant.
    if context.reloading.swap(true, Ordering::SeqCst) {
        return Response::error(409, "a reload is already in progress");
    }
    let n_posts = posts.len();
    let shared = context.registry.clone();
    let metrics = Arc::clone(context.metrics);
    let reloading = Arc::clone(context.reloading);
    std::thread::spawn(move || {
        // The flag must clear even if the fit panics on a pathological corpus;
        // a detached thread swallows panics, so without this guard a failed
        // reload would wedge /reload behind 409s until process restart.
        struct ClearOnExit(Arc<AtomicBool>);
        impl Drop for ClearOnExit {
            fn drop(&mut self) {
                // ordering: SeqCst to pair with the claiming `swap` — the
                // next claimant must see the registry swap that preceded us.
                self.0.store(false, Ordering::SeqCst);
            }
        }
        let _clear = ClearOnExit(reloading);
        let texts: Vec<&str> = posts.iter().map(|p| p.post.text.as_str()).collect();
        let labels: Vec<usize> = posts.iter().map(|p| p.label.index()).collect();
        // Half the machine: the fit must not starve the handler pool and the
        // batch queues, which are serving live traffic off the old registry.
        let fresh = shared.current().refit_budgeted(
            &texts,
            &labels,
            ThreadBudget::new(reload_fit_threads()),
        );
        shared.swap(fresh);
        metrics.record_reload();
    });
    Response::json(
        202,
        JsonValue::object(vec![
            ("status", JsonValue::string("reloading")),
            ("posts", JsonValue::Number(n_posts as f64)),
        ])
        .to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{http_request, HttpClient};
    use crate::registry::RegistryConfig;
    use holistix::{BaselineKind, SpeedProfile};

    fn tiny_server() -> ServerHandle {
        let registry = ModelRegistry::fit_synthetic(&RegistryConfig {
            kinds: vec![BaselineKind::LogisticRegression],
            profile: SpeedProfile::Tiny,
            training_posts: 90,
            seed: 3,
        });
        let config = ServeConfig {
            handlers: 4,
            batch: BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
            },
            lime: LimeConfig {
                n_samples: 40,
                ..LimeConfig::default()
            },
            ..ServeConfig::default()
        };
        serve("127.0.0.1:0", registry, config).expect("bind loopback")
    }

    #[test]
    fn healthz_predict_explain_and_metrics_round_trip() {
        let server = tiny_server();
        let addr = server.addr();

        let (status, body) = http_request(addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200, "{body}");
        let health = JsonValue::parse(&body).unwrap();
        assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(health.get("default_model").unwrap().as_str(), Some("LR"));

        let (status, body) = http_request(
            addr,
            "POST",
            "/predict",
            Some(r#"{"texts":["i feel so alone lately","my job exhausts me"]}"#),
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        let predict = JsonValue::parse(&body).unwrap();
        let results = predict.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 2);
        for result in results {
            let probabilities = result.get("probabilities").unwrap().as_array().unwrap();
            assert_eq!(probabilities.len(), 6);
            let total: f64 = probabilities.iter().map(|p| p.as_f64().unwrap()).sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(result.get("label").unwrap().as_str().is_some());
        }

        let (status, body) = http_request(
            addr,
            "POST",
            "/explain",
            Some(r#"{"text":"i feel alone and isolated every day","top_k":3}"#),
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        let explain = JsonValue::parse(&body).unwrap();
        assert!(explain.get("tokens").unwrap().as_array().unwrap().len() <= 3);

        let (status, body) = http_request(addr, "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        let metrics = JsonValue::parse(&body).unwrap();
        let requests = metrics.get("requests").unwrap();
        assert_eq!(requests.get("predict").unwrap().as_f64(), Some(1.0));
        assert_eq!(requests.get("explain").unwrap().as_f64(), Some(1.0));
        assert!(metrics.get("texts_scored").unwrap().as_f64().unwrap() >= 2.0);
        // The per-kind queue section exists for the one registered scorer.
        let queues = metrics.get("queues").unwrap();
        let lr = queues.get("LR").unwrap();
        assert_eq!(lr.get("depth").unwrap().as_f64(), Some(0.0));
        assert!(lr.get("texts_scored").unwrap().as_f64().unwrap() >= 2.0);

        server.shutdown();
    }

    #[test]
    fn keep_alive_connection_serves_multiple_requests() {
        let server = tiny_server();
        let addr = server.addr();

        let mut client = HttpClient::connect(addr).expect("connect");
        for round in 0..3 {
            let (status, body) = client.request("GET", "/healthz", None).unwrap();
            assert_eq!(status, 200, "round {round}: {body}");
        }
        let (status, body) = client
            .request("POST", "/predict", Some(r#"{"text":"i feel alone"}"#))
            .unwrap();
        assert_eq!(status, 200, "{body}");
        drop(client);

        // 4 requests over one connection: 3 of them reused it.
        assert_eq!(server.metrics().keepalive_reuses_total(), 3);
        server.shutdown();
    }

    #[test]
    fn server_honors_connection_close_and_request_cap() {
        let registry = ModelRegistry::fit_synthetic(&RegistryConfig {
            kinds: vec![BaselineKind::LogisticRegression],
            profile: SpeedProfile::Tiny,
            training_posts: 90,
            seed: 3,
        });
        let config = ServeConfig {
            handlers: 2,
            keep_alive: KeepAliveConfig {
                max_requests: 2,
                idle_timeout: Duration::from_secs(5),
            },
            ..ServeConfig::default()
        };
        let server = serve("127.0.0.1:0", registry, config).expect("bind loopback");
        let addr = server.addr();

        // The one-shot client sends Connection: close; the server must not
        // hold the socket open afterwards (http_request reads to completion).
        let (status, _) = http_request(addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);

        // A keep-alive client is cut off after max_requests: the 2nd response
        // announces Connection: close, so the 3rd request fails client-side.
        let mut client = HttpClient::connect(addr).expect("connect");
        assert_eq!(client.request("GET", "/healthz", None).unwrap().0, 200);
        assert_eq!(client.request("GET", "/healthz", None).unwrap().0, 200);
        let err = client.request("GET", "/healthz", None).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotConnected, "{err}");
        drop(client);

        assert_eq!(server.metrics().keepalive_reuses_total(), 1);
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_closed_after_the_timeout() {
        let registry = ModelRegistry::fit_synthetic(&RegistryConfig {
            kinds: vec![BaselineKind::LogisticRegression],
            profile: SpeedProfile::Tiny,
            training_posts: 90,
            seed: 3,
        });
        let config = ServeConfig {
            handlers: 2,
            keep_alive: KeepAliveConfig {
                max_requests: 100,
                idle_timeout: Duration::from_millis(100),
            },
            ..ServeConfig::default()
        };
        let server = serve("127.0.0.1:0", registry, config).expect("bind loopback");
        let addr = server.addr();

        let mut client = HttpClient::connect(addr).expect("connect");
        assert_eq!(client.request("GET", "/healthz", None).unwrap().0, 200);
        // Sit idle past the timeout; the server closes, so the next round
        // trip fails (broken pipe on write or EOF on read).
        std::thread::sleep(Duration::from_millis(400));
        assert!(client.request("GET", "/healthz", None).is_err());
        drop(client);
        // The eviction is visible in the connection counters.
        assert!(server.metrics().connections().idle_evictions_total() >= 1);
        server.shutdown();
    }

    #[test]
    fn bad_requests_get_4xx_json_errors() {
        let server = tiny_server();
        let addr = server.addr();

        let (status, body) = http_request(addr, "POST", "/predict", Some("not json")).unwrap();
        assert_eq!(status, 400);
        assert!(JsonValue::parse(&body).unwrap().get("error").is_some());

        let (status, _) = http_request(addr, "POST", "/predict", Some("{\"texts\":[]}")).unwrap();
        assert_eq!(status, 400);

        let (status, body) = http_request(
            addr,
            "POST",
            "/predict",
            Some(r#"{"texts":["x"],"model":"resnet"}"#),
        )
        .unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("unknown model"));

        let (status, _) = http_request(addr, "GET", "/nowhere", None).unwrap();
        assert_eq!(status, 404);

        let (status, _) = http_request(addr, "POST", "/healthz", Some("{}")).unwrap();
        assert_eq!(status, 405);

        // A text with more distinct words than LIME can affordably explain.
        let huge: Vec<String> = (0..600).map(|i| format!("word{i}")).collect();
        let body = format!("{{\"text\":\"{}\"}}", huge.join(" "));
        let (status, body) = http_request(addr, "POST", "/explain", Some(&body)).unwrap();
        assert_eq!(status, 413, "{body}");
        assert!(body.contains("distinct words"));

        let snapshot = server.metrics().snapshot();
        let requests = snapshot.get("requests").unwrap();
        let errors = requests.get("errors").unwrap().as_f64().unwrap();
        let total = requests.get("total").unwrap().as_f64().unwrap();
        assert!(errors >= 6.0);
        // Unroutable requests count into the total, so error rates stay ≤ 1.
        assert!(total >= errors, "total {total} < errors {errors}");
        server.shutdown();
    }

    #[test]
    fn reload_validates_body_and_swaps_models() {
        use holistix_corpus::HolistixCorpus;
        let server = tiny_server();
        let addr = server.addr();

        // Malformed and empty corpora are rejected on the handler thread.
        let (status, body) = http_request(addr, "POST", "/reload", Some("not jsonl")).unwrap();
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("invalid JSONL"));
        let (status, body) = http_request(addr, "POST", "/reload", Some("\n\n")).unwrap();
        assert_eq!(status, 400, "{body}");
        let (status, _) = http_request(addr, "GET", "/reload", None).unwrap();
        assert_eq!(status, 405);

        // A valid corpus is accepted and eventually swapped in.
        let corpus = HolistixCorpus::generate_small(60, 17);
        let n_posts = corpus.posts.len() as f64;
        let jsonl = holistix_corpus::io::to_jsonl(&corpus.posts);
        let (status, body) = http_request(addr, "POST", "/reload", Some(&jsonl)).unwrap();
        assert_eq!(status, 202, "{body}");
        let accepted = JsonValue::parse(&body).unwrap();
        assert_eq!(accepted.get("posts").unwrap().as_f64(), Some(n_posts));

        let deadline = Instant::now() + Duration::from_secs(30);
        while server.metrics().reloads_total() < 1 {
            assert!(Instant::now() < deadline, "reload did not complete");
            std::thread::sleep(Duration::from_millis(20));
        }
        let (status, body) = http_request(addr, "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        let metrics = JsonValue::parse(&body).unwrap();
        let registry = metrics.get("registry").unwrap();
        assert_eq!(registry.get("reloads_total").unwrap().as_f64(), Some(1.0));
        assert_eq!(registry.get("corpus_size").unwrap().as_f64(), Some(n_posts));
        assert!(registry.get("last_fit_us").unwrap().as_f64().unwrap() > 0.0);

        // The swapped registry still answers.
        let (status, body) =
            http_request(addr, "POST", "/predict", Some(r#"{"text":"i feel alone"}"#)).unwrap();
        assert_eq!(status, 200, "{body}");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_and_port_is_released() {
        let server = tiny_server();
        let addr = server.addr();
        let (status, _) = http_request(addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
        // The listener is gone: either the connection is refused or the probe
        // request fails; a fresh bind to the same port must succeed.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "port not released after shutdown");
    }
}
