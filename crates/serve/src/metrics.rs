//! Serving metrics: request counters, per-kind queue statistics, the global
//! batch-size histogram, keep-alive reuse and request latency percentiles,
//! all exposed as JSON by `GET /metrics`.
//!
//! Counters are lock-free atomics; histograms and latency reservoirs sit
//! behind mutexes that are touched once per batch / request (never per text),
//! so the metrics path stays off the scoring hot path.
//!
//! Since the per-kind batch-queue redesign, every registered scorer owns a
//! [`QueueMetrics`]: its live queue depth, its own batch-size histogram and a
//! p50/p99 window over per-job latency (enqueue → scored), so a saturated
//! transformer queue is visible *next to* a healthy classical one instead of
//! smeared into one global histogram. The global batch histogram and
//! `texts_scored` remain as cross-queue aggregates.

use crate::registry::FitStats;
use holistix_corpus::json::JsonValue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How many of the most recent latencies each percentile window keeps.
const LATENCY_WINDOW: usize = 4096;

/// Which endpoint a request hit, for per-endpoint counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /predict`.
    Predict,
    /// `POST /explain`.
    Explain,
    /// `POST /reload`.
    Reload,
    /// `GET /healthz`.
    Health,
    /// `GET /metrics`.
    Metrics,
    /// Anything else: unknown paths, wrong methods, unparseable requests.
    Other,
}

/// A bounded reservoir of recent latencies with nearest-rank percentiles.
#[derive(Debug, Default)]
struct LatencyWindow {
    values_us: Mutex<Vec<u64>>,
    cursor: AtomicU64,
}

impl LatencyWindow {
    fn record(&self, micros: u64) {
        let mut window = self.values_us.lock().unwrap();
        if window.len() < LATENCY_WINDOW {
            window.push(micros);
        } else {
            let slot = self.cursor.fetch_add(1, Ordering::Relaxed) as usize;
            window[slot % LATENCY_WINDOW] = micros;
        }
    }

    /// `{"window": n, "p50": …, "p99": …}` (percentiles `null` when empty).
    fn snapshot(&self) -> JsonValue {
        let mut values = self.values_us.lock().unwrap().clone();
        values.sort_unstable();
        let percentile = |q: f64| -> JsonValue {
            if values.is_empty() {
                return JsonValue::Null;
            }
            // Nearest-rank on the sorted window.
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            JsonValue::Number(values[rank - 1] as f64)
        };
        JsonValue::object(vec![
            ("window", JsonValue::Number(values.len() as f64)),
            ("p50", percentile(0.50)),
            ("p99", percentile(0.99)),
        ])
    }
}

/// A size-indexed batch histogram (`histogram[s]` counts batches of exactly
/// `s` texts; index 0 unused).
#[derive(Debug, Default)]
struct BatchHistogram {
    counts: Mutex<Vec<u64>>,
}

impl BatchHistogram {
    fn record(&self, size: usize) {
        let mut histogram = self.counts.lock().unwrap();
        if histogram.len() <= size {
            histogram.resize(size + 1, 0);
        }
        histogram[size] += 1;
    }

    fn max_size(&self) -> usize {
        let histogram = self.counts.lock().unwrap();
        histogram.iter().rposition(|&count| count > 0).unwrap_or(0)
    }

    /// `{"count": n, "max_size": m, "histogram": {"<size>": count, …}}`.
    fn snapshot(&self) -> JsonValue {
        let histogram = self.counts.lock().unwrap().clone();
        let batch_count: u64 = histogram.iter().sum();
        let max_batch = histogram.iter().rposition(|&c| c > 0).unwrap_or(0);
        let fields: Vec<(String, JsonValue)> = histogram
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(size, &count)| (size.to_string(), JsonValue::Number(count as f64)))
            .collect();
        JsonValue::object(vec![
            ("count", JsonValue::Number(batch_count as f64)),
            ("max_size", JsonValue::Number(max_batch as f64)),
            ("histogram", JsonValue::Object(fields)),
        ])
    }
}

/// Connection-layer statistics for the nonblocking multiplexer: the open
/// connection gauge, lifetime accept/close totals, readiness wakeups (one per
/// `poll(2)` return that reported at least one ready fd), pipelined requests
/// (parsed while an earlier request on the same connection was still in
/// flight) and idle-timeout evictions.
#[derive(Debug, Default)]
pub struct ConnectionMetrics {
    open: AtomicU64,
    accepted_total: AtomicU64,
    closed_total: AtomicU64,
    wakeups_total: AtomicU64,
    pipelined_total: AtomicU64,
    idle_evictions_total: AtomicU64,
}

impl ConnectionMetrics {
    /// Count one accepted connection (raises the open gauge).
    pub fn record_accepted(&self) {
        self.open.fetch_add(1, Ordering::Relaxed);
        self.accepted_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one closed connection (lowers the open gauge).
    pub fn record_closed(&self) {
        self.open.fetch_sub(1, Ordering::Relaxed);
        self.closed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one readiness wakeup (a `poll` return with ≥ 1 ready fd).
    pub fn record_wakeup(&self) {
        self.wakeups_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request parsed while an earlier one was still in flight.
    pub fn record_pipelined(&self) {
        self.pipelined_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one connection evicted by the idle-timeout wheel. The eviction
    /// also closes the connection, which is recorded separately via
    /// [`record_closed`](Self::record_closed).
    pub fn record_idle_eviction(&self) {
        self.idle_evictions_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections currently open.
    pub fn open(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    /// Requests served pipelined so far.
    pub fn pipelined_total(&self) -> u64 {
        self.pipelined_total.load(Ordering::Relaxed)
    }

    /// Idle-timeout evictions so far.
    pub fn idle_evictions_total(&self) -> u64 {
        self.idle_evictions_total.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> JsonValue {
        JsonValue::object(vec![
            ("open", JsonValue::Number(self.open() as f64)),
            (
                "accepted_total",
                JsonValue::Number(self.accepted_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "closed_total",
                JsonValue::Number(self.closed_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "wakeups_total",
                JsonValue::Number(self.wakeups_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "pipelined_requests_total",
                JsonValue::Number(self.pipelined_total() as f64),
            ),
            (
                "idle_timeout_evictions_total",
                JsonValue::Number(self.idle_evictions_total() as f64),
            ),
        ])
    }
}

/// Read this process's live OS thread count from `/proc/self/status`
/// (`Threads:` line). Linux-specific; returns `None` elsewhere or when the
/// file is unreadable. The flat-thread-count guarantee of the multiplexer is
/// asserted against exactly this number.
pub fn os_thread_count() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("Threads:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Per-queue statistics: one instance per registered scorer kind, shared
/// between that kind's [`BatcherHandle`](crate::batcher::BatcherHandle) side
/// (depth increments) and its drain loop (depth decrements, batch sizes, job
/// latencies).
#[derive(Debug, Default)]
pub struct QueueMetrics {
    depth: AtomicU64,
    texts_scored: AtomicU64,
    batches: BatchHistogram,
    job_latency: LatencyWindow,
}

impl QueueMetrics {
    /// Count one job entering the queue.
    pub fn record_enqueued(&self) {
        self.depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `jobs` leaving the queue unscored (shutdown drain).
    pub fn record_dropped(&self, jobs: usize) {
        self.depth.fetch_sub(jobs as u64, Ordering::Relaxed);
    }

    /// Record one scored batch of `size` jobs with the given per-job latencies
    /// (enqueue → scored, µs). Decrements the queue depth by the batch size.
    pub fn record_batch(&self, size: usize, job_latencies_us: &[u64]) {
        if size == 0 {
            return;
        }
        self.depth.fetch_sub(size as u64, Ordering::Relaxed);
        self.texts_scored.fetch_add(size as u64, Ordering::Relaxed);
        self.batches.record(size);
        for &micros in job_latencies_us {
            self.job_latency.record(micros);
        }
    }

    /// Jobs currently waiting in (or being scored from) this queue.
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// The largest batch this queue has scored (0 before the first batch).
    pub fn max_batch_size(&self) -> usize {
        self.batches.max_size()
    }

    fn snapshot(&self) -> JsonValue {
        JsonValue::object(vec![
            ("depth", JsonValue::Number(self.depth() as f64)),
            (
                "texts_scored",
                JsonValue::Number(self.texts_scored.load(Ordering::Relaxed) as f64),
            ),
            ("batches", self.batches.snapshot()),
            ("job_latency_us", self.job_latency.snapshot()),
        ])
    }
}

/// Shared metrics sink. One instance per server, shared by workers and the
/// per-kind batch queues.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    predict_requests: AtomicU64,
    explain_requests: AtomicU64,
    reload_requests: AtomicU64,
    health_requests: AtomicU64,
    metrics_requests: AtomicU64,
    other_requests: AtomicU64,
    error_responses: AtomicU64,
    texts_scored: AtomicU64,
    /// Requests served on an already-used connection (the 2nd, 3rd, … request
    /// of a keep-alive session). Zero means every request paid a TCP setup.
    keepalive_reuses: AtomicU64,
    /// Completed registry reloads (a `/reload` fit + swap; startup not counted).
    /// The fit stats themselves are *not* mirrored here — the registry behind
    /// [`SharedRegistry`](crate::registry::SharedRegistry) is the single source
    /// of truth and [`snapshot_with_fit`](Self::snapshot_with_fit) reads them
    /// at snapshot time.
    reloads_total: AtomicU64,
    /// Cross-queue aggregate batch histogram.
    batches: BatchHistogram,
    /// End-to-end request latency window.
    request_latency: LatencyWindow,
    /// Per-kind queue sections, in registration order.
    queues: Mutex<Vec<(String, Arc<QueueMetrics>)>>,
    /// Connection-layer counters for the nonblocking multiplexer.
    connections: ConnectionMetrics,
    /// Configured thread plan `(pollers, handlers, queues)`, set once at
    /// server start; the point of the multiplexer is that this plan — not the
    /// connection count — determines the process's thread count.
    thread_plan: Mutex<Option<(usize, usize, usize)>>,
}

impl ServeMetrics {
    /// A fresh, all-zero sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count a request against its endpoint.
    pub fn record_request(&self, endpoint: Endpoint) {
        let counter = match endpoint {
            Endpoint::Predict => &self.predict_requests,
            Endpoint::Explain => &self.explain_requests,
            Endpoint::Reload => &self.reload_requests,
            Endpoint::Health => &self.health_requests,
            Endpoint::Metrics => &self.metrics_requests,
            Endpoint::Other => &self.other_requests,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an error (4xx/5xx) response.
    pub fn record_error(&self) {
        self.error_responses.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request served on a reused (keep-alive) connection.
    pub fn record_keepalive_reuse(&self) {
        self.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests served on reused connections so far.
    pub fn keepalive_reuses_total(&self) -> u64 {
        self.keepalive_reuses.load(Ordering::Relaxed)
    }

    /// The connection-layer counters (shared with pollers).
    pub fn connections(&self) -> &ConnectionMetrics {
        &self.connections
    }

    /// Record the configured thread plan: how many poller, handler and
    /// batch-queue threads the server runs. Reported under `threads` in the
    /// snapshot next to the live OS thread count.
    pub fn set_thread_plan(&self, pollers: usize, handlers: usize, queues: usize) {
        *self.thread_plan.lock().unwrap() = Some((pollers, handlers, queues));
    }

    /// Count one completed `/reload` (fresh registry fitted and swapped in).
    pub fn record_reload(&self) {
        self.reloads_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed reloads so far.
    pub fn reloads_total(&self) -> u64 {
        self.reloads_total.load(Ordering::Relaxed)
    }

    /// Register (or fetch) the per-queue section for a scorer kind. Called by
    /// the server when it spawns a kind's drain loop; idempotent so a restart
    /// of the queue set reuses the existing section.
    pub fn queue(&self, kind_name: &str) -> Arc<QueueMetrics> {
        let mut queues = self.queues.lock().unwrap();
        if let Some((_, metrics)) = queues.iter().find(|(name, _)| name == kind_name) {
            return Arc::clone(metrics);
        }
        let metrics = Arc::new(QueueMetrics::default());
        queues.push((kind_name.to_string(), Arc::clone(&metrics)));
        metrics
    }

    /// Record one scored micro-batch of `size` texts (cross-queue aggregate;
    /// the owning queue's [`QueueMetrics`] is recorded separately).
    pub fn record_batch(&self, size: usize) {
        if size == 0 {
            return;
        }
        self.texts_scored.fetch_add(size as u64, Ordering::Relaxed);
        self.batches.record(size);
    }

    /// Record one request's end-to-end latency.
    pub fn record_latency_us(&self, micros: u64) {
        self.request_latency.record(micros);
    }

    /// The largest batch scored so far across all queues (0 before the first
    /// batch).
    pub fn max_batch_size(&self) -> usize {
        self.batches.max_size()
    }

    /// Total requests across all endpoints (including unroutable ones, so
    /// `total` is always ≥ `errors`).
    pub fn total_requests(&self) -> u64 {
        self.predict_requests.load(Ordering::Relaxed)
            + self.explain_requests.load(Ordering::Relaxed)
            + self.reload_requests.load(Ordering::Relaxed)
            + self.health_requests.load(Ordering::Relaxed)
            + self.metrics_requests.load(Ordering::Relaxed)
            + self.other_requests.load(Ordering::Relaxed)
    }

    /// The metrics document without registry fit stats (counters only in the
    /// `registry` section). The server uses [`snapshot_with_fit`](Self::snapshot_with_fit).
    pub fn snapshot(&self) -> JsonValue {
        self.build_snapshot(None)
    }

    /// The full metrics document served by `GET /metrics`: counters plus the
    /// given registry's fit stats, read from the live registry at snapshot
    /// time so `/metrics` can never disagree with the models actually serving.
    pub fn snapshot_with_fit(&self, fit: &FitStats) -> JsonValue {
        self.build_snapshot(Some(fit))
    }

    fn build_snapshot(&self, fit: Option<&FitStats>) -> JsonValue {
        let mut registry_fields = vec![(
            "reloads_total",
            JsonValue::Number(self.reloads_total.load(Ordering::Relaxed) as f64),
        )];
        if let Some(fit) = fit {
            registry_fields.push((
                "last_fit_us",
                JsonValue::Number(fit.duration.as_micros() as f64),
            ));
            registry_fields.push(("fit_shards", JsonValue::Number(fit.shards as f64)));
            registry_fields.push(("corpus_size", JsonValue::Number(fit.corpus_size as f64)));
        }

        let queue_fields: Vec<(String, JsonValue)> = self
            .queues
            .lock()
            .unwrap()
            .iter()
            .map(|(name, metrics)| (name.clone(), metrics.snapshot()))
            .collect();

        let mut thread_fields = Vec::new();
        if let Some((pollers, handlers, queues)) = *self.thread_plan.lock().unwrap() {
            thread_fields.push(("pollers", JsonValue::Number(pollers as f64)));
            thread_fields.push(("handlers", JsonValue::Number(handlers as f64)));
            thread_fields.push(("queues", JsonValue::Number(queues as f64)));
        }
        thread_fields.push((
            "os_threads",
            match os_thread_count() {
                Some(n) => JsonValue::Number(n as f64),
                None => JsonValue::Null,
            },
        ));

        JsonValue::object(vec![
            (
                "requests",
                JsonValue::object(vec![
                    ("total", JsonValue::Number(self.total_requests() as f64)),
                    (
                        "predict",
                        JsonValue::Number(self.predict_requests.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "explain",
                        JsonValue::Number(self.explain_requests.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "reload",
                        JsonValue::Number(self.reload_requests.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "healthz",
                        JsonValue::Number(self.health_requests.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "metrics",
                        JsonValue::Number(self.metrics_requests.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "other",
                        JsonValue::Number(self.other_requests.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "errors",
                        JsonValue::Number(self.error_responses.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
            (
                "keepalive_reuses_total",
                JsonValue::Number(self.keepalive_reuses.load(Ordering::Relaxed) as f64),
            ),
            (
                "texts_scored",
                JsonValue::Number(self.texts_scored.load(Ordering::Relaxed) as f64),
            ),
            ("batches", self.batches.snapshot()),
            ("latency_us", self.request_latency.snapshot()),
            ("connections", self.connections.snapshot()),
            ("threads", JsonValue::object(thread_fields)),
            ("queues", JsonValue::Object(queue_fields)),
            ("registry", JsonValue::object(registry_fields)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_histogram_tracks_sizes_and_texts() {
        let metrics = ServeMetrics::new();
        metrics.record_batch(1);
        metrics.record_batch(4);
        metrics.record_batch(4);
        metrics.record_batch(0); // ignored
        assert_eq!(metrics.max_batch_size(), 4);
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.get("texts_scored").unwrap().as_f64(), Some(9.0));
        let batches = snapshot.get("batches").unwrap();
        assert_eq!(batches.get("count").unwrap().as_f64(), Some(3.0));
        assert_eq!(batches.get("max_size").unwrap().as_f64(), Some(4.0));
        let histogram = batches.get("histogram").unwrap();
        assert_eq!(histogram.get("1").unwrap().as_f64(), Some(1.0));
        assert_eq!(histogram.get("4").unwrap().as_f64(), Some(2.0));
        assert_eq!(histogram.get("2"), None);
    }

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        let metrics = ServeMetrics::new();
        for micros in 1..=100u64 {
            metrics.record_latency_us(micros);
        }
        let snapshot = metrics.snapshot();
        let latency = snapshot.get("latency_us").unwrap();
        assert_eq!(latency.get("p50").unwrap().as_f64(), Some(50.0));
        assert_eq!(latency.get("p99").unwrap().as_f64(), Some(99.0));
    }

    #[test]
    fn empty_latency_window_reports_null() {
        let snapshot = ServeMetrics::new().snapshot();
        let latency = snapshot.get("latency_us").unwrap();
        assert_eq!(latency.get("p50"), Some(&JsonValue::Null));
    }

    #[test]
    fn latency_window_is_bounded() {
        let metrics = ServeMetrics::new();
        for micros in 0..(LATENCY_WINDOW as u64 + 500) {
            metrics.record_latency_us(micros);
        }
        let snapshot = metrics.snapshot();
        let window = snapshot
            .get("latency_us")
            .unwrap()
            .get("window")
            .unwrap()
            .as_usize()
            .unwrap();
        assert_eq!(window, LATENCY_WINDOW);
    }

    #[test]
    fn endpoint_counters_sum_into_total() {
        let metrics = ServeMetrics::new();
        metrics.record_request(Endpoint::Predict);
        metrics.record_request(Endpoint::Predict);
        metrics.record_request(Endpoint::Health);
        metrics.record_request(Endpoint::Reload);
        metrics.record_error();
        assert_eq!(metrics.total_requests(), 4);
        let snapshot = metrics.snapshot();
        let requests = snapshot.get("requests").unwrap();
        assert_eq!(requests.get("predict").unwrap().as_f64(), Some(2.0));
        assert_eq!(requests.get("reload").unwrap().as_f64(), Some(1.0));
        assert_eq!(requests.get("errors").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn keepalive_reuse_counter_round_trips() {
        let metrics = ServeMetrics::new();
        assert_eq!(metrics.keepalive_reuses_total(), 0);
        metrics.record_keepalive_reuse();
        metrics.record_keepalive_reuse();
        assert_eq!(metrics.keepalive_reuses_total(), 2);
        let snapshot = metrics.snapshot();
        assert_eq!(
            snapshot.get("keepalive_reuses_total").unwrap().as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn queue_sections_track_depth_batches_and_latency() {
        let metrics = ServeMetrics::new();
        let lr = metrics.queue("LR");
        let bert = metrics.queue("BERT");
        // Idempotent registration returns the same section.
        assert!(Arc::ptr_eq(&lr, &metrics.queue("LR")));

        for _ in 0..5 {
            lr.record_enqueued();
        }
        assert_eq!(lr.depth(), 5);
        lr.record_batch(3, &[10, 20, 30]);
        assert_eq!(lr.depth(), 2);
        assert_eq!(lr.max_batch_size(), 3);
        bert.record_enqueued();
        bert.record_dropped(1);
        assert_eq!(bert.depth(), 0);

        let snapshot = metrics.snapshot();
        let queues = snapshot.get("queues").unwrap();
        let lr_section = queues.get("LR").unwrap();
        assert_eq!(lr_section.get("depth").unwrap().as_f64(), Some(2.0));
        assert_eq!(lr_section.get("texts_scored").unwrap().as_f64(), Some(3.0));
        let lr_batches = lr_section.get("batches").unwrap();
        assert_eq!(lr_batches.get("max_size").unwrap().as_f64(), Some(3.0));
        let lr_latency = lr_section.get("job_latency_us").unwrap();
        assert_eq!(lr_latency.get("p50").unwrap().as_f64(), Some(20.0));
        let bert_section = queues.get("BERT").unwrap();
        assert_eq!(bert_section.get("depth").unwrap().as_f64(), Some(0.0));
        assert_eq!(
            bert_section.get("job_latency_us").unwrap().get("p50"),
            Some(&JsonValue::Null)
        );
    }

    #[test]
    fn connection_counters_and_thread_plan_round_trip() {
        let metrics = ServeMetrics::new();
        let conns = metrics.connections();
        conns.record_accepted();
        conns.record_accepted();
        conns.record_wakeup();
        conns.record_pipelined();
        conns.record_idle_eviction();
        conns.record_closed();
        assert_eq!(conns.open(), 1);
        metrics.set_thread_plan(2, 8, 3);

        let snapshot = metrics.snapshot();
        let section = snapshot.get("connections").unwrap();
        assert_eq!(section.get("open").unwrap().as_f64(), Some(1.0));
        assert_eq!(section.get("accepted_total").unwrap().as_f64(), Some(2.0));
        assert_eq!(section.get("closed_total").unwrap().as_f64(), Some(1.0));
        assert_eq!(section.get("wakeups_total").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            section.get("pipelined_requests_total").unwrap().as_f64(),
            Some(1.0)
        );
        assert_eq!(
            section
                .get("idle_timeout_evictions_total")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        let threads = snapshot.get("threads").unwrap();
        assert_eq!(threads.get("pollers").unwrap().as_f64(), Some(2.0));
        assert_eq!(threads.get("handlers").unwrap().as_f64(), Some(8.0));
        assert_eq!(threads.get("queues").unwrap().as_f64(), Some(3.0));
        // On Linux the live OS thread count is a positive number.
        let os_threads = os_thread_count().expect("Linux /proc/self/status");
        assert!(os_threads >= 1);
        assert!(threads.get("os_threads").unwrap().as_f64().unwrap() >= 1.0);
    }

    #[test]
    fn registry_fit_stats_round_trip_through_snapshot() {
        let metrics = ServeMetrics::new();
        // Without a registry, the section carries counters only.
        let bare = metrics.snapshot();
        let section = bare.get("registry").unwrap();
        assert_eq!(section.get("reloads_total").unwrap().as_f64(), Some(0.0));
        assert_eq!(section.get("last_fit_us"), None);

        metrics.record_reload();
        metrics.record_reload();
        assert_eq!(metrics.reloads_total(), 2);
        let fit = FitStats {
            duration: std::time::Duration::from_micros(12_500),
            shards: 4,
            corpus_size: 2_000,
        };
        let snapshot = metrics.snapshot_with_fit(&fit);
        let section = snapshot.get("registry").unwrap();
        assert_eq!(section.get("reloads_total").unwrap().as_f64(), Some(2.0));
        assert_eq!(section.get("last_fit_us").unwrap().as_f64(), Some(12_500.0));
        assert_eq!(section.get("fit_shards").unwrap().as_f64(), Some(4.0));
        assert_eq!(section.get("corpus_size").unwrap().as_f64(), Some(2_000.0));
    }
}
